//! Repo automation. `cargo xtask lint` is the static lock-discipline
//! pass CI runs on every push:
//!
//! 1. **No raw locks.** `RwLock` / `Mutex` identifier tokens are
//!    forbidden in first-party source outside
//!    `crates/storage/src/ordered.rs` — every shared-state lock must be
//!    an [`OrderedRwLock`]/[`OrderedMutex`] carrying a declared
//!    `LockClass`, or the acquisition-order checker cannot see it.
//!    Applies to test code too (tests use `classes::TEST_SUPPORT`).
//! 2. **No classless constructions.** The first argument of
//!    `OrderedRwLock::new` / `OrderedRwLock::with_index` /
//!    `OrderedMutex::new` / `Shards::new` / `ShardedMap::new` must name
//!    a `classes::` constant (or forward a `class` parameter).
//! 3. **No stray panics on mutation paths.** In non-test
//!    `crates/engine/src` and `crates/storage/src` code, `.unwrap()` is
//!    forbidden and `.expect(...)` must carry a message starting with
//!    `"invariant:"` — a reviewed claim that the branch is unreachable,
//!    not a shrug. `#[cfg(test)]` regions are exempt.
//!
//! The scanner is deliberately a hand-rolled token pass (the workspace
//! builds fully offline — no `syn`): comments are stripped, string
//! literals masked, identifiers matched on word boundaries. It is a
//! tripwire, not a proof; the run-time checker in
//! `adept_storage::ordered` is the authority.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown xtask `{other}` (available: lint)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

/// Files rule 1 (no raw locks) skips: the one module allowed to touch
/// the underlying lock types.
const RAW_LOCK_ALLOWED: &[&str] = &["crates/storage/src/ordered.rs"];

/// Directories scanned for rules 1–2 (first-party source; shims provide
/// the lock types themselves and are excluded by construction).
const LOCK_SCAN_ROOTS: &[&str] = &["crates", "tests", "examples"];

/// Paths rule 3 (panic denylist) applies to: the engine/storage
/// mutation paths plus the compiled execution core, whose panics would
/// take down command processing. Entries may be directories (walked
/// recursively) or single `.rs` files.
const PANIC_SCAN_ROOTS: &[&str] = &[
    "crates/engine/src",
    "crates/storage/src",
    "crates/model/src/compiled.rs",
    "crates/state/src/compact.rs",
];

fn lint() -> ExitCode {
    let root = repo_root();
    let mut violations: Vec<String> = Vec::new();

    for dir in LOCK_SCAN_ROOTS {
        for file in rust_files(&root.join(dir)) {
            let rel = rel_path(&root, &file);
            let Ok(text) = std::fs::read_to_string(&file) else {
                violations.push(format!("{rel}: unreadable"));
                continue;
            };
            let masked = mask_comments_and_strings(&text);
            if !RAW_LOCK_ALLOWED.contains(&rel.as_str()) {
                check_raw_locks(&rel, &masked, &mut violations);
            }
            check_declared_classes(&rel, &text, &masked, &mut violations);
        }
    }

    for dir in PANIC_SCAN_ROOTS {
        for file in rust_files(&root.join(dir)) {
            let rel = rel_path(&root, &file);
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue; // already reported above
            };
            let mut masked = mask_comments_and_strings(&text);
            blank_cfg_test_regions(&mut masked);
            check_panic_denylist(&rel, &text, &masked, &mut violations);
        }
    }

    if violations.is_empty() {
        println!("xtask lint: ok");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is xtask/; the workspace root is its parent.
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .expect("invariant: cargo always sets CARGO_MANIFEST_DIR");
    Path::new(&manifest)
        .parent()
        .expect("invariant: xtask lives one level below the workspace root")
        .to_path_buf()
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    if dir.is_file() {
        return vec![dir.to_path_buf()];
    }
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Replaces comments with spaces and string/char literal *contents* with
/// `·`-free spaces, preserving byte offsets and newlines so line numbers
/// survive. Quotes themselves are kept so the caller can still see where
/// a literal started.
fn mask_comments_and_strings(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                out[i] = b' ';
                out[i + 1] = b' ';
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        continue;
                    }
                    if bytes[i] != b'\n' {
                        out[i] = b' ';
                    }
                    i += 1;
                }
                i += 1; // closing quote
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime has no closing
                // quote within a couple of bytes; chars do.
                let close = bytes.iter().skip(i + 1).take(4).position(|&b| b == b'\'');
                if let Some(off) = close {
                    for b in out.iter_mut().skip(i + 1).take(off) {
                        if *b != b'\n' {
                            *b = b' ';
                        }
                    }
                    i += off + 2;
                } else {
                    i += 1; // lifetime; leave as-is
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("invariant: masking only writes ASCII spaces over valid UTF-8")
}

/// Blanks every `#[cfg(test)]`-gated region (attribute through the end
/// of the following brace-delimited item) so later rules skip test code.
fn blank_cfg_test_regions(masked: &mut String) {
    let mut search_from = 0;
    while let Some(pos) = masked[search_from..].find("#[cfg(test)]") {
        let start = search_from + pos;
        let bytes = masked.as_bytes();
        let Some(open_rel) = bytes[start..].iter().position(|&b| b == b'{') else {
            break;
        };
        let open = start + open_rel;
        let mut depth = 0usize;
        let mut end = masked.len();
        for (j, &b) in bytes.iter().enumerate().skip(open) {
            if b == b'{' {
                depth += 1;
            } else if b == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = j + 1;
                    break;
                }
            }
        }
        // SAFETY of offsets: only ASCII bytes are replaced.
        let blanked: String = masked[start..end]
            .chars()
            .map(|c| if c == '\n' { '\n' } else { ' ' })
            .collect();
        masked.replace_range(start..end, &blanked);
        search_from = end.min(masked.len());
    }
}

fn line_of(text: &str, offset: usize) -> usize {
    text[..offset].bytes().filter(|&b| b == b'\n').count() + 1
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Yields `(offset, ident)` for every identifier token in `masked`.
fn idents(masked: &str) -> Vec<(usize, &str)> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_byte(bytes[i]) && (i == 0 || !is_ident_byte(bytes[i - 1])) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            out.push((start, &masked[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

/// Rule 1: no bare `RwLock` / `Mutex` identifiers outside the ordered
/// module.
fn check_raw_locks(rel: &str, masked: &str, violations: &mut Vec<String>) {
    for (off, ident) in idents(masked) {
        if ident == "RwLock" || ident == "Mutex" {
            violations.push(format!(
                "{rel}:{}: raw `{ident}` — use `adept_storage::ordered::{{OrderedRwLock, \
                 OrderedMutex}}` with a declared LockClass (see docs/LOCK_ORDER.md)",
                line_of(masked, off)
            ));
        }
    }
}

/// Rule 2: ordered-lock constructors must receive a `classes::` constant
/// (or forward a `class` parameter) as their first argument.
fn check_declared_classes(rel: &str, text: &str, masked: &str, violations: &mut Vec<String>) {
    const CONSTRUCTORS: &[(&str, &[&str])] = &[
        ("OrderedRwLock", &["new", "with_index"]),
        ("OrderedMutex", &["new"]),
        ("Shards", &["new"]),
        ("ShardedMap", &["new"]),
    ];
    let toks = idents(masked);
    for (k, &(off, ident)) in toks.iter().enumerate() {
        let Some((_, methods)) = CONSTRUCTORS.iter().find(|(t, _)| *t == ident) else {
            continue;
        };
        // The constructor call is `Type::method(` or `Type::<..>::method(`;
        // the method name is the next identifier token either way.
        let Some(&(m_off, m_ident)) = toks.get(k + 1) else {
            continue;
        };
        if !methods.contains(&m_ident) {
            continue;
        }
        // Require `(` directly after the method name and `::` between —
        // otherwise this is a definition or an unrelated mention.
        let between = &masked[off + ident.len()..m_off];
        if !between.contains("::") {
            continue;
        }
        let after = masked[m_off + m_ident.len()..].trim_start();
        if !after.starts_with('(') {
            continue;
        }
        // First argument: everything to the first top-level comma.
        let open = masked[m_off..]
            .find('(')
            .map(|p| m_off + p + 1)
            .expect("invariant: checked above that a paren follows");
        let mut depth = 0usize;
        let mut end = open;
        for (j, b) in masked.as_bytes().iter().enumerate().skip(open) {
            match b {
                b'(' | b'[' | b'<' => depth += 1,
                b')' if depth == 0 => {
                    end = j;
                    break;
                }
                b')' | b']' | b'>' => depth = depth.saturating_sub(1),
                b',' if depth == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
        }
        let first_arg = text[open..end].trim();
        let names_class = first_arg.contains("classes::")
            || first_arg == "class"
            || first_arg == "&class"
            || first_arg == "self.class";
        if !names_class {
            violations.push(format!(
                "{rel}:{}: `{ident}::{m_ident}` without a declared lock class — pass a \
                 `classes::` constant (see crates/storage/src/ordered.rs)",
                line_of(masked, off)
            ));
        }
    }
}

/// Rule 3: `.unwrap()` forbidden; `.expect(` must open an
/// `"invariant:"-prefixed message.
fn check_panic_denylist(rel: &str, text: &str, masked: &str, violations: &mut Vec<String>) {
    let bytes = masked.as_bytes();
    for (off, ident) in idents(masked) {
        let preceded_by_dot = off > 0 && bytes[off - 1] == b'.';
        if !preceded_by_dot {
            continue;
        }
        match ident {
            "unwrap" => {
                let after = masked[off + ident.len()..].trim_start();
                if after.starts_with("()") {
                    violations.push(format!(
                        "{rel}:{}: `.unwrap()` on a mutation path — return a typed error or \
                         use `.expect(\"invariant: ...\")` with a reviewed claim",
                        line_of(masked, off)
                    ));
                }
            }
            "expect" => {
                let Some(open_rel) = masked[off..].find('(') else {
                    continue;
                };
                let msg = text[off + open_rel + 1..].trim_start();
                if !msg.starts_with("\"invariant:") {
                    violations.push(format!(
                        "{rel}:{}: `.expect()` message must start with \"invariant:\" — \
                         state why the branch is unreachable, or return a typed error",
                        line_of(masked, off)
                    ));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_strips_comments_and_string_bodies() {
        let src = "let a = \"Mutex\"; // RwLock\nlet b = 1; /* Mutex */";
        let m = mask_comments_and_strings(src);
        assert!(!m.contains("Mutex"));
        assert!(!m.contains("RwLock"));
        assert_eq!(m.len(), src.len());
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn raw_lock_rule_fires_on_identifiers_only() {
        let mut v = Vec::new();
        check_raw_locks("f.rs", "let x: OrderedRwLock<u8>;", &mut v);
        assert!(v.is_empty(), "substring must not match: {v:?}");
        check_raw_locks("f.rs", "use parking_lot::RwLock;", &mut v);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn class_rule_accepts_classes_path_and_forwarded_param() {
        let mut v = Vec::new();
        let good = "Shards::new(&classes::STORE_SHARD, 8); Shards::new(class, n); \
                    Shards::<u32>::new(&classes::TEST_SUPPORT, n);";
        let m = mask_comments_and_strings(good);
        check_declared_classes("f.rs", good, &m, &mut v);
        assert!(v.is_empty(), "{v:?}");
        let bad = "OrderedMutex::new(&SOME_CLASS, 0);";
        let m = mask_comments_and_strings(bad);
        check_declared_classes("f.rs", bad, &m, &mut v);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn panic_rule_requires_invariant_prefix_and_skips_cfg_test() {
        let src = "fn f() { x.unwrap(); y.expect(\"oops\"); z.expect(\"invariant: fine\"); }\n\
                   #[cfg(test)]\nmod t { fn g() { a.unwrap(); } }";
        let mut masked = mask_comments_and_strings(src);
        blank_cfg_test_regions(&mut masked);
        let mut v = Vec::new();
        check_panic_denylist("f.rs", src, &masked, &mut v);
        assert_eq!(v.len(), 2, "{v:?}");
    }
}
