//! Adaptation policies: pluggable deviation detectors and recovery
//! synthesizers.

use crate::{Deviation, RecoveryPlan, SchemaView};
use adept_engine::EngineEvent;
use adept_state::NodeState;

/// A pluggable adaptation strategy.
///
/// The [`AdaptationLoop`](crate::AdaptationLoop) drives policies in two
/// places:
///
/// - [`observe`](AdaptationPolicy::observe) sees every engine event as the
///   loop consumes the monitor stream and may classify additional,
///   policy-specific deviations (the loop's built-in detector already
///   covers failures, deadlines, stuck decisions and starvation — most
///   policies leave this defaulted).
/// - [`plan`](AdaptationPolicy::plan) is asked to synthesize a recovery
///   for a detected deviation given a fresh [`SchemaView`]. Policies are
///   consulted in registration order; the first plan that passes preview
///   wins, and a rejected plan falls through to the next policy.
///
/// Policies must be `Send + Sync`: with `threads > 1` the loop plans and
/// commits different instances' recoveries concurrently.
pub trait AdaptationPolicy: Send + Sync {
    /// The policy's name (for reports and monitor events).
    fn name(&self) -> &str;

    /// Inspects an engine event and may report a policy-specific
    /// deviation. Called for every event the loop consumes; defaults to
    /// no-op.
    fn observe(&self, _event: &EngineEvent) -> Option<Deviation> {
        None
    }

    /// Synthesizes a recovery plan for `deviation`, or `None` to pass.
    fn plan(&self, deviation: &Deviation, view: &SchemaView) -> Option<RecoveryPlan>;
}

/// Retry a failed activity with exponential backoff; once the retry
/// budget is exhausted, skip it if the schema allows. Also cancels
/// deadline-breached activities (turning the overrun into a failure the
/// retry path then handles) and exits stuck loops.
#[derive(Debug, Clone)]
pub struct RetryThenSkip {
    /// Failures tolerated before skipping (retries fired = `max_retries`).
    pub max_retries: u32,
    /// Backoff base: retry `k` waits `base_delay << (k-1)` ticks.
    pub base_delay: u64,
}

impl Default for RetryThenSkip {
    fn default() -> Self {
        Self {
            max_retries: 2,
            base_delay: 1,
        }
    }
}

impl AdaptationPolicy for RetryThenSkip {
    fn name(&self) -> &str {
        "retry-then-skip"
    }

    fn plan(&self, deviation: &Deviation, view: &SchemaView) -> Option<RecoveryPlan> {
        match deviation {
            Deviation::ActivityFailed { node, attempts, .. } => {
                if *attempts <= self.max_retries {
                    // Exponential backoff, capped so the shift can't
                    // overflow on adversarial attempt counts.
                    let exp = attempts.saturating_sub(1).min(6);
                    Some(RecoveryPlan::RetryWithBackoff {
                        node: *node,
                        delay_ticks: self.base_delay << exp,
                        attempt: *attempts,
                    })
                } else if view.is_skippable(*node) {
                    Some(RecoveryPlan::SkipActivity { node: *node })
                } else {
                    None
                }
            }
            Deviation::DeadlineBreached { node, .. } => {
                // Only a still-running activity can be cancelled; if it
                // completed or was adapted away in the meantime, pass.
                if view.node_state(*node) == NodeState::Running {
                    Some(RecoveryPlan::Cancel { node: *node })
                } else {
                    None
                }
            }
            Deviation::DecisionStuck { loop_end, .. } => Some(RecoveryPlan::JumpBack {
                loop_end: *loop_end,
                iterate: false,
            }),
            Deviation::WorklistStarvation { .. } => None,
        }
    }
}

/// Insert a compensation activity after a failed one and skip the
/// failure — the classic forward-recovery shape. Requires the failed
/// activity to be skippable (the compensation replaces it).
#[derive(Debug, Clone, Default)]
pub struct CompensateOnFailure;

impl AdaptationPolicy for CompensateOnFailure {
    fn name(&self) -> &str {
        "compensate-on-failure"
    }

    fn plan(&self, deviation: &Deviation, view: &SchemaView) -> Option<RecoveryPlan> {
        match deviation {
            Deviation::ActivityFailed { node, .. } if view.is_skippable(*node) => {
                let name = view
                    .schema
                    .node(*node)
                    .ok()
                    .map(|x| x.name.clone())
                    .unwrap_or_else(|| format!("{node}"));
                Some(RecoveryPlan::InsertCompensation {
                    failed: *node,
                    compensation: format!("compensate {name}"),
                    skip_failed: true,
                })
            }
            _ => None,
        }
    }
}

/// The give-up policy: escalate any deviation to a human worklist role.
/// Register it *last* — it plans for everything, so policies after it are
/// never consulted.
#[derive(Debug, Clone)]
pub struct EscalateToWorklist {
    /// The role whose worklist receives escalations.
    pub role: String,
}

impl EscalateToWorklist {
    /// An escalation policy targeting `role`.
    pub fn new(role: impl Into<String>) -> Self {
        Self { role: role.into() }
    }
}

impl AdaptationPolicy for EscalateToWorklist {
    fn name(&self) -> &str {
        "escalate-to-worklist"
    }

    fn plan(&self, deviation: &Deviation, view: &SchemaView) -> Option<RecoveryPlan> {
        // Anchor the escalation to the deviating node only while it still
        // exists in the (possibly adapted) schema.
        let node = deviation.node().filter(|n| view.schema.node(*n).is_ok());
        Some(RecoveryPlan::Escalate {
            node,
            role: self.role.clone(),
        })
    }
}
