//! `adept-adapt` — automatic run-time adaptation for ADEPT2 process
//! instances: **detect → synthesize → preview → commit** over the
//! engine's monitor event stream.
//!
//! ADEPT2's change framework makes ad-hoc instance modifications safe;
//! this crate makes them *automatic*. An [`AdaptationLoop`] watches the
//! engine's monitor stream and repairs deviating instances with the same
//! staged change transactions a human process engineer would use — every
//! recovery passes the engine's preview gate (structural verification +
//! state compliance) before it commits, so the loop can never push an
//! instance into a state the change framework would have refused a user.
//!
//! # Lifecycle
//!
//! Each [`AdaptationLoop::tick`] advances a logical clock and runs four
//! stages:
//!
//! 1. **Detect.** The loop drains its [`EventCursor`] and classifies
//!    [`Deviation`]s: activity failures ([`EngineEvent::ActivityFailed`]),
//!    deadline breaches (an activity running longer than its
//!    `expected_duration_min`, in ticks), stuck external loop decisions
//!    (a silent instance waiting on a [`Decision::Loop`]), and worklist
//!    starvation (repeated `WorklistResolutionFailed`). When the cursor
//!    falls behind the monitor's retention window it **resyncs
//!    explicitly** — the gap is counted in
//!    [`AdaptationReport::events_skipped`] and the running-activity
//!    table is rebuilt from the store, never silently skipped.
//! 2. **Synthesize.** For each deviation (one per instance per tick —
//!    the single-flight guard), the registered [`AdaptationPolicy`]
//!    chain is consulted in order; the first policy that returns a
//!    [`RecoveryPlan`] for the deviation's fresh [`SchemaView`] wins.
//! 3. **Preview.** Structural plans are staged as a change transaction
//!    and [`preview`](adept_engine::ChangeSession::preview)ed; a failing
//!    verdict aborts the session and falls through to the next policy.
//! 4. **Commit.** Passing plans commit; the trail lands on the monitor
//!    stream as [`EngineEvent::DeviationDetected`] →
//!    [`EngineEvent::AdaptationCommitted`] /
//!    [`EngineEvent::AdaptationRejected`], so downstream consumers (and
//!    the tests) can audit every decision the loop made.
//!
//! Recoveries that lose a concurrent-change race are *contested*: they
//! are requeued and retried with a fresh view, up to
//! [`AdaptationConfig::max_plan_retries`] times. A tick's batch is
//! bounded by [`AdaptationConfig::max_in_flight`] and can be executed on
//! [`AdaptationConfig::threads`] worker threads — the batch holds at
//! most one deviation per instance, so workers never race on an
//! instance.
//!
//! # Built-in policies
//!
//! - [`RetryThenSkip`] — retry failed activities with exponential
//!   backoff, then skip them if the schema marks them skippable; cancels
//!   deadline breaches and exits stuck loops.
//! - [`CompensateOnFailure`] — insert a compensation activity after a
//!   failure and skip the failed step (forward recovery).
//! - [`EscalateToWorklist`] — the give-up policy: rewrite the deviating
//!   activity's role so it lands on a human's worklist, and stop
//!   adapting the instance. Register it last.
//!
//! # Writing a policy
//!
//! Implement [`AdaptationPolicy`]:
//!
//! - `plan` receives the [`Deviation`] and a [`SchemaView`] — the
//!   instance's materialised schema, block structure and a state
//!   snapshot. Compose ops with the `adept_core` helpers
//!   (`skip_activity`, `compensation_for`, `annotate_activity`) via the
//!   [`RecoveryPlan`] vocabulary; return `None` to pass to the next
//!   policy. Don't pre-validate compliance — that's the preview gate's
//!   job; a rejected plan simply falls through.
//! - `observe` (optional) sees every engine event and may classify
//!   policy-specific deviations the built-in detector doesn't know.
//! - Policies must be `Send + Sync`; `plan` may run on a worker thread.
//!
//! ```
//! use adept_adapt::{AdaptationConfig, AdaptationLoop, EscalateToWorklist, RetryThenSkip};
//! use adept_engine::ProcessEngine;
//! use adept_simgen::exception_scenario;
//!
//! let engine = ProcessEngine::new();
//! engine.deploy(exception_scenario()).unwrap();
//! let mut looper = AdaptationLoop::new(&engine, AdaptationConfig::default())
//!     .with_policy(RetryThenSkip::default())
//!     .with_policy(EscalateToWorklist::new("supervisor"));
//! // ... drive instances, then:
//! let report = looper.run_until_quiescent(64);
//! assert_eq!(report.committed, 0); // nothing deviated yet
//! ```
//!
//! [`EventCursor`]: adept_engine::EventCursor
//! [`EngineEvent::ActivityFailed`]: adept_engine::EngineEvent::ActivityFailed
//! [`EngineEvent::DeviationDetected`]: adept_engine::EngineEvent::DeviationDetected
//! [`EngineEvent::AdaptationCommitted`]: adept_engine::EngineEvent::AdaptationCommitted
//! [`EngineEvent::AdaptationRejected`]: adept_engine::EngineEvent::AdaptationRejected
//! [`Decision::Loop`]: adept_state::Decision::Loop

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod deviation;
mod plan;
mod policy;
mod runner;
mod view;

pub use deviation::Deviation;
pub use plan::RecoveryPlan;
pub use policy::{AdaptationPolicy, CompensateOnFailure, EscalateToWorklist, RetryThenSkip};
pub use runner::{AdaptationConfig, AdaptationLoop, AdaptationReport};
pub use view::SchemaView;
