//! Deviation classification: what the detector found wrong.

use adept_model::{InstanceId, NodeId};
use std::fmt;

/// A classified deviation of one running instance from its intended
/// execution — the input of [`AdaptationPolicy::plan`](crate::AdaptationPolicy::plan).
///
/// Every deviation has a stable [`key`](Deviation::key): the single-flight
/// guard ensures at most one recovery attempt chain per key, so an
/// instance is never adapted twice for one deviation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Deviation {
    /// An activity failed (the engine emitted `ActivityFailed`).
    ActivityFailed {
        /// The instance.
        instance: InstanceId,
        /// The failed activity.
        node: NodeId,
        /// How many times this activity has failed so far (monotone —
        /// each failure is a *new* deviation with a new key).
        attempts: u32,
        /// The application-level failure reason.
        reason: String,
    },
    /// A started activity exceeded its deadline (logical-clock ticks).
    DeadlineBreached {
        /// The instance.
        instance: InstanceId,
        /// The overrunning activity.
        node: NodeId,
        /// The tick the activity started — part of the key, so one
        /// overrunning start is one deviation no matter how long it runs.
        since: u64,
        /// Ticks waited beyond the start.
        waited: u64,
    },
    /// An instance has been sitting on a pending external loop decision
    /// with no activity for too long.
    DecisionStuck {
        /// The instance.
        instance: InstanceId,
        /// The loop-end node awaiting the decision.
        loop_end: NodeId,
        /// Completed iterations at detection (keys one deviation per
        /// stuck iteration).
        completed: u32,
        /// Ticks since the instance's last engine event.
        waited: u64,
    },
    /// The worklist repeatedly failed to resolve the instance — it offers
    /// no work and nobody will ever pick it up.
    WorklistStarvation {
        /// The instance.
        instance: InstanceId,
        /// Resolution failures observed.
        failures: u32,
    },
}

impl Deviation {
    /// The deviating instance.
    pub fn instance(&self) -> InstanceId {
        match self {
            Deviation::ActivityFailed { instance, .. }
            | Deviation::DeadlineBreached { instance, .. }
            | Deviation::DecisionStuck { instance, .. }
            | Deviation::WorklistStarvation { instance, .. } => *instance,
        }
    }

    /// The node the deviation anchors to, when one is known.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Deviation::ActivityFailed { node, .. } | Deviation::DeadlineBreached { node, .. } => {
                Some(*node)
            }
            Deviation::DecisionStuck { loop_end, .. } => Some(*loop_end),
            Deviation::WorklistStarvation { .. } => None,
        }
    }

    /// The stable single-flight key: equal keys describe the *same*
    /// deviation occurrence and are recovered at most once.
    pub fn key(&self) -> String {
        match self {
            Deviation::ActivityFailed { node, attempts, .. } => format!("fail:{node}#{attempts}"),
            Deviation::DeadlineBreached { node, since, .. } => format!("deadline:{node}@{since}"),
            Deviation::DecisionStuck {
                loop_end,
                completed,
                ..
            } => format!("stuck:{loop_end}#{completed}"),
            Deviation::WorklistStarvation { failures, .. } => format!("starve:#{failures}"),
        }
    }
}

impl fmt::Display for Deviation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Deviation::ActivityFailed {
                instance,
                node,
                attempts,
                reason,
            } => write!(
                f,
                "{instance}: {node} failed (attempt {attempts}): {reason}"
            ),
            Deviation::DeadlineBreached {
                instance,
                node,
                waited,
                ..
            } => write!(
                f,
                "{instance}: {node} breached its deadline ({waited} ticks)"
            ),
            Deviation::DecisionStuck {
                instance,
                loop_end,
                waited,
                ..
            } => write!(
                f,
                "{instance}: decision at {loop_end} stuck for {waited} ticks"
            ),
            Deviation::WorklistStarvation { instance, failures } => {
                write!(f, "{instance}: starved ({failures} worklist failures)")
            }
        }
    }
}
