//! The adaptation loop: detect → synthesize → preview → commit.

use crate::{AdaptationPolicy, Deviation, RecoveryPlan, SchemaView};
use adept_core::{annotate_activity, compensation_for, skip_activity, ChangeOp, Verdict};
use adept_engine::{
    EngineCommand, EngineError, EngineEvent, EventCursor, FailureKind, ProcessEngine,
};
use adept_model::{InstanceId, NodeId};
use adept_state::NodeState;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Tuning knobs for an [`AdaptationLoop`].
#[derive(Debug, Clone)]
pub struct AdaptationConfig {
    /// Worker threads for executing a tick's recovery batch (`1` =
    /// inline on the loop thread).
    pub threads: usize,
    /// Maximum recoveries attempted per tick; the overflow stays queued.
    pub max_in_flight: usize,
    /// Deadline (in ticks) for activities without an
    /// `expected_duration_min` annotation.
    pub default_deadline: u64,
    /// Ticks of per-instance silence before a pending external loop
    /// decision counts as stuck.
    pub decision_deadline: u64,
    /// Worklist resolution failures before an instance counts as
    /// starved.
    pub starvation_threshold: u32,
    /// Contested (concurrent-change) retries per deviation before the
    /// loop gives up on planning it.
    pub max_plan_retries: u32,
    /// Whether to `Drive` an instance forward after firing a retry.
    pub drive_after_repair: bool,
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            max_in_flight: 64,
            default_deadline: 8,
            decision_deadline: 16,
            starvation_threshold: 2,
            max_plan_retries: 16,
            drive_after_repair: false,
        }
    }
}

/// Counters summarizing what an [`AdaptationLoop`] has done so far.
#[derive(Debug, Clone, Default)]
pub struct AdaptationReport {
    /// Ticks executed.
    pub ticks: u64,
    /// Deviations that entered recovery processing.
    pub deviations: u64,
    /// Recoveries committed (every one passed preview first).
    pub committed: u64,
    /// Deviations for which every synthesized plan was rejected (or no
    /// policy produced one).
    pub rejected: u64,
    /// Instances given up on and escalated to the worklist.
    pub escalated: u64,
    /// Recovery attempts requeued after losing a concurrent-change race.
    pub contested: u64,
    /// Cursor resyncs after falling behind the monitor's retention.
    pub resyncs: u64,
    /// Events lost to retention eviction across all resyncs.
    pub events_skipped: u64,
    /// Backoff retries scheduled.
    pub retries_scheduled: u64,
    /// Backoff retries fired (activity re-started).
    pub retries_fired: u64,
}

/// Result of one recovery attempt with one plan.
enum PlanResult {
    /// The plan passed preview and committed (`seq` = txn log sequence;
    /// command-level plans report `seq` 0).
    Committed {
        seq: u64,
        retry_at: Option<(u64, NodeId)>,
    },
    /// The instance was handed to the worklist (with the txn seq when a
    /// role rewrite was committed).
    Escalated { seq: Option<u64> },
    /// Preview (or staging) rejected the plan; try the next policy.
    Rejected(String),
    /// Lost a concurrent-change race; retry the whole deviation later.
    Contested(String),
    /// The instance vanished; drop the deviation.
    Gone,
}

/// Final outcome of processing one deviation through the policy chain.
enum Outcome {
    Committed { retry_at: Option<(u64, NodeId)> },
    Escalated { seq: Option<u64> },
    AllRejected,
    Contested { reason: String },
    Gone,
}

/// The automatic run-time adaptation loop.
///
/// Subscribes to the engine's monitor stream via an [`EventCursor`],
/// classifies [`Deviation`]s, asks its [`AdaptationPolicy`] chain to
/// synthesize [`RecoveryPlan`]s, and commits only plans that pass the
/// engine's change-transaction preview. See the crate docs for the full
/// lifecycle.
pub struct AdaptationLoop<'e> {
    engine: &'e ProcessEngine,
    policies: Vec<Box<dyn AdaptationPolicy>>,
    config: AdaptationConfig,
    cursor: EventCursor,
    tick: u64,
    report: AdaptationReport,
    /// Running activities: `(instance, node) -> (start_tick, deadline)`.
    running: BTreeMap<(InstanceId, NodeId), (u64, u64)>,
    /// Observed failures per activity (drives the retry budget).
    attempts: BTreeMap<(InstanceId, NodeId), u32>,
    /// Worklist resolution failures per instance.
    wl_failures: BTreeMap<InstanceId, u32>,
    /// Tick of each instance's last (non-adaptation) engine event.
    last_event: BTreeMap<InstanceId, u64>,
    /// Single-flight guard: deviation keys already recovered (or given
    /// up on) per instance.
    handled: BTreeSet<(InstanceId, String)>,
    /// Contested-retry counts per deviation key.
    plan_tries: BTreeMap<(InstanceId, String), u32>,
    /// Instances escalated to the worklist (no further adaptation).
    escalated: BTreeSet<InstanceId>,
    /// Instances that finished or were removed.
    finished: BTreeSet<InstanceId>,
    /// Backoff retries due at a tick: `due_tick -> [(instance, node)]`.
    retries: BTreeMap<u64, Vec<(InstanceId, NodeId)>>,
    /// Deviations waiting for a slot (budget overflow / contested).
    pending: VecDeque<Deviation>,
}

impl<'e> AdaptationLoop<'e> {
    /// Creates a loop over `engine`'s monitor stream, starting at the
    /// stream's current tail.
    pub fn new(engine: &'e ProcessEngine, config: AdaptationConfig) -> Self {
        let cursor = engine.monitor.subscribe();
        Self {
            engine,
            policies: Vec::new(),
            config,
            cursor,
            tick: 0,
            report: AdaptationReport::default(),
            running: BTreeMap::new(),
            attempts: BTreeMap::new(),
            wl_failures: BTreeMap::new(),
            last_event: BTreeMap::new(),
            handled: BTreeSet::new(),
            plan_tries: BTreeMap::new(),
            escalated: BTreeSet::new(),
            finished: BTreeSet::new(),
            retries: BTreeMap::new(),
            pending: VecDeque::new(),
        }
    }

    /// Like [`new`](AdaptationLoop::new), but the cursor starts at the
    /// oldest *retained* event instead of the tail, so the loop adopts a
    /// backlog of deviations that predates it (e.g. after a restart).
    pub fn from_backlog(engine: &'e ProcessEngine, config: AdaptationConfig) -> Self {
        let mut looper = Self::new(engine, config);
        looper.cursor = engine
            .monitor
            .subscribe_from(engine.monitor.oldest_retained());
        looper
    }

    /// Appends a policy to the chain (consulted in registration order).
    pub fn with_policy(mut self, policy: impl AdaptationPolicy + 'static) -> Self {
        self.policies.push(Box::new(policy));
        self
    }

    /// The counters accumulated so far.
    pub fn report(&self) -> &AdaptationReport {
        &self.report
    }

    /// The loop's logical clock.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Instances the loop has given up on and escalated.
    pub fn escalated_instances(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.escalated.iter().copied()
    }

    /// Advances the logical clock by one tick: consumes new monitor
    /// events, detects deviations, fires due retries, and runs one
    /// bounded batch of recoveries. Returns the number of events
    /// consumed plus deviations processed this tick (0 = idle tick).
    pub fn tick(&mut self) -> usize {
        self.tick += 1;
        self.report.ticks += 1;

        // 1. Consume the event stream; on lag, resync explicitly and
        //    rebuild the running-activity table from the store — never
        //    silently skip.
        let mut fresh: Vec<Deviation> = Vec::new();
        let events = match self.cursor.poll(&self.engine.monitor) {
            Ok(events) => events,
            Err(_) => {
                let skipped = self.cursor.resync(&self.engine.monitor);
                self.report.resyncs += 1;
                self.report.events_skipped += skipped;
                self.rescan();
                self.cursor.poll(&self.engine.monitor).unwrap_or_default()
            }
        };
        let polled = events.len();
        for (_, event) in &events {
            self.classify(event, &mut fresh);
            for policy in &self.policies {
                if let Some(d) = policy.observe(event) {
                    fresh.push(d);
                }
            }
        }

        // 2. Deadline scan over running activities.
        for (&(id, node), &(since, deadline)) in &self.running {
            if self.tick.saturating_sub(since) <= deadline {
                continue;
            }
            let d = Deviation::DeadlineBreached {
                instance: id,
                node,
                since,
                waited: self.tick - since,
            };
            if self.admissible(&d) {
                fresh.push(d);
            }
        }

        // 3. Stuck-decision scan over silent instances.
        let quiet: Vec<InstanceId> = self
            .last_event
            .iter()
            .filter(|(id, last)| {
                self.tick.saturating_sub(**last) > self.config.decision_deadline
                    && !self.finished.contains(*id)
                    && !self.escalated.contains(*id)
                    && !self.running.keys().any(|(i, _)| i == *id)
            })
            .map(|(id, _)| *id)
            .collect();
        for id in quiet {
            let Ok(view) = SchemaView::capture(self.engine, id) else {
                continue;
            };
            if let Some((loop_end, completed)) = view.pending_loop_decision() {
                let last = self.last_event.get(&id).copied().unwrap_or(0);
                let d = Deviation::DecisionStuck {
                    instance: id,
                    loop_end,
                    completed,
                    waited: self.tick - last,
                };
                if self.admissible(&d) {
                    fresh.push(d);
                }
            }
        }

        // 4. Assemble the batch: queued + fresh, one deviation per
        //    instance (single-flight), bounded by the in-flight budget.
        let mut candidates: VecDeque<Deviation> = std::mem::take(&mut self.pending);
        candidates.extend(fresh);
        let mut batch: Vec<Deviation> = Vec::new();
        let mut batch_keys: BTreeSet<(InstanceId, String)> = BTreeSet::new();
        let mut batch_instances: BTreeSet<InstanceId> = BTreeSet::new();
        for d in candidates {
            if !self.admissible(&d) {
                continue;
            }
            let key = (d.instance(), d.key());
            if batch_keys.contains(&key) {
                continue;
            }
            if batch_instances.contains(&d.instance()) || batch.len() >= self.config.max_in_flight {
                self.pending.push_back(d);
                continue;
            }
            batch_instances.insert(d.instance());
            batch_keys.insert(key);
            batch.push(d);
        }

        // 5. Execute the batch (parallel when configured — the batch
        //    holds at most one deviation per instance, so workers never
        //    race on the same instance).
        let processed = batch.len();
        self.report.deviations += processed as u64;
        let outcomes = self.execute_batch(&batch);

        // 6. Merge outcomes back into the single-threaded bookkeeping.
        for (d, outcome) in batch.into_iter().zip(outcomes) {
            let key = (d.instance(), d.key());
            match outcome {
                Outcome::Committed { retry_at } => {
                    self.handled.insert(key);
                    self.report.committed += 1;
                    if let Some((delay, node)) = retry_at {
                        self.retries
                            .entry(self.tick + delay.max(1))
                            .or_default()
                            .push((d.instance(), node));
                        self.report.retries_scheduled += 1;
                    }
                }
                Outcome::Escalated { seq } => {
                    self.handled.insert(key);
                    self.escalated.insert(d.instance());
                    self.report.escalated += 1;
                    if seq.is_some() {
                        self.report.committed += 1;
                    }
                    // The instance now belongs to a human — drop any
                    // backoff retry that would re-start its work.
                    for v in self.retries.values_mut() {
                        v.retain(|(i, _)| *i != d.instance());
                    }
                }
                Outcome::AllRejected => {
                    self.handled.insert(key);
                    self.report.rejected += 1;
                }
                Outcome::Contested { reason } => {
                    let tries = self.plan_tries.entry(key.clone()).or_insert(0);
                    *tries += 1;
                    if *tries > self.config.max_plan_retries {
                        self.engine.monitor.record(EngineEvent::AdaptationRejected {
                            instance: d.instance(),
                            plan: "-".into(),
                            deviation: d.key(),
                            reason: format!("gave up after {tries} contested attempts: {reason}"),
                        });
                        self.handled.insert(key);
                        self.escalated.insert(d.instance());
                        self.report.escalated += 1;
                    } else {
                        self.report.contested += 1;
                        self.pending.push_back(d);
                    }
                }
                Outcome::Gone => {
                    self.finished.insert(d.instance());
                    self.prune(d.instance());
                }
            }
        }

        // 7. Fire due backoff retries — after the merge, so a retry
        //    scheduled for an instance that was escalated (or finished)
        //    this very tick never re-starts its work.
        let due: Vec<u64> = self
            .retries
            .keys()
            .copied()
            .take_while(|t| *t <= self.tick)
            .collect();
        for t in due {
            for (id, node) in self.retries.remove(&t).unwrap_or_default() {
                if self.finished.contains(&id) || self.escalated.contains(&id) {
                    continue;
                }
                // The re-start may legitimately fail (the node was
                // adapted away or completed by a worklist client in the
                // meantime) — tolerated, not fatal.
                let _ = self
                    .engine
                    .submit(EngineCommand::Start { instance: id, node });
                self.report.retries_fired += 1;
                if self.config.drive_after_repair {
                    let _ = self.engine.submit(EngineCommand::Drive {
                        instance: id,
                        max: None,
                    });
                }
            }
        }

        polled + processed
    }

    /// Runs [`tick`](AdaptationLoop::tick) until the loop is quiescent
    /// (two consecutive idle ticks with nothing queued) or `max_ticks`
    /// elapse. Returns the accumulated report.
    pub fn run_until_quiescent(&mut self, max_ticks: u64) -> AdaptationReport {
        let mut idle = 0u32;
        for _ in 0..max_ticks {
            let work = self.tick();
            if work == 0 && self.pending.is_empty() && self.retries.is_empty() {
                idle += 1;
                if idle >= 2 {
                    break;
                }
            } else {
                idle = 0;
            }
        }
        self.report.clone()
    }

    /// Whether a deviation is still worth recovering.
    fn admissible(&self, d: &Deviation) -> bool {
        let id = d.instance();
        !self.finished.contains(&id)
            && !self.escalated.contains(&id)
            && !self.handled.contains(&(id, d.key()))
    }

    /// Classifies one engine event into the loop's bookkeeping, pushing
    /// any fresh deviation.
    fn classify(&mut self, event: &EngineEvent, fresh: &mut Vec<Deviation>) {
        if let Some(id) = event_instance(event) {
            self.last_event.insert(id, self.tick);
        }
        match event {
            EngineEvent::ActivityStarted { instance, node } => {
                let deadline = self
                    .engine
                    .materialized(*instance)
                    .ok()
                    .and_then(|(schema, _)| {
                        schema
                            .node(*node)
                            .ok()
                            .and_then(|x| x.attrs.expected_duration_min)
                    })
                    .map(u64::from)
                    .unwrap_or(self.config.default_deadline);
                self.running
                    .insert((*instance, *node), (self.tick, deadline));
            }
            EngineEvent::ActivityCompleted { instance, node } => {
                self.running.remove(&(*instance, *node));
                self.attempts.remove(&(*instance, *node));
            }
            EngineEvent::ActivityFailed {
                instance,
                node,
                reason,
            } => {
                self.running.remove(&(*instance, *node));
                let attempts = self.attempts.entry((*instance, *node)).or_insert(0);
                *attempts += 1;
                let d = Deviation::ActivityFailed {
                    instance: *instance,
                    node: *node,
                    attempts: *attempts,
                    reason: reason.clone(),
                };
                if self.admissible(&d) {
                    fresh.push(d);
                }
            }
            EngineEvent::WorklistResolutionFailed { instance, .. } => {
                let failures = self.wl_failures.entry(*instance).or_insert(0);
                *failures += 1;
                if *failures == self.config.starvation_threshold {
                    let d = Deviation::WorklistStarvation {
                        instance: *instance,
                        failures: *failures,
                    };
                    if self.admissible(&d) {
                        fresh.push(d);
                    }
                }
            }
            EngineEvent::InstanceFinished { instance }
            | EngineEvent::InstanceRemoved { instance } => {
                self.finished.insert(*instance);
                self.prune(*instance);
            }
            _ => {}
        }
    }

    /// Drops all per-instance tracking for a finished/vanished instance.
    fn prune(&mut self, id: InstanceId) {
        self.running.retain(|(i, _), _| *i != id);
        self.attempts.retain(|(i, _), _| *i != id);
        self.wl_failures.remove(&id);
        self.last_event.remove(&id);
        for v in self.retries.values_mut() {
            v.retain(|(i, _)| *i != id);
        }
    }

    /// Rebuilds the running-activity table from the store after an event
    /// gap (retention eviction), preserving known start ticks.
    fn rescan(&mut self) {
        let old = std::mem::take(&mut self.running);
        for id in self.engine.store.ids() {
            if self.finished.contains(&id) {
                continue;
            }
            let Some(inst) = self.engine.store.get(id) else {
                continue;
            };
            let Ok((schema, _)) = self.engine.materialized(id) else {
                continue;
            };
            for node in inst.state.marking.nodes_in(NodeState::Running) {
                let deadline = schema
                    .node(node)
                    .ok()
                    .and_then(|x| x.attrs.expected_duration_min)
                    .map(u64::from)
                    .unwrap_or(self.config.default_deadline);
                let since = old.get(&(id, node)).map(|(s, _)| *s).unwrap_or(self.tick);
                self.running.insert((id, node), (since, deadline));
            }
        }
    }

    /// Runs the batch through the policy chain, inline or on worker
    /// threads.
    fn execute_batch(&self, batch: &[Deviation]) -> Vec<Outcome> {
        let engine = self.engine;
        let policies = &self.policies[..];
        let threads = self.config.threads.max(1);
        if threads <= 1 || batch.len() < 2 {
            return batch.iter().map(|d| process(engine, policies, d)).collect();
        }
        let chunk = batch.len().div_ceil(threads);
        let mut results: Vec<Vec<Outcome>> = Vec::new();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = batch
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move |_| {
                        part.iter()
                            .map(|d| process(engine, policies, d))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                // A worker panic downgrades its chunk to contested — the
                // deviations are requeued rather than lost.
                results.push(h.join().unwrap_or_default());
            }
        })
        .expect("crossbeam scope");
        let mut flat: Vec<Outcome> = results.into_iter().flatten().collect();
        while flat.len() < batch.len() {
            flat.push(Outcome::Contested {
                reason: "recovery worker panicked".into(),
            });
        }
        flat
    }
}

/// Processes one deviation: record the detection, capture a fresh view,
/// and walk the policy chain until a plan commits.
fn process(
    engine: &ProcessEngine,
    policies: &[Box<dyn AdaptationPolicy>],
    d: &Deviation,
) -> Outcome {
    engine.monitor.record(EngineEvent::DeviationDetected {
        instance: d.instance(),
        node: d.node(),
        kind: d.key(),
    });
    let Ok(view) = SchemaView::capture(engine, d.instance()) else {
        return Outcome::Gone;
    };
    let mut any_plan = false;
    for policy in policies {
        let Some(plan) = policy.plan(d, &view) else {
            continue;
        };
        any_plan = true;
        match execute_plan(engine, &view, &plan) {
            PlanResult::Committed { seq, retry_at } => {
                engine.monitor.record(EngineEvent::AdaptationCommitted {
                    instance: d.instance(),
                    plan: plan.to_string(),
                    deviation: d.key(),
                    seq,
                });
                return Outcome::Committed { retry_at };
            }
            PlanResult::Escalated { seq } => {
                match seq {
                    Some(seq) => engine.monitor.record(EngineEvent::AdaptationCommitted {
                        instance: d.instance(),
                        plan: plan.to_string(),
                        deviation: d.key(),
                        seq,
                    }),
                    None => engine.monitor.record(EngineEvent::AdaptationRejected {
                        instance: d.instance(),
                        plan: plan.to_string(),
                        deviation: d.key(),
                        reason: "unrecoverable: escalated to worklist".into(),
                    }),
                };
                return Outcome::Escalated { seq };
            }
            PlanResult::Rejected(reason) => {
                engine.monitor.record(EngineEvent::AdaptationRejected {
                    instance: d.instance(),
                    plan: plan.to_string(),
                    deviation: d.key(),
                    reason,
                });
                // Fall through to the next policy.
            }
            PlanResult::Contested(reason) => return Outcome::Contested { reason },
            PlanResult::Gone => return Outcome::Gone,
        }
    }
    if !any_plan {
        engine.monitor.record(EngineEvent::AdaptationRejected {
            instance: d.instance(),
            plan: "-".into(),
            deviation: d.key(),
            reason: "no policy produced a plan".into(),
        });
    }
    Outcome::AllRejected
}

/// Executes one plan. Structural plans go through a staged change
/// transaction and commit only after a passing preview; command plans go
/// through the ordinary submit path (whose own state preconditions gate
/// them).
fn execute_plan(engine: &ProcessEngine, view: &SchemaView, plan: &RecoveryPlan) -> PlanResult {
    match plan {
        RecoveryPlan::SkipActivity { node } => {
            run_txn(engine, view.instance, &[skip_activity(*node)]).map_committed(None)
        }
        RecoveryPlan::InsertCompensation {
            failed,
            compensation,
            skip_failed,
        } => {
            let Some(insert) = compensation_for(&view.schema, *failed, compensation) else {
                return PlanResult::Rejected("no insertion point for compensation".into());
            };
            let mut ops = vec![insert];
            if *skip_failed {
                ops.push(skip_activity(*failed));
            }
            run_txn(engine, view.instance, &ops).map_committed(None)
        }
        RecoveryPlan::RetryWithBackoff {
            node,
            delay_ticks,
            attempt,
        } => {
            let note = format!("retry #{attempt} after backoff of {delay_ticks} ticks");
            let Some(op) = annotate_activity(&view.schema, *node, |a| {
                a.description = Some(note);
            }) else {
                return PlanResult::Rejected("activity vanished before retry".into());
            };
            run_txn(engine, view.instance, &[op]).map_committed(Some((*delay_ticks, *node)))
        }
        RecoveryPlan::JumpBack { loop_end, iterate } => {
            match engine.submit(EngineCommand::DecideLoop {
                instance: view.instance,
                loop_end: *loop_end,
                iterate: *iterate,
            }) {
                Ok(_) => PlanResult::Committed {
                    seq: 0,
                    retry_at: None,
                },
                Err(e) => classify(&e),
            }
        }
        RecoveryPlan::Cancel { node } => {
            match engine.submit(EngineCommand::FailActivity {
                instance: view.instance,
                node: *node,
                reason: "deadline breached".into(),
            }) {
                Ok(_) => PlanResult::Committed {
                    seq: 0,
                    retry_at: None,
                },
                Err(e) => classify(&e),
            }
        }
        RecoveryPlan::Escalate { node, role } => match node {
            Some(n) => {
                let role = role.clone();
                let Some(op) = annotate_activity(&view.schema, *n, move |a| {
                    a.role = Some(role);
                }) else {
                    return PlanResult::Escalated { seq: None };
                };
                match run_txn(engine, view.instance, &[op]) {
                    TxnResult::Committed { seq } => PlanResult::Escalated { seq: Some(seq) },
                    TxnResult::Rejected(_) | TxnResult::Gone => PlanResult::Escalated { seq: None },
                    TxnResult::Contested(reason) => PlanResult::Contested(reason),
                }
            }
            None => PlanResult::Escalated { seq: None },
        },
    }
}

/// Result of one staged change transaction.
enum TxnResult {
    Committed { seq: u64 },
    Rejected(String),
    Contested(String),
    Gone,
}

impl TxnResult {
    /// Lifts a transaction result into a plan result, attaching the
    /// retry schedule on commit.
    fn map_committed(self, retry_at: Option<(u64, NodeId)>) -> PlanResult {
        match self {
            TxnResult::Committed { seq } => PlanResult::Committed { seq, retry_at },
            TxnResult::Rejected(r) => PlanResult::Rejected(r),
            TxnResult::Contested(r) => PlanResult::Contested(r),
            TxnResult::Gone => PlanResult::Gone,
        }
    }
}

/// Stages `ops` in a change session, previews, and commits only a
/// passing verdict — the preview gate every structural recovery must
/// clear.
fn run_txn(engine: &ProcessEngine, id: InstanceId, ops: &[ChangeOp]) -> TxnResult {
    let mut session = match engine.begin_change(id) {
        Ok(s) => s,
        Err(e) => return classify_txn(&e),
    };
    for op in ops {
        if let Err(e) = session.stage(op) {
            let r = classify_txn(&e);
            session.abort();
            return r;
        }
    }
    match session.preview() {
        Ok(p) if p.is_committable() => {}
        Ok(p) => {
            let reason = match &p.compliance {
                Some(Verdict::NotCompliant(c)) => format!("not compliant: {c}"),
                _ => "preview: verification failed".to_string(),
            };
            session.abort();
            return TxnResult::Rejected(reason);
        }
        Err(e) => {
            let r = classify_txn(&e);
            session.abort();
            return r;
        }
    }
    match session.commit() {
        Ok(receipt) => TxnResult::Committed { seq: receipt.seq },
        Err(e) => classify_txn(&e),
    }
}

/// Sorts an engine error into retry-later / give-up / try-next-policy.
fn classify_txn(e: &EngineError) -> TxnResult {
    match e.failure_kind() {
        FailureKind::ConcurrentChange => TxnResult::Contested(e.to_string()),
        FailureKind::Unresolvable => TxnResult::Gone,
        _ => TxnResult::Rejected(e.to_string()),
    }
}

/// [`classify_txn`] lifted to command-level plans.
fn classify(e: &EngineError) -> PlanResult {
    match classify_txn(e) {
        TxnResult::Committed { seq } => PlanResult::Committed {
            seq,
            retry_at: None,
        },
        TxnResult::Rejected(r) => PlanResult::Rejected(r),
        TxnResult::Contested(r) => PlanResult::Contested(r),
        TxnResult::Gone => PlanResult::Gone,
    }
}

/// The instance an event belongs to, for the per-instance silence clock.
/// Adaptation-trail events are deliberately excluded — the loop's own
/// monitor records must not mask an instance's stuckness.
fn event_instance(event: &EngineEvent) -> Option<InstanceId> {
    match event {
        EngineEvent::InstanceCreated { instance, .. }
        | EngineEvent::ActivityStarted { instance, .. }
        | EngineEvent::ActivityCompleted { instance, .. }
        | EngineEvent::ActivityFailed { instance, .. }
        | EngineEvent::DecisionMade { instance, .. }
        | EngineEvent::WorklistResolutionFailed { instance, .. }
        | EngineEvent::AdHocChanged { instance, .. }
        | EngineEvent::AdHocRejected { instance, .. }
        | EngineEvent::Migrated { instance, .. }
        | EngineEvent::MigrationRejected { instance, .. }
        | EngineEvent::InstanceFinished { instance }
        | EngineEvent::InstanceRemoved { instance } => Some(*instance),
        _ => None,
    }
}
