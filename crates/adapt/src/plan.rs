//! Recovery plans: what the synthesizer proposes.

use adept_model::NodeId;
use std::fmt;

/// A synthesized recovery, expressed in terms the engine's existing
/// change vocabulary can stage — the output of
/// [`AdaptationPolicy::plan`](crate::AdaptationPolicy::plan). Structural
/// plans become staged change transactions that must pass
/// [`preview`](adept_engine::ChangeSession::preview) before committing;
/// command plans go through the ordinary submit path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryPlan {
    /// Remove the (pending) activity from the flow — `deleteActivity`.
    SkipActivity {
        /// The activity to skip.
        node: NodeId,
    },
    /// Insert a compensation activity right after the failed one and
    /// (optionally) skip the failed activity itself.
    InsertCompensation {
        /// The failed activity.
        failed: NodeId,
        /// Name of the compensation activity.
        compensation: String,
        /// Whether the failed activity is removed after inserting the
        /// compensation.
        skip_failed: bool,
    },
    /// Commit a retry-note bias on the activity and re-start it after a
    /// backoff delay.
    RetryWithBackoff {
        /// The activity to retry.
        node: NodeId,
        /// Logical ticks to wait before the re-start.
        delay_ticks: u64,
        /// Which retry this is (for the bias note).
        attempt: u32,
    },
    /// Resolve a stuck external loop decision (`iterate = true` resets
    /// the loop body for another pass, `false` exits the loop).
    JumpBack {
        /// The loop-end node.
        loop_end: NodeId,
        /// Whether to iterate again instead of exiting.
        iterate: bool,
    },
    /// Cancel an overrunning activity: fail it back to `Activated` so a
    /// follow-up deviation can retry or skip it.
    Cancel {
        /// The running activity.
        node: NodeId,
    },
    /// Give up: hand the instance to a human. With a `node`, the
    /// activity's role is rewritten so it lands on the escalation role's
    /// worklist; without one, the instance is only marked unrecoverable.
    Escalate {
        /// The activity to re-assign, when one is known (and still
        /// exists).
        node: Option<NodeId>,
        /// The worklist role to escalate to.
        role: String,
    },
}

impl RecoveryPlan {
    /// The plan's short name (for reports and monitor events).
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPlan::SkipActivity { .. } => "skip",
            RecoveryPlan::InsertCompensation { .. } => "compensate",
            RecoveryPlan::RetryWithBackoff { .. } => "retry",
            RecoveryPlan::JumpBack { .. } => "jump-back",
            RecoveryPlan::Cancel { .. } => "cancel",
            RecoveryPlan::Escalate { .. } => "escalate",
        }
    }
}

impl fmt::Display for RecoveryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryPlan::SkipActivity { node } => write!(f, "skip({node})"),
            RecoveryPlan::InsertCompensation {
                failed,
                compensation,
                skip_failed,
            } => write!(
                f,
                "compensate({failed}, \"{compensation}\"{})",
                if *skip_failed { ", skip" } else { "" }
            ),
            RecoveryPlan::RetryWithBackoff {
                node,
                delay_ticks,
                attempt,
            } => write!(f, "retry({node}, #{attempt}, +{delay_ticks}t)"),
            RecoveryPlan::JumpBack { loop_end, iterate } => write!(
                f,
                "jump-back({loop_end}, {})",
                if *iterate { "iterate" } else { "exit" }
            ),
            RecoveryPlan::Cancel { node } => write!(f, "cancel({node})"),
            RecoveryPlan::Escalate { node, role } => match node {
                Some(n) => write!(f, "escalate({n} -> \"{role}\")"),
                None => write!(f, "escalate(\"{role}\")"),
            },
        }
    }
}
