//! A read-only snapshot of one instance for recovery planning.

use adept_engine::{EngineError, ProcessEngine};
use adept_model::{ActivityAttributes, Blocks, InstanceId, NodeId, ProcessSchema};
use adept_state::{Decision, Execution, InstanceState, NodeState};
use std::sync::Arc;

/// What a policy sees when planning recovery: the instance's materialised
/// schema (bias already overlaid), block structure, and a state snapshot —
/// everything [`AdaptationPolicy::plan`](crate::AdaptationPolicy::plan)
/// needs without touching the engine again. The schema/blocks `Arc`s are
/// the command path's own cached context, so capturing a view clones no
/// graph.
#[derive(Debug, Clone)]
pub struct SchemaView {
    /// The instance.
    pub instance: InstanceId,
    /// Schema version the instance runs on.
    pub version: u32,
    /// The materialised (possibly biased) schema.
    pub schema: Arc<ProcessSchema>,
    /// Its block structure.
    pub blocks: Arc<Blocks>,
    /// Snapshot of the runtime state at capture time.
    pub state: InstanceState,
}

impl SchemaView {
    /// Captures the current view of an instance.
    pub fn capture(engine: &ProcessEngine, id: InstanceId) -> Result<Self, EngineError> {
        let (schema, blocks) = engine.materialized(id)?;
        let inst = engine
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        Ok(Self {
            instance: id,
            version: inst.version,
            schema,
            blocks,
            state: inst.state,
        })
    }

    /// A zero-copy interpreter over the captured schema.
    pub fn execution(&self) -> Execution<'_> {
        Execution::with_blocks_ref(&self.schema, &self.blocks)
    }

    /// The captured node state.
    pub fn node_state(&self, n: NodeId) -> NodeState {
        self.state.marking.node(n)
    }

    /// The activity's operational attributes, if the node exists.
    pub fn attributes(&self, n: NodeId) -> Option<&ActivityAttributes> {
        self.schema.node(n).ok().map(|x| &x.attrs)
    }

    /// The node's unique control successor (see
    /// [`adept_core::control_successor`]).
    pub fn successor(&self, n: NodeId) -> Option<NodeId> {
        adept_core::control_successor(&self.schema, n)
    }

    /// Whether the activity may be skipped: its attributes allow it *and*
    /// the flow has an unambiguous continuation to hand off to.
    pub fn is_skippable(&self, n: NodeId) -> bool {
        self.attributes(n).is_some_and(|a| a.skippable) && self.successor(n).is_some()
    }

    /// The activity's deadline in logical ticks
    /// (`expected_duration_min`, else `default`).
    pub fn deadline_of(&self, n: NodeId, default: u64) -> u64 {
        self.attributes(n)
            .and_then(|a| a.expected_duration_min)
            .map(u64::from)
            .unwrap_or(default)
    }

    /// The `(loop_start, loop_end)` of the innermost loop enclosing `n`.
    pub fn enclosing_loop(&self, n: NodeId) -> Option<(NodeId, NodeId)> {
        adept_core::enclosing_loop(&self.blocks, n)
    }

    /// The pending *external* loop decision, if the instance is waiting
    /// on one: `(loop_end, completed_iterations)`.
    pub fn pending_loop_decision(&self) -> Option<(NodeId, u32)> {
        self.execution()
            .pending_decisions(&self.state)
            .into_iter()
            .find_map(|d| match d {
                Decision::Loop {
                    loop_end,
                    completed,
                } => Some((loop_end, completed)),
                _ => None,
            })
    }
}
