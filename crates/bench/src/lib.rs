//! Benchmark crate for the ADEPT2 reproduction (benches live in `benches/`).
