//! Macro benchmark: the compiled execution core at population scale.
//!
//! `N` lightweight instances (a linear activity chain) run the full
//! lifecycle — create → drive one step → type evolution → migrate-all →
//! drive to completion — on the compiled tier versus the interpreted
//! tier, with 1, 4 and 16 submitter threads.
//!
//! The population scales with `ADEPT_MACRO_INSTANCES` (default 2 000 so
//! a default `cargo bench` run stays tractable; set it to 1 000 000 for
//! the headline figure). **Caveat:** on a 1-vCPU container the 4- and
//! 16-thread rows measure lock and scheduler contention, not parallel
//! speedup — read the 1-thread rows as the tier comparison and the
//! multi-thread rows as a contention probe.

use adept_core::{ChangeOp, MigrationOptions, NewActivity};
use adept_engine::{EngineCommand, ProcessEngine};
use adept_model::{CompiledSchema, SchemaBuilder};
use adept_simgen::{generate_schema, GenParams, RandomDriver};
use adept_state::{CompiledExecution, Execution};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const CHAIN: usize = 4;

fn population() -> usize {
    std::env::var("ADEPT_MACRO_INSTANCES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000)
}

fn fresh_engine(compiled: bool) -> (ProcessEngine, String) {
    let engine = ProcessEngine::new();
    engine.set_compiled_enabled(compiled);
    let mut b = SchemaBuilder::new("macro");
    for k in 0..CHAIN {
        b.activity(&format!("step {k}"));
    }
    let name = engine.deploy(b.build().unwrap()).unwrap();
    (engine, name)
}

/// Create → drive(1) → evolve → migrate-all → drive-to-finish, the
/// population split across `threads` submitters.
fn run_lifecycle(engine: &ProcessEngine, name: &str, n: usize, threads: usize) -> usize {
    let ids = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let share = n / threads + usize::from(w < n % threads);
                s.spawn(move || {
                    let mut ids = Vec::with_capacity(share);
                    for _ in 0..share {
                        let id = engine.create_instance(name).expect("create");
                        engine
                            .submit(EngineCommand::Drive {
                                instance: id,
                                max: Some(1),
                            })
                            .expect("first step");
                        ids.push(id);
                    }
                    ids
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("submitter"))
            .collect::<Vec<_>>()
    });

    // Evolve the type (insert between untouched steps — every instance
    // stays compliant) and migrate the whole population.
    let v1 = engine.repo.deployed(name, 1).expect("deployed");
    let pred = v1.schema.node_by_name("step 1").expect("pred").id;
    let succ = v1.schema.node_by_name("step 2").expect("succ").id;
    let mut session = engine.begin_evolution(name).expect("session");
    session
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("extra check"),
            pred,
            succ,
        })
        .expect("stage");
    session.commit().expect("evolve");
    let report = engine
        .migrate_all(name, &MigrationOptions::default(), threads)
        .expect("migrate");
    assert_eq!(report.migrated(), n, "all unbiased instances migrate");

    std::thread::scope(|s| {
        for chunk in ids.chunks(n.div_ceil(threads).max(1)) {
            s.spawn(move || {
                for &id in chunk {
                    engine
                        .submit(EngineCommand::Drive {
                            instance: id,
                            max: None,
                        })
                        .expect("finish");
                }
            });
        }
    });
    ids.len()
}

fn bench_macro(c: &mut Criterion) {
    let n = population();
    let mut group = c.benchmark_group("macro_lifecycle");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    for threads in [1usize, 4, 16] {
        for compiled in [true, false] {
            let label = if compiled { "compiled" } else { "interpreted" };
            group.bench_with_input(
                BenchmarkId::new(label, format!("{threads}thr")),
                &threads,
                |b, &t| {
                    b.iter_batched(
                        || fresh_engine(compiled),
                        |(engine, name)| black_box(run_lifecycle(&engine, &name, n, t)),
                        BatchSize::PerIteration,
                    )
                },
            );
        }
    }
    group.finish();
}

/// The tier comparison with the engine stripped away: full driven runs
/// at the state layer, interpreter versus compiled arena, on generated
/// schemas of increasing size. This isolates what the arena buys —
/// slot-indexed activation/fixpoint passes instead of `BTreeMap` walks —
/// from the command path's store/WAL/worklist costs, which dominate the
/// `macro_lifecycle` group above.
fn bench_state_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_run");
    group.sample_size(20);
    for size in [12usize, 24, 48] {
        let schema = generate_schema(&GenParams::sized(size), 7);
        let ex = Execution::new(&schema).expect("acyclic generated schema");
        let arena = CompiledSchema::compile(&schema, &ex.blocks);
        let cex = CompiledExecution::new(&schema, &arena);
        group.bench_with_input(BenchmarkId::new("interpreted", size), &size, |b, _| {
            b.iter(|| {
                let mut driver = RandomDriver::new(11);
                let mut st = ex.init().expect("init");
                black_box(ex.run(&mut st, &mut driver, None).expect("run"))
            })
        });
        group.bench_with_input(BenchmarkId::new("compiled", size), &size, |b, _| {
            b.iter(|| {
                let mut driver = RandomDriver::new(11);
                let mut st = cex.init().expect("init");
                black_box(cex.run(&mut st, &mut driver, None).expect("run"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_macro, bench_state_tiers);
criterion_main!(benches);
