//! Durability costs: `wal_append` — what one journaled mutation adds on
//! each backend and fsync policy — and `recovery_replay` — rebuilding an
//! engine from a WAL of N records.
//!
//! The interesting comparisons: memory vs. file backend (the encode +
//! write cost without/with the filesystem), `SyncPolicy::Never` vs.
//! `Always` (the fsync tax a strict durability guarantee pays per
//! commit), replay throughput as the log grows, and — in
//! `wal_append_threads` — the global single-backend log vs. the
//! segmented log at 1/4/16 appender threads.
//!
//! NOTE: the dev container is 1 vCPU, so the threaded variants show
//! near-parity there — the segmented spread materialises on multi-core
//! hosts (same caveat as `store_throughput`).

use adept_engine::{recovery, ProcessEngine};
use adept_simgen::scenarios;
use adept_storage::{FileBackend, MemoryBackend, StorageBackend, SyncPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_wal_path() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("adept-bench-{}-{n}.wal", std::process::id()))
}

fn durable_engine(backend: Box<dyn StorageBackend>) -> (ProcessEngine, String) {
    let engine = ProcessEngine::with_wal(backend).unwrap();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    (engine, name)
}

/// One journaled mutation (instance creation: id allocation + WAL append
/// + insert) per backend/policy, against the non-durable baseline.
fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));

    group.bench_function("baseline_no_wal", |b| {
        let engine = ProcessEngine::new();
        let name = engine.deploy(scenarios::order_process()).unwrap();
        b.iter(|| black_box(engine.create_instance(&name).unwrap()))
    });

    group.bench_function("memory", |b| {
        let (engine, name) = durable_engine(Box::new(MemoryBackend::new()));
        b.iter(|| black_box(engine.create_instance(&name).unwrap()))
    });

    for (tag, policy) in [
        ("file_sync_never", SyncPolicy::Never),
        ("file_sync_interval_64", SyncPolicy::Interval(64)),
        ("file_sync_always", SyncPolicy::Always),
    ] {
        group.bench_function(tag, |b| {
            let path = temp_wal_path();
            let (engine, name) = durable_engine(Box::new(FileBackend::with_policy(&path, policy)));
            b.iter(|| black_box(engine.create_instance(&name).unwrap()));
            drop(engine);
            std::fs::remove_file(&path).ok();
        });
    }
    group.finish();
}

/// Concurrent journaled mutations: T threads hammer creations on one
/// durable engine, global single-backend log vs. a 16-segment log (both
/// in memory, isolating lock spread from fsync cost).
fn bench_wal_append_threads(c: &mut Criterion) {
    const PER_THREAD: usize = 64;
    let mut group = c.benchmark_group("wal_append_threads");
    group.sample_size(10);

    for threads in [1usize, 4, 16] {
        group.throughput(Throughput::Elements((threads * PER_THREAD) as u64));
        for (tag, segments) in [("global", 1usize), ("segmented_16", 16)] {
            group.bench_with_input(BenchmarkId::new(tag, threads), &threads, |b, &threads| {
                let backends: Vec<Box<dyn StorageBackend>> = (0..segments)
                    .map(|_| Box::new(MemoryBackend::new()) as Box<dyn StorageBackend>)
                    .collect();
                let engine = ProcessEngine::with_segmented_wal(backends).unwrap();
                let name = engine.deploy(scenarios::order_process()).unwrap();
                b.iter(|| {
                    std::thread::scope(|s| {
                        for _ in 0..threads {
                            let engine = &engine;
                            let name = &name;
                            s.spawn(move || {
                                for _ in 0..PER_THREAD {
                                    black_box(engine.create_instance(name).unwrap());
                                }
                            });
                        }
                    })
                })
            });
        }
    }
    group.finish();
}

/// Rebuilding an engine by replaying a WAL of ~N records (creations +
/// driven execution post-images), on both backends.
fn bench_recovery_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_replay");
    group.sample_size(10);

    for n in [64usize, 256] {
        group.throughput(Throughput::Elements(n as u64));

        // Prepare one log on a shared in-memory medium, replay it per
        // iteration.
        let medium = MemoryBackend::new();
        {
            let (engine, name) = durable_engine(Box::new(medium.clone()));
            for _ in 0..n / 2 {
                let id = engine.create_instance(&name).unwrap();
                adept_tests_drive(&engine, id);
            }
        }
        group.bench_with_input(BenchmarkId::new("memory", n), &n, |b, _| {
            b.iter(|| {
                let (engine, report) = recovery::recover(Box::new(medium.clone())).unwrap();
                black_box((engine.store.len(), report.replayed))
            })
        });

        let path = temp_wal_path();
        std::fs::write(&path, medium.raw()).unwrap();
        group.bench_with_input(BenchmarkId::new("file", n), &n, |b, _| {
            b.iter(|| {
                let (engine, report) =
                    recovery::recover(Box::new(FileBackend::with_policy(&path, SyncPolicy::Never)))
                        .unwrap();
                black_box((engine.store.len(), report.replayed))
            })
        });
        std::fs::remove_file(&path).ok();
    }
    group.finish();
}

/// Drives an instance one step through the command path (the bench crate
/// has no dev-dependency on the test helpers).
fn adept_tests_drive(engine: &ProcessEngine, id: adept_model::InstanceId) {
    let _ = engine.submit(adept_engine::EngineCommand::Drive {
        instance: id,
        max: Some(1),
    });
}

criterion_group!(
    benches,
    bench_wal_append,
    bench_wal_append_threads,
    bench_recovery_replay
);
criterion_main!(benches);
