//! Claim C4 — buildtime verification cost (structure + deadlock + data
//! flow) as a function of schema size. Verification runs after every
//! change operation, so its scaling underpins all change latencies.

use adept_simgen::{generate_schema, GenParams};
use adept_verify::verify_schema;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verification");
    group.sample_size(30);
    for size in [10usize, 25, 50, 100, 200] {
        let schema = generate_schema(&GenParams::sized(size), 7);
        group.throughput(Throughput::Elements(schema.node_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(schema.node_count()),
            &schema,
            |b, s| b.iter(|| black_box(verify_schema(s).is_correct())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
