//! The unified command API under load:
//!
//! * `submit_batch` — batched command submission versus the per-verb entry
//!   points and versus one `submit` per command. A batch resolves the
//!   instance context once and commits the whole group under a single
//!   store update, so the gap widens with batch size — this is the
//!   heavy-traffic execution hot path.
//! * `worklist` — the incrementally indexed worklist versus the full
//!   O(instances × nodes) recompute at population scale, plus the cost of
//!   keeping the index current from command outcomes.

use adept_engine::{EngineCommand, ProcessEngine};
use adept_model::{InstanceId, NodeId, SchemaBuilder};
use adept_simgen::{scenarios, RandomDriver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// A linear chain of `n` activities — every completion enables exactly the
/// next step, so a batch of start/complete pairs drains it deterministically.
fn chain_engine(n: usize) -> (ProcessEngine, InstanceId, Vec<NodeId>) {
    let mut b = SchemaBuilder::new("chain");
    for k in 0..n {
        b.activity(&format!("step {k}"));
    }
    let engine = ProcessEngine::new();
    let name = engine.deploy(b.build().unwrap()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let schema = engine.repo.deployed(&name, 1).unwrap();
    let nodes = (0..n)
        .map(|k| schema.schema.node_by_name(&format!("step {k}")).unwrap().id)
        .collect();
    (engine, id, nodes)
}

/// The pre-redesign verb implementation, reconstructed for comparison:
/// every verb resolved the schema context from scratch, read a **full
/// clone** of the instance (state, history, data), mutated the clone and
/// wrote it back with another clone — and the get → update round-trip was
/// not atomic. This is the exact code shape `submit` replaced.
fn legacy_verb_pair(engine: &ProcessEngine, id: InstanceId, node: NodeId) {
    use adept_state::Execution;
    for phase in 0..2u8 {
        let inst = engine.store.get(id).unwrap();
        let schema = engine.store.schema_of(&engine.repo, id).unwrap();
        let dep = engine.repo.deployed(&inst.type_name, inst.version).unwrap();
        let ex = Execution::with_blocks(&schema, (*dep.blocks).clone());
        let mut inst = engine.store.get(id).unwrap();
        if phase == 0 {
            ex.start_activity(&mut inst.state, node).unwrap();
        } else {
            ex.complete_activity(&mut inst.state, node, vec![]).unwrap();
        }
        engine.store.update(id, |i| i.state = inst.state.clone());
    }
}

fn bench_submit_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("submit_batch");
    group.sample_size(30);

    for n in [1usize, 8, 32] {
        group.throughput(Throughput::Elements(n as u64));

        // The old get → clone → update verbs (see `legacy_verb_pair`).
        group.bench_with_input(BenchmarkId::new("legacy_verbs", n), &n, |b, &n| {
            b.iter_batched(
                || chain_engine(n),
                |(engine, id, nodes)| {
                    for node in nodes {
                        legacy_verb_pair(&engine, id, node);
                    }
                    black_box(engine.is_finished(id).unwrap())
                },
                criterion::BatchSize::PerIteration,
            )
        });

        // Deprecated per-verb path: 2 engine calls per activity, each now
        // a thin delegate to `submit` (so the remaining gap to `batched`
        // is pure per-call overhead).
        #[allow(deprecated)] // explicit baseline: the per-verb wrappers
        group.bench_with_input(BenchmarkId::new("per_verb", n), &n, |b, &n| {
            b.iter_batched(
                || chain_engine(n),
                |(engine, id, nodes)| {
                    for node in nodes {
                        engine.start_activity(id, node).unwrap();
                        engine.complete_activity(id, node, vec![]).unwrap();
                    }
                    black_box(engine.is_finished(id).unwrap())
                },
                criterion::BatchSize::PerIteration,
            )
        });

        // One submit per command: the command path without batching.
        group.bench_with_input(BenchmarkId::new("submit_single", n), &n, |b, &n| {
            b.iter_batched(
                || chain_engine(n),
                |(engine, id, nodes)| {
                    for node in nodes {
                        engine
                            .submit(EngineCommand::Start { instance: id, node })
                            .unwrap();
                        engine
                            .submit(EngineCommand::Complete {
                                instance: id,
                                node,
                                writes: vec![],
                            })
                            .unwrap();
                    }
                    black_box(engine.is_finished(id).unwrap())
                },
                criterion::BatchSize::PerIteration,
            )
        });

        // The whole chain as ONE batch: one context resolution, one store
        // update, one monitor append, one index install.
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let (engine, id, nodes) = chain_engine(n);
                    let batch: Vec<EngineCommand> = nodes
                        .into_iter()
                        .flat_map(|node| {
                            [
                                EngineCommand::Start { instance: id, node },
                                EngineCommand::Complete {
                                    instance: id,
                                    node,
                                    writes: vec![],
                                },
                            ]
                        })
                        .collect();
                    (engine, id, batch)
                },
                |(engine, id, batch)| {
                    for r in engine.submit_batch(batch) {
                        r.unwrap();
                    }
                    black_box(engine.is_finished(id).unwrap())
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

/// 1k instances of the order process at mixed progress points.
fn population(n: usize) -> ProcessEngine {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    for k in 0..n {
        let id = engine.create_instance(&name).unwrap();
        let mut driver = RandomDriver::new(k as u64);
        engine
            .submit_with_driver(
                EngineCommand::Drive {
                    instance: id,
                    max: Some(k % 3),
                },
                &mut driver,
            )
            .unwrap();
    }
    engine
}

fn bench_worklist(c: &mut Criterion) {
    let mut group = c.benchmark_group("worklist");
    group.sample_size(20);
    const N: usize = 1_000;
    group.throughput(Throughput::Elements(N as u64));

    // Indexed: command outcomes populated the index; serving the global
    // worklist is an index walk.
    group.bench_function(BenchmarkId::new("indexed", N), |b| {
        let engine = population(N);
        let warm = engine.worklist(); // everything indexed from here on
        assert!(!warm.is_empty());
        b.iter(|| black_box(engine.worklist().len()))
    });

    // Full recompute: resolve every instance context and re-derive the
    // enabled set — the pre-index behaviour.
    group.bench_function(BenchmarkId::new("full_recompute", N), |b| {
        let engine = population(N);
        b.iter(|| black_box(engine.worklist_full().len()))
    });

    // Incremental maintenance: one command + one worklist read, the
    // steady-state mix of a live worklist server.
    group.bench_function(BenchmarkId::new("command_then_read", N), |b| {
        let engine = population(N);
        engine.worklist();
        let item = engine
            .worklist()
            .into_iter()
            .next()
            .expect("population offers work");
        b.iter(|| {
            engine
                .submit(EngineCommand::Drive {
                    instance: item.instance,
                    max: Some(1),
                })
                .unwrap();
            black_box(engine.worklist().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_submit_batch, bench_worklist);
criterion_main!(benches);
