//! Claim C5 — efficient state adaptation: the incremental per-operation
//! marking transfer vs. re-deriving the marking by replaying the reduced
//! history, sweeping the instance's history length.

use adept_core::{adapt_instance_state, apply_op, ChangeOp, Delta, NewActivity};
use adept_model::{LoopCond, SchemaBuilder};
use adept_state::{DefaultDriver, Execution};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_adaptation(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_adaptation");
    group.sample_size(40);
    for iterations in [1u32, 8, 32, 128] {
        let mut b = SchemaBuilder::new("loopy");
        b.activity("before");
        b.loop_start();
        b.activity("work a");
        b.activity("work b");
        b.loop_end(LoopCond::Times(iterations));
        let after = b.activity("after");
        let schema = b.build().unwrap();
        let ex = Execution::new(&schema).unwrap();
        let mut st = ex.init().unwrap();
        ex.run(&mut st, &mut DefaultDriver, None).unwrap();

        let mut evolved = schema.clone();
        let end = evolved.end_node();
        let rec = apply_op(
            &mut evolved,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("audit"),
                pred: after,
                succ: end,
            },
        )
        .unwrap();
        let delta: Delta = std::iter::once(rec).collect();
        let ex_new = Execution::new(&evolved).unwrap();
        let events = st.history.len();

        group.bench_with_input(BenchmarkId::new("incremental", events), &events, |b, _| {
            b.iter_batched(
                || st.clone(),
                |mut adapted| {
                    adapt_instance_state(&schema, &ex.blocks, &ex_new, &delta, &mut adapted)
                        .unwrap();
                    black_box(adapted)
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("full_replay", events), &events, |b, _| {
            b.iter(|| {
                let reduced = st.history.reduced(&schema, &ex.blocks);
                black_box(ex_new.replay(&reduced).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adaptation);
criterion_main!(benches);
