//! Multi-threaded mixed-workload throughput of the sharded instance store.
//!
//! The workload is the concurrent regime the paper promises ("thousands of
//! instances", migrated and executed on the fly): worker threads drive a
//! 1k-instance population forward through `submit_batch`, poll the global
//! worklist, and a migration sweeps the whole population to a new version
//! — all at the same time, at 1/4/16 threads.
//!
//! Two store configurations run the identical workload:
//!
//! * `sharded` — the default [`DEFAULT_SHARD_COUNT`]-way sharded store;
//! * `single_lock` — `InstanceStore::with_shards(_, 1)`, the old
//!   one-global-`RwLock` layout.
//!
//! The total work per iteration is constant, so the wall-clock time should
//! *fall* as threads are added — for the sharded store it does; the
//! single-lock store plateaus because every command serialises on one
//! write lock. (Acceptance: ≥1.5× sharded over single-lock at 4 threads.)
//!
//! The `durable_throughput` group runs the same workload on a *journaled*
//! engine (every mutation appends to the WAL before it becomes visible):
//!
//! * `wal_global` — one single-backend log, every append behind one lock;
//! * `wal_segmented_16` — a 16-segment log, appends spread over one
//!   segment lock each (both on in-memory media, isolating lock spread
//!   from fsync cost).
//!
//! **Caveat:** thread scaling is only observable with real cores. On a
//! single-CPU host (e.g. a 1-vCPU CI container — check `nproc`) all
//! configurations time-slice onto one core and the thread variants should
//! read as *parity* (sharding must not cost anything); run on a
//! multi-core machine to see the spread. The `instances_of` group below
//! measures the store's algorithmic win — the per-type secondary index
//! versus the old O(all instances) filter scan — which shows regardless
//! of core count.

use adept_core::MigrationOptions;
use adept_engine::{EngineCommand, ProcessEngine};
use adept_model::InstanceId;
use adept_simgen::scenarios;
use adept_storage::{
    InstanceStore, MemoryBackend, Representation, SchemaRepository, StorageBackend,
    DEFAULT_SHARD_COUNT,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const POPULATION: usize = 1_000;

/// A populated engine on a store with the given shard count, with a
/// pending evolution so the in-flight migration has real work.
fn populated(shards: usize) -> (ProcessEngine, String, Vec<InstanceId>) {
    let engine = ProcessEngine::from_parts(
        SchemaRepository::new(),
        InstanceStore::with_shards(Representation::Hybrid, shards),
    );
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let ids: Vec<InstanceId> = (0..POPULATION)
        .map(|_| engine.create_instance(&name).unwrap())
        .collect();
    let mut evolution = engine.begin_evolution(&name).unwrap();
    for op in scenarios::fig1_delta_ops(&engine.repo.deployed(&name, 1).unwrap().schema) {
        evolution.stage(&op).unwrap();
    }
    evolution.commit().unwrap();
    (engine, name, ids)
}

/// The fixed mixed workload: every instance is driven two steps in small
/// batches, the worklist is polled periodically, and one migration sweep
/// runs concurrently. Total work is identical for every thread count.
fn mixed_workload(engine: &ProcessEngine, name: &str, ids: &[InstanceId], threads: usize) -> usize {
    let chunk = ids.len().div_ceil(threads);
    let mut done = 0usize;
    crossbeam::scope(|scope| {
        let handles: Vec<_> = ids
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move |_| {
                    let mut completed = 0usize;
                    for (k, group) in part.chunks(8).enumerate() {
                        let cmds: Vec<EngineCommand> = group
                            .iter()
                            .map(|id| EngineCommand::Drive {
                                instance: *id,
                                max: Some(2),
                            })
                            .collect();
                        for r in engine.submit_batch(cmds) {
                            completed += r.map(|o| o.completed).unwrap_or(0);
                        }
                        if k % 4 == 0 {
                            completed += engine.worklist().len();
                        }
                    }
                    completed
                })
            })
            .collect();
        // The concurrent migration sweep (worker threads above are the
        // live traffic it races against).
        let report = engine
            .migrate_all(name, &MigrationOptions::default(), 1)
            .unwrap();
        done += report.migrated();
        for h in handles {
            done += h.join().expect("workload worker");
        }
    })
    .expect("crossbeam scope");
    done
}

fn bench_store_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(POPULATION as u64));

    for threads in [1usize, 4, 16] {
        for (label, shards) in [("sharded", DEFAULT_SHARD_COUNT), ("single_lock", 1)] {
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/threads{threads}"), POPULATION),
                &threads,
                |b, &threads| {
                    b.iter_batched(
                        || populated(shards),
                        |(engine, name, ids)| {
                            black_box(mixed_workload(&engine, &name, &ids, threads))
                        },
                        criterion::BatchSize::PerIteration,
                    )
                },
            );
        }
    }
    group.finish();
}

/// A populated *durable* engine journaling into an `n`-segment in-memory
/// WAL (n = 1 reproduces the old single-backend global log), with the
/// same pending evolution as [`populated`].
fn populated_durable(segments: usize) -> (ProcessEngine, String, Vec<InstanceId>) {
    let backends: Vec<Box<dyn StorageBackend>> = (0..segments)
        .map(|_| Box::new(MemoryBackend::new()) as Box<dyn StorageBackend>)
        .collect();
    let engine = ProcessEngine::with_segmented_wal(backends).unwrap();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let ids: Vec<InstanceId> = (0..POPULATION)
        .map(|_| engine.create_instance(&name).unwrap())
        .collect();
    let mut evolution = engine.begin_evolution(&name).unwrap();
    for op in scenarios::fig1_delta_ops(&engine.repo.deployed(&name, 1).unwrap().schema) {
        evolution.stage(&op).unwrap();
    }
    evolution.commit().unwrap();
    (engine, name, ids)
}

/// The identical mixed workload on a journaled engine: global
/// single-backend WAL vs. a 16-segment WAL, at 1/4/16 threads.
fn bench_durable_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("durable_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(POPULATION as u64));

    for threads in [1usize, 4, 16] {
        for (label, segments) in [("wal_global", 1usize), ("wal_segmented_16", 16)] {
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/threads{threads}"), POPULATION),
                &threads,
                |b, &threads| {
                    b.iter_batched(
                        || populated_durable(segments),
                        |(engine, name, ids)| {
                            black_box(mixed_workload(&engine, &name, &ids, threads))
                        },
                        criterion::BatchSize::PerIteration,
                    )
                },
            );
        }
    }
    group.finish();
}

/// The old `instances_of` was a filter scan over **every** instance in
/// the store; the sharded store serves it from per-shard `type → ids`
/// indexes. Reconstruct the scan as the baseline and measure both over a
/// population where the queried type owns 1/8 of the instances.
fn bench_type_index(c: &mut Criterion) {
    use adept_model::SchemaBuilder;

    const TYPES: usize = 8;
    const TOTAL: usize = 8_000;

    let engine = ProcessEngine::new();
    let names: Vec<String> = (0..TYPES)
        .map(|k| {
            let mut b = SchemaBuilder::new(format!("type {k}"));
            b.activity("a");
            b.activity("b");
            engine.deploy(b.build().unwrap()).unwrap()
        })
        .collect();
    for k in 0..TOTAL {
        engine.create_instance(&names[k % TYPES]).unwrap();
    }
    let queried = names[3].clone();

    let mut group = c.benchmark_group("instances_of");
    group.sample_size(30);
    group.throughput(Throughput::Elements((TOTAL / TYPES) as u64));
    group.bench_function(BenchmarkId::new("indexed", TOTAL), |b| {
        b.iter(|| black_box(engine.store.instances_of(&queried).len()))
    });
    // The pre-sharding implementation: walk every stored instance and
    // compare its type name.
    group.bench_function(BenchmarkId::new("full_scan", TOTAL), |b| {
        b.iter(|| {
            let mut n = 0usize;
            for id in engine.store.ids() {
                if engine
                    .store
                    .with_instance(id, |inst| inst.type_name == queried)
                    .unwrap_or(false)
                {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_store_throughput,
    bench_durable_throughput,
    bench_type_index
);
criterion_main!(benches);
