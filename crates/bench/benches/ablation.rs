//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **History reduction** — the compliance criterion replays *reduced*
//!    histories (last loop iteration only). Ablating the reduction shows
//!    why: replay cost over full histories grows with total iterations,
//!    reduced replay stays proportional to one iteration.
//! 2. **Target re-verification during migration** — biased instances
//!    re-verify the combined schema (type change + bias). Disabling it
//!    (unsound!) quantifies the price of the safety net.
//! 3. **Substitution block vs. recorded-op re-application** — a biased
//!    instance's schema can be rebuilt either by overlaying its block
//!    (pure graph patch) or by re-applying its recorded operations
//!    (preconditions included); the block is the faster access path.

#![allow(deprecated)] // single-op wrappers exercised deliberately

use adept_core::{apply_op, apply_recorded, ChangeOp, Delta, MigrationOptions, NewActivity};
use adept_model::{EdgeKind, LoopCond, SchemaBuilder};
use adept_simgen::scenarios;
use adept_state::{DefaultDriver, Execution};
use adept_storage::SubstitutionBlock;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_history_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_history_reduction");
    group.sample_size(30);
    for iterations in [8u32, 64] {
        let mut b = SchemaBuilder::new("loopy");
        b.loop_start();
        b.activity("work");
        b.loop_end(LoopCond::Times(iterations));
        let schema = b.build().unwrap();
        let ex = Execution::new(&schema).unwrap();
        let mut st = ex.init().unwrap();
        ex.run(&mut st, &mut DefaultDriver, None).unwrap();

        group.bench_with_input(
            BenchmarkId::new("replay_reduced", iterations),
            &iterations,
            |b, _| {
                b.iter(|| {
                    let reduced = st.history.reduced(&schema, &ex.blocks);
                    black_box(ex.replay(&reduced).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("replay_full", iterations),
            &iterations,
            |b, _| b.iter(|| black_box(ex.replay(&st.history).unwrap())),
        );
    }
    group.finish();
}

fn bench_verify_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_biased_target_verification");
    group.sample_size(30);
    // One biased instance migrating under the Fig. 1 type change.
    let base = scenarios::order_process();
    let mut inst_schema = base.clone();
    inst_schema.reserve_private_id_space();
    let get = inst_schema.node_by_name("get order").unwrap().id;
    let collect = inst_schema.node_by_name("collect data").unwrap().id;
    let mut bias = Delta::new();
    bias.push(
        apply_op(
            &mut inst_schema,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("check customer"),
                pred: get,
                succ: collect,
            },
        )
        .unwrap(),
    );
    let ex = Execution::new(&inst_schema).unwrap();
    let st = ex.init().unwrap();
    let mut new_base = base.clone();
    let mut delta = Delta::new();
    for op in scenarios::fig1_delta_ops(&base) {
        delta.push(apply_op(&mut new_base, &op).unwrap());
    }
    for (label, verify) in [("with_verification", true), ("without_verification", false)] {
        let options = MigrationOptions {
            use_trace_criterion: false,
            verify_biased_targets: verify,
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(adept_core::migrate_instance(
                    &inst_schema,
                    &ex.blocks,
                    &new_base,
                    &delta,
                    &bias,
                    &st,
                    &options,
                ))
            })
        });
    }
    group.finish();
}

fn bench_block_vs_replay_materialisation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_materialisation");
    group.sample_size(30);
    let base = adept_simgen::generate_schema(&adept_simgen::GenParams::sized(60), 3);
    let mut materialized = base.clone();
    materialized.reserve_private_id_space();
    let mut bias = Delta::new();
    for k in 0..3 {
        let (pred, succ) = materialized
            .edges()
            .find(|e| e.kind == EdgeKind::Control)
            .map(|e| (e.from, e.to))
            .unwrap();
        bias.push(
            apply_op(
                &mut materialized,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named(format!("b{k}")),
                    pred,
                    succ,
                },
            )
            .unwrap(),
        );
    }
    let block = SubstitutionBlock::from_delta(&bias, &materialized);

    group.bench_function("overlay_substitution_block", |b| {
        b.iter(|| black_box(block.overlay(&base).unwrap()))
    });
    group.bench_function("reapply_recorded_ops", |b| {
        b.iter(|| {
            let mut s = base.clone();
            s.reserve_private_id_space();
            for rec in &bias.ops {
                apply_recorded(&mut s, rec).unwrap();
            }
            black_box(s)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_history_reduction,
    bench_verify_ablation,
    bench_block_vs_replay_materialisation
);
criterion_main!(benches);
