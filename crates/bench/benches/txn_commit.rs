//! Change-transaction amortisation: committing N staged operations as ONE
//! transaction (single verification + compliance pass) versus applying the
//! same N operations through the per-op path (one full verification pass
//! *each*). The gap widens linearly with N — this is the hot path every
//! multi-op repair, batch deviation and staged evolution takes.

use adept_core::{ChangeOp, NewActivity};
use adept_engine::ProcessEngine;
use adept_model::ProcessSchema;
use adept_simgen::{generate_schema, GenParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// N serial inserts spread along the control edges of the schema.
fn batch_ops(schema: &ProcessSchema, n: usize) -> Vec<ChangeOp> {
    let mut ops = Vec::new();
    let edges: Vec<_> = schema
        .edges()
        .filter(|e| e.kind == adept_model::EdgeKind::Control)
        .map(|e| (e.from, e.to))
        .collect();
    for k in 0..n {
        let (pred, succ) = edges[k % edges.len()];
        ops.push(ChangeOp::SerialInsert {
            activity: NewActivity::named(format!("batch{k}")),
            pred,
            succ,
        });
    }
    ops
}

fn setup(n_ops: usize) -> (ProcessEngine, adept_model::InstanceId, Vec<ChangeOp>) {
    let engine = ProcessEngine::new();
    let schema = generate_schema(&GenParams::sized(30), 42);
    let name = engine.deploy(schema).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let dep = engine.repo.deployed(&name, 1).unwrap();
    let ops = batch_ops(&dep.schema, n_ops);
    (engine, id, ops)
}

fn bench_txn_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_commit");
    group.sample_size(20);

    for n in [1usize, 4, 8, 16] {
        group.throughput(Throughput::Elements(n as u64));

        // One transaction: N staged ops, ONE verification pass at commit.
        group.bench_with_input(BenchmarkId::new("transactional", n), &n, |b, &n| {
            b.iter_batched(
                || setup(n),
                |(engine, id, ops)| {
                    let mut session = engine.begin_change(id).unwrap();
                    for op in &ops {
                        session.stage(op).unwrap();
                    }
                    black_box(session.commit().unwrap())
                },
                criterion::BatchSize::PerIteration,
            )
        });

        // Per-op path: N separate one-op transactions, N verification
        // passes.
        group.bench_with_input(BenchmarkId::new("per_op", n), &n, |b, &n| {
            b.iter_batched(
                || setup(n),
                |(engine, id, ops)| {
                    for op in &ops {
                        let mut session = engine.begin_change(id).unwrap();
                        session.stage(op).unwrap();
                        session.commit().unwrap();
                    }
                    black_box(engine.store.get(id).unwrap().bias.len())
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_preview(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_preview");
    group.sample_size(20);
    // Preview = the full commit gates as a dry run: it should cost about
    // one commit, not N per-op applications.
    group.bench_function("preview_8_ops", |b| {
        b.iter_batched(
            || setup(8),
            |(engine, id, ops)| {
                let mut session = engine.begin_change(id).unwrap();
                for op in &ops {
                    session.stage(op).unwrap();
                }
                black_box(session.preview().unwrap().is_committable())
            },
            criterion::BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_txn_commit, bench_preview);
criterion_main!(benches);
