//! Fig. 3 / Claim C1 — on-the-fly migration of whole instance populations:
//! end-to-end throughput of `migrate_all` (compliance check + state
//! adaptation + re-homing) for N instances, sequential vs. parallel
//! workers. The paper: "the concomitant migration of thousands of
//! instances ... on-the-fly ... avoid performance penalties".

use adept_core::MigrationOptions;
use adept_engine::{EngineCommand, ProcessEngine};
use adept_simgen::{scenarios, RandomDriver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn populate(n: usize) -> (ProcessEngine, String) {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    for k in 0..n {
        let id = engine.create_instance(&name).unwrap();
        let mut driver = RandomDriver::new(k as u64);
        // Random progress: 0..=2 completed activities keeps most instances
        // compliant (the interesting hot path).
        engine
            .submit_with_driver(
                EngineCommand::Drive {
                    instance: id,
                    max: Some(k % 3),
                },
                &mut driver,
            )
            .unwrap();
    }
    (engine, name)
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_migration");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("migrate_all/threads{threads}"), n),
                &n,
                |b, &n| {
                    b.iter_batched(
                        || {
                            let (engine, name) = populate(n);
                            let mut evolution = engine.begin_evolution(&name).unwrap();
                            for op in scenarios::fig1_delta_ops(
                                &engine.repo.deployed(&name, 1).unwrap().schema,
                            ) {
                                evolution.stage(&op).unwrap();
                            }
                            evolution.commit().unwrap();
                            (engine, name)
                        },
                        |(engine, name)| {
                            let report = engine
                                .migrate_all(&name, &MigrationOptions::default(), threads)
                                .unwrap();
                            black_box(report.migrated())
                        },
                        criterion::BatchSize::PerIteration,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
