//! Claim C3 — ad-hoc change latency per operation kind: the full pipeline
//! (structural preconditions, application to a private copy, postcondition
//! verification, state compliance, state adaptation, substitution-block
//! derivation) as experienced by a single running instance.

use adept_core::{ChangeOp, NewActivity};
use adept_engine::{EngineCommand, ProcessEngine};
use adept_simgen::scenarios;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_adhoc(c: &mut Criterion) {
    let mut group = c.benchmark_group("adhoc_change");
    group.sample_size(30);

    type OpMaker = Box<dyn Fn(&adept_model::ProcessSchema) -> ChangeOp>;
    let ops: Vec<(&str, OpMaker)> = vec![
        (
            "serial_insert",
            Box::new(|s| ChangeOp::SerialInsert {
                activity: NewActivity::named("extra"),
                pred: s.node_by_name("get order").unwrap().id,
                succ: s.node_by_name("collect data").unwrap().id,
            }),
        ),
        (
            "parallel_insert",
            Box::new(|s| ChangeOp::ParallelInsert {
                activity: NewActivity::named("extra"),
                from: s.node_by_name("compose order").unwrap().id,
                to: s.node_by_name("pack goods").unwrap().id,
            }),
        ),
        (
            "branch_insert",
            Box::new(|s| ChangeOp::BranchInsert {
                activity: NewActivity::named("extra"),
                pred: s.node_by_name("get order").unwrap().id,
                succ: s.node_by_name("collect data").unwrap().id,
                guard: None,
            }),
        ),
        (
            "delete_activity",
            Box::new(|s| ChangeOp::DeleteActivity {
                node: s.node_by_name("pack goods").unwrap().id,
            }),
        ),
        (
            "insert_sync_edge",
            Box::new(|s| ChangeOp::InsertSyncEdge {
                from: s.node_by_name("confirm order").unwrap().id,
                to: s.node_by_name("pack goods").unwrap().id,
            }),
        ),
    ];

    for (label, make) in &ops {
        group.bench_function(*label, |b| {
            b.iter_batched(
                || {
                    let engine = ProcessEngine::new();
                    let name = engine.deploy(scenarios::order_process()).unwrap();
                    let id = engine.create_instance(&name).unwrap();
                    engine
                        .submit(EngineCommand::Drive {
                            instance: id,
                            max: Some(1),
                        })
                        .unwrap();
                    let op = make(&engine.repo.deployed(&name, 1).unwrap().schema);
                    (engine, id, op)
                },
                |(engine, id, op)| {
                    let mut session = engine.begin_change(id).unwrap();
                    session.stage(&op).unwrap();
                    black_box(session.commit()).unwrap()
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adhoc);
criterion_main!(benches);
