//! Fig. 1 / Claim C2 — efficient compliance checks: the per-operation
//! conditions (`check_fast`) vs. the trace-replay criterion
//! (`check_trace`), sweeping the history length (loop iterations). The
//! paper's point: the fast conditions stay O(ops) while replay grows with
//! the history.

#![allow(deprecated)] // single-op wrappers exercised deliberately

use adept_core::{check_fast, check_trace};
use adept_model::{LoopCond, SchemaBuilder};
use adept_simgen::scenarios;
use adept_state::{DefaultDriver, Execution};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_compliance");
    group.sample_size(40);

    // The literal Fig. 1 scenario.
    let s_old = scenarios::order_process();
    let ex = Execution::new(&s_old).unwrap();
    let mut st = ex.init().unwrap();
    ex.run(&mut st, &mut DefaultDriver, Some(2)).unwrap();
    let mut s_new = s_old.clone();
    let mut delta = adept_core::Delta::new();
    for op in scenarios::fig1_delta_ops(&s_old) {
        delta.push(adept_core::apply_op(&mut s_new, &op).unwrap());
    }
    let ex_new = Execution::new(&s_new).unwrap();

    group.bench_function("order_process/fast", |b| {
        b.iter(|| black_box(check_fast(&s_old, &ex.blocks, &st, &delta)))
    });
    group.bench_function("order_process/trace", |b| {
        b.iter(|| black_box(check_trace(&s_old, &ex.blocks, &ex_new, &st)))
    });

    // History-length sweep: a loop process executed n times.
    for iterations in [1u32, 8, 32, 128] {
        let mut b = SchemaBuilder::new("loopy");
        let before = b.activity("before");
        b.loop_start();
        b.activity("work a");
        b.activity("work b");
        b.loop_end(LoopCond::Times(iterations));
        let after = b.activity("after");
        let schema = b.build().unwrap();
        let ex = Execution::new(&schema).unwrap();
        let mut st = ex.init().unwrap();
        ex.run(&mut st, &mut DefaultDriver, None).unwrap();
        let _ = (before, after);

        let mut evolved = schema.clone();
        let end = evolved.end_node();
        let rec = adept_core::apply_op(
            &mut evolved,
            &adept_core::ChangeOp::SerialInsert {
                activity: adept_core::NewActivity::named("audit"),
                pred: after,
                succ: end,
            },
        )
        .unwrap();
        let delta: adept_core::Delta = std::iter::once(rec).collect();
        let ex_new = Execution::new(&evolved).unwrap();

        group.bench_with_input(
            BenchmarkId::new("fast_by_history", st_events(&st, iterations)),
            &iterations,
            |b, _| b.iter(|| black_box(check_fast(&schema, &ex.blocks, &st, &delta))),
        );
        group.bench_with_input(
            BenchmarkId::new("trace_by_history", st_events(&st, iterations)),
            &iterations,
            |b, _| b.iter(|| black_box(check_trace(&schema, &ex.blocks, &ex_new, &st))),
        );
    }
    group.finish();
}

fn st_events(st: &adept_state::InstanceState, _i: u32) -> usize {
    st.history.len()
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
