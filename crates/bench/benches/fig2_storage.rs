//! Fig. 2 — storage representation of schema and instance data: the hybrid
//! substitution-block approach vs. the two alternatives the paper
//! dismisses (full per-instance copies; re-materialising on every access).
//! Measures per-access schema resolution latency; the byte-level memory
//! comparison is printed once at the end.

#![allow(deprecated)] // single-op wrappers exercised deliberately

use adept_core::{apply_op, ChangeOp, Delta, NewActivity};
use adept_model::EdgeKind;
use adept_simgen::{generate_schema, GenParams};
use adept_storage::{InstanceStore, Representation, SchemaRepository};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn setup(
    strategy: Representation,
    schema_size: usize,
    biased: bool,
) -> (SchemaRepository, InstanceStore, adept_model::InstanceId) {
    let schema = generate_schema(&GenParams::sized(schema_size), 42);
    let repo = SchemaRepository::new();
    let name = repo.deploy(schema).unwrap();
    let store = InstanceStore::new(strategy);
    let dep = repo.deployed(&name, 1).unwrap();
    let st = dep.execution().init().unwrap();
    let id = store.create(&name, 1, st.clone());
    if biased {
        let mut materialized = (*dep.schema).clone();
        materialized.reserve_private_id_space();
        let edge = materialized
            .edges()
            .find(|e| e.kind == EdgeKind::Control)
            .map(|e| (e.from, e.to))
            .unwrap();
        let mut bias = Delta::new();
        bias.push(
            apply_op(
                &mut materialized,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("ad-hoc"),
                    pred: edge.0,
                    succ: edge.1,
                },
            )
            .unwrap(),
        );
        store.set_bias(id, bias, &materialized, st);
    }
    (repo, store, id)
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_storage");
    group.sample_size(40);
    for schema_size in [20usize, 80] {
        for (label, strategy, biased) in [
            ("unbiased_shared", Representation::Hybrid, false),
            ("hybrid_overlay_cached", Representation::Hybrid, true),
            (
                "rematerialize_each_access",
                Representation::RedundantFree,
                true,
            ),
            ("full_copy", Representation::FullCopy, true),
        ] {
            let (repo, store, id) = setup(strategy, schema_size, biased);
            store.schema_of(&repo, id); // warm the cache/copy
            group.bench_with_input(
                BenchmarkId::new(label, schema_size),
                &schema_size,
                |b, _| b.iter(|| black_box(store.schema_of(&repo, id).unwrap())),
            );
        }
    }
    group.finish();

    // Memory comparison (printed once; shapes the Fig. 2 argument).
    println!("\n=== Fig. 2 memory breakdown (100 instances, 25% biased, 80-activity schema) ===");
    for strategy in [
        Representation::RedundantFree,
        Representation::FullCopy,
        Representation::Hybrid,
    ] {
        let schema = generate_schema(&GenParams::sized(80), 42);
        let repo = SchemaRepository::new();
        let name = repo.deploy(schema).unwrap();
        let store = InstanceStore::new(strategy);
        let dep = repo.deployed(&name, 1).unwrap();
        for k in 0..100u64 {
            let st = dep.execution().init().unwrap();
            let id = store.create(&name, 1, st.clone());
            if k % 4 == 0 {
                let mut materialized = (*dep.schema).clone();
                materialized.reserve_private_id_space();
                let edge = materialized
                    .edges()
                    .find(|e| e.kind == EdgeKind::Control)
                    .map(|e| (e.from, e.to))
                    .unwrap();
                let mut bias = Delta::new();
                bias.push(
                    apply_op(
                        &mut materialized,
                        &ChangeOp::SerialInsert {
                            activity: NewActivity::named("ad-hoc"),
                            pred: edge.0,
                            succ: edge.1,
                        },
                    )
                    .unwrap(),
                );
                store.set_bias(id, bias, &materialized, st);
                store.schema_of(&repo, id); // materialise caches/copies
            }
        }
        let mem = store.memory(&repo);
        println!(
            "{strategy:?}: total={} KiB (schemas={}, states={}, bias+blocks={}, full copies={}, overlay cache={})",
            mem.total() / 1024,
            mem.schema_bytes,
            mem.state_bytes,
            mem.bias_bytes,
            mem.full_copy_bytes,
            mem.cache_bytes,
        );
    }
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
