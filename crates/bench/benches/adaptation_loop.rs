//! Adaptation-loop benchmarks: repair throughput over an
//! exception-heavy population and per-deviation detection latency, each
//! at 1/4/16 worker threads.
//!
//! Caveat: CI runs on a single vCPU, so the 4- and 16-thread points
//! there measure scheduling overhead, not speedup — compare thread
//! counts only on multi-core hosts. The 1-thread point is the stable
//! reference either way.

use adept_adapt::{AdaptationConfig, AdaptationLoop, RetryThenSkip};
use adept_engine::{EngineCommand, ProcessEngine};
use adept_model::InstanceId;
use adept_simgen::exception_scenario;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const THREADS: [usize; 3] = [1, 4, 16];

/// An engine with `n` orders all failed at their flaky step — the
/// backlog one loop pass has to repair.
fn engine_with_failures(n: usize) -> ProcessEngine {
    let engine = ProcessEngine::new();
    let name = engine.deploy(exception_scenario()).unwrap();
    let ids: Vec<InstanceId> = (0..n)
        .map(|_| engine.create_instance(&name).unwrap())
        .collect();
    let (schema, _) = engine.materialized(ids[0]).unwrap();
    let intake = schema.node_by_name("intake").unwrap().id;
    let process = schema.node_by_name("process").unwrap().id;
    for id in ids {
        for cmd in [
            EngineCommand::Start {
                instance: id,
                node: intake,
            },
            EngineCommand::Complete {
                instance: id,
                node: intake,
                writes: vec![],
            },
            EngineCommand::Start {
                instance: id,
                node: process,
            },
            EngineCommand::FailActivity {
                instance: id,
                node: process,
                reason: "bench exception".into(),
            },
        ] {
            engine.submit(cmd).unwrap();
        }
    }
    engine
}

/// Skip-on-first-failure: every deviation costs exactly one previewed
/// change transaction, so elements/sec is committed repairs per second.
fn skip_policy() -> RetryThenSkip {
    RetryThenSkip {
        max_retries: 0,
        base_delay: 1,
    }
}

fn bench_repair_throughput(c: &mut Criterion) {
    const BACKLOG: usize = 64;
    let mut group = c.benchmark_group("adaptation_repair_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BACKLOG as u64));
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::new("repair", threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || engine_with_failures(BACKLOG),
                    |engine| {
                        let mut looper = AdaptationLoop::from_backlog(
                            &engine,
                            AdaptationConfig {
                                threads,
                                max_in_flight: BACKLOG,
                                ..AdaptationConfig::default()
                            },
                        )
                        .with_policy(skip_policy());
                        let report = looper.run_until_quiescent(16);
                        assert_eq!(report.committed, BACKLOG as u64);
                        black_box(report)
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_detection_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptation_detection_latency");
    group.sample_size(20);
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::new("detect_and_commit", threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || engine_with_failures(1),
                    |engine| {
                        // One tick: poll the failure event, classify it,
                        // synthesize + preview + commit the skip.
                        let mut looper = AdaptationLoop::from_backlog(
                            &engine,
                            AdaptationConfig {
                                threads,
                                ..AdaptationConfig::default()
                            },
                        )
                        .with_policy(skip_policy());
                        black_box(looper.tick())
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_repair_throughput, bench_detection_latency);
criterion_main!(benches);
