//! Inverse change operations: undoing ad-hoc deviations.
//!
//! ADEPT's change framework is closed under inversion — every applied
//! operation has a well-defined inverse that restores the previous schema
//! (ADEPTflex used this for rollback of temporary deviations; the demo's
//! monitoring component exposes it as "undo"). Undo is itself a change and
//! runs through the same pre-/post-condition machinery: undoing an insert
//! whose activity has already started is rejected exactly like deleting a
//! started activity.

use crate::apply::apply_op;
use crate::delta::Delta;
use crate::error::ChangeError;
use crate::ops::{AppliedOp, ChangeOp};
use adept_model::ProcessSchema;

/// Computes the inverse of an applied operation, or `None` for operations
/// that cannot be inverted from their record alone.
///
/// * inserts invert to `DeleteActivity` of the inserted node (the delete
///   also dismantles the helper split/join pair of branch/parallel inserts
///   via null-replacement when necessary);
/// * `InsertSyncEdge`/`DeleteSyncEdge` invert to each other;
/// * `AddDataEdge`/`RemoveDataEdge` invert to each other;
/// * `DeleteActivity` of a *nullified* node is not invertible from the
///   record (the original data edges are gone) — callers keep the old
///   schema version for that, as ADEPT does;
/// * `MoveActivity` inverts to the move back (pred/succ of the original
///   position are in the record's removed edges, which reference the old
///   schema — invertible only right after application, which is the undo
///   use case).
pub fn inverse_of(schema: &ProcessSchema, rec: &AppliedOp) -> Option<ChangeOp> {
    match &rec.op {
        ChangeOp::SerialInsert { .. }
        | ChangeOp::ParallelInsert { .. }
        | ChangeOp::BranchInsert { .. } => {
            let node = rec.inserted_activity()?;
            Some(ChangeOp::DeleteActivity { node })
        }
        ChangeOp::InsertSyncEdge { from, to } => Some(ChangeOp::DeleteSyncEdge {
            from: *from,
            to: *to,
        }),
        ChangeOp::DeleteSyncEdge { from, to } => Some(ChangeOp::InsertSyncEdge {
            from: *from,
            to: *to,
        }),
        ChangeOp::AddDataEdge {
            node, data, mode, ..
        } => Some(ChangeOp::RemoveDataEdge {
            node: *node,
            data: *data,
            mode: *mode,
        }),
        ChangeOp::RemoveDataEdge { .. } => None, // optionality lost
        ChangeOp::DeleteActivity { .. } => None, // payload lost
        ChangeOp::MoveActivity { node, .. } => {
            // The old position is the bridge edge's endpoints: the record
            // removed [pin, pout, target]; the bridge (added_edges[0])
            // connects old-pred to old-succ on the *changed* schema.
            let bridge = rec.added_edges.first()?;
            let e = schema.edge(*bridge).ok()?;
            Some(ChangeOp::MoveActivity {
                node: *node,
                pred: e.from,
                succ: e.to,
            })
        }
        ChangeOp::AddDataElement { .. } => None, // deletion op not modelled
        ChangeOp::SetActivityAttributes { .. } => None, // old attrs lost
    }
}

/// Undoes the **last** operation of a bias on the given (materialised)
/// schema: applies the inverse with full checking and pops + purges the
/// delta. Returns the inverse's application record.
pub fn undo_last(schema: &mut ProcessSchema, bias: &mut Delta) -> Result<AppliedOp, ChangeError> {
    let last = bias
        .ops
        .last()
        .ok_or_else(|| ChangeError::Precondition("bias is empty; nothing to undo".into()))?;
    let inv = inverse_of(schema, last).ok_or_else(|| {
        ChangeError::Precondition(format!(
            "{} is not invertible from its record",
            last.op.name()
        ))
    })?;
    let rec = apply_op(schema, &inv)?;
    bias.push(rec.clone());
    bias.purge();
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::NewActivity;
    use adept_model::{EdgeKind, SchemaBuilder};
    use adept_verify::is_correct;

    fn base() -> ProcessSchema {
        let mut b = SchemaBuilder::new("undo");
        b.activity("a");
        b.and_split();
        b.branch();
        b.activity("left");
        b.branch();
        b.activity("right");
        b.and_join();
        b.activity("z");
        b.build().unwrap()
    }

    #[test]
    fn serial_insert_then_undo_restores_structure() {
        let original = base();
        let mut s = original.clone();
        let a = s.node_by_name("a").unwrap().id;
        let split = s
            .nodes()
            .find(|n| n.kind == adept_model::NodeKind::AndSplit)
            .unwrap()
            .id;
        let mut bias = Delta::new();
        bias.push(
            apply_op(
                &mut s,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("tmp"),
                    pred: a,
                    succ: split,
                },
            )
            .unwrap(),
        );
        undo_last(&mut s, &mut bias).unwrap();
        assert!(bias.is_empty(), "insert+undo purges to the empty bias");
        assert!(is_correct(&s));
        assert_eq!(s.node_count(), original.node_count());
        assert_eq!(s.edge_count(), original.edge_count());
        assert_eq!(s.sole_control_successor(a), Some(split));
    }

    #[test]
    fn sync_edge_roundtrip() {
        let mut s = base();
        let left = s.node_by_name("left").unwrap().id;
        let right = s.node_by_name("right").unwrap().id;
        let mut bias = Delta::new();
        bias.push(
            apply_op(
                &mut s,
                &ChangeOp::InsertSyncEdge {
                    from: left,
                    to: right,
                },
            )
            .unwrap(),
        );
        assert_eq!(s.sync_edges().count(), 1);
        undo_last(&mut s, &mut bias).unwrap();
        assert_eq!(s.sync_edges().count(), 0);
        // Sync insert + delete do not auto-purge (different node anchors),
        // but the schema is restored; purging such pairs is a no-op at the
        // graph level.
        assert!(is_correct(&s));
    }

    #[test]
    fn move_then_undo_restores_position() {
        let mut s = base();
        let left = s.node_by_name("left").unwrap().id;
        let right = s.node_by_name("right").unwrap().id;
        let join = s
            .nodes()
            .find(|n| n.kind == adept_model::NodeKind::AndJoin)
            .unwrap()
            .id;
        let mut bias = Delta::new();
        // Move "left" behind "right" (into the other branch).
        bias.push(
            apply_op(
                &mut s,
                &ChangeOp::MoveActivity {
                    node: left,
                    pred: right,
                    succ: join,
                },
            )
            .unwrap(),
        );
        assert_eq!(s.sole_control_successor(right), Some(left));
        undo_last(&mut s, &mut bias).unwrap();
        assert!(is_correct(&s));
        assert_eq!(
            s.sole_control_successor(left),
            Some(join),
            "left is back on its own branch"
        );
        assert_eq!(s.sole_control_successor(right), Some(join));
    }

    #[test]
    fn non_invertible_operations_are_rejected() {
        let mut s = base();
        let left = s.node_by_name("left").unwrap().id;
        let mut bias = Delta::new();
        bias.push(apply_op(&mut s, &ChangeOp::DeleteActivity { node: left }).unwrap());
        let err = undo_last(&mut s, &mut bias).unwrap_err();
        assert!(matches!(err, ChangeError::Precondition(_)));
        assert_eq!(bias.len(), 1, "bias unchanged on failed undo");
    }

    #[test]
    fn empty_bias_cannot_undo() {
        let mut s = base();
        let mut bias = Delta::new();
        assert!(undo_last(&mut s, &mut bias).is_err());
    }

    #[test]
    fn data_edge_roundtrip() {
        let mut b = SchemaBuilder::new("d");
        let d = b.data("x", adept_model::ValueType::Int);
        let w = b.activity("w");
        b.write(w, d);
        let r = b.activity("r");
        let mut s = b.build().unwrap();
        let mut bias = Delta::new();
        bias.push(
            apply_op(
                &mut s,
                &ChangeOp::AddDataEdge {
                    node: r,
                    data: d,
                    mode: adept_model::AccessMode::Read,
                    optional: false,
                },
            )
            .unwrap(),
        );
        assert_eq!(s.readers_of(d).count(), 1);
        undo_last(&mut s, &mut bias).unwrap();
        assert_eq!(s.readers_of(d).count(), 0);
        let _ = EdgeKind::Control;
    }
}
