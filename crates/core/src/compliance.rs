//! Compliance checking: may a running instance migrate to a changed schema?
//!
//! The paper (Sec. 2): *"We provide a comprehensive correctness criterion
//! for deciding on the compliance of process instances with a modified type
//! schema. ... It is based on a relaxed notion of trace equivalence ... and
//! it works correctly in connection with loop backs. In order to enable
//! efficient compliance checks, for each change operation we provide
//! precise and easy to implement compliance conditions."*
//!
//! Two implementations live here:
//!
//! * [`check_trace`] — the *criterion itself*: replay the instance's
//!   reduced execution history on the changed schema ([`adept_state`]'s
//!   replay). Precise but costs O(history).
//! * [`check_fast`] — the *per-operation conditions* (the table in the
//!   paper's Fig. 1): pure marking/history predicates evaluated per change
//!   operation, no replay required. `prop_compliance_equivalence` in the
//!   integration suite checks that both agree.

use crate::delta::Delta;
use crate::ops::{AppliedOp, ChangeOp};
use adept_model::{AccessMode, Blocks, EdgeKind, NodeId, ProcessSchema};
use adept_state::{Event, Execution, ExecutionHistory, InstanceState, NodeState, RuntimeError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an instance cannot migrate (paper Sec. 2: *"state-related,
/// structural, and semantical conflicts"*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConflictKind {
    /// The instance has progressed too far (e.g. inserting before an
    /// already-completed activity) — Fig. 1, instance I3.
    State,
    /// The combination of type change and instance bias yields an incorrect
    /// schema (e.g. a deadlock-causing cycle) — Fig. 1, instance I2.
    Structural,
    /// The correspondence between the trace and the changed schema is
    /// ambiguous (removed branches, changed activity signatures).
    Semantic,
    /// The instance disappeared while the migration was in flight
    /// (cancelled or archived concurrently). Not part of the paper's
    /// conflict taxonomy: nothing is wrong with the instance or the
    /// change — there is simply no instance left to migrate, so reports
    /// must not count it as a structural failure.
    Vanished,
    /// The migration machinery itself failed (a worker thread panicked)
    /// or gave up after bounded retries against concurrent traffic. Not
    /// part of the paper's taxonomy either; it marks outcomes fabricated
    /// so one poisoned or contested instance cannot sink (or hang) a
    /// whole batch migration.
    Internal,
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConflictKind::State => "state-related conflict",
            ConflictKind::Structural => "structural conflict",
            ConflictKind::Semantic => "semantical conflict",
            ConflictKind::Vanished => "instance vanished",
            ConflictKind::Internal => "internal failure",
        })
    }
}

/// A concrete conflict, with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conflict {
    /// Conflict classification.
    pub kind: ConflictKind,
    /// Explanation (names the operation and the offending nodes).
    pub reason: String,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.reason)
    }
}

/// The result of a compliance check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// The instance may migrate; its state can be adapted on the new schema.
    Compliant,
    /// The instance must remain on its current schema version.
    NotCompliant(Conflict),
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Compliant`].
    pub fn is_compliant(&self) -> bool {
        matches!(self, Verdict::Compliant)
    }

    /// Constructs a non-compliant verdict.
    pub fn conflict(kind: ConflictKind, reason: impl Into<String>) -> Self {
        Verdict::NotCompliant(Conflict {
            kind,
            reason: reason.into(),
        })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Compliant => f.write_str("compliant"),
            Verdict::NotCompliant(c) => write!(f, "not compliant ({c})"),
        }
    }
}

// ----------------------------------------------------------------------
// Trace-based criterion (the oracle)
// ----------------------------------------------------------------------

/// Decides compliance by replaying the instance's *reduced* history on the
/// changed schema. `old_schema`/`old_blocks` describe the schema the
/// history was recorded on (needed for loop-body reduction); `new_ex` is an
/// interpreter for the changed schema.
pub fn check_trace(
    old_schema: &ProcessSchema,
    old_blocks: &Blocks,
    new_ex: &Execution<'_>,
    st: &InstanceState,
) -> Verdict {
    let reduced = st.history.reduced(old_schema, old_blocks);
    match new_ex.replay(&reduced) {
        Ok(_) => Verdict::Compliant,
        Err(e) => Verdict::NotCompliant(classify_replay_error(e)),
    }
}

/// Maps a replay failure onto the paper's conflict taxonomy.
pub fn classify_replay_error(e: RuntimeError) -> Conflict {
    let kind = match &e {
        RuntimeError::BranchNotFound { .. } | RuntimeError::SignatureMismatch { .. } => {
            ConflictKind::Semantic
        }
        RuntimeError::Model(_) => ConflictKind::Structural,
        _ => ConflictKind::State,
    };
    Conflict {
        kind,
        reason: format!("history cannot be reproduced: {e}"),
    }
}

// ----------------------------------------------------------------------
// Fast per-operation conditions (paper Fig. 1)
// ----------------------------------------------------------------------

/// Decides compliance of one instance with a delta by evaluating the
/// per-operation compliance conditions against the instance's current
/// marking and (for sync edges) its reduced history. `schema` is the
/// schema the instance currently runs on; `blocks` its block structure.
pub fn check_fast(
    schema: &ProcessSchema,
    blocks: &Blocks,
    st: &InstanceState,
    delta: &Delta,
) -> Verdict {
    for rec in &delta.ops {
        let v = check_fast_op(schema, blocks, st, rec);
        if !v.is_compliant() {
            return v;
        }
    }
    Verdict::Compliant
}

/// The per-operation compliance condition for a single change operation.
pub fn check_fast_op(
    schema: &ProcessSchema,
    blocks: &Blocks,
    st: &InstanceState,
    rec: &AppliedOp,
) -> Verdict {
    let m = &st.marking;
    match &rec.op {
        // addActivity (Fig. 1): the inserted activity must still be
        // executable before anything it now precedes. The replaced edge's
        // signal state decides: an unsignalled or dead edge can absorb the
        // insertion for free; a fired (TrueSignaled) edge requires that no
        // event-bearing node behind it has produced history entries yet.
        ChangeOp::SerialInsert { succ, .. } | ChangeOp::BranchInsert { succ, .. } => {
            insert_on_edge_condition(schema, st, rec.removed_edges.first(), &[*succ], rec)
        }
        ChangeOp::ParallelInsert { to, .. } => {
            // The new AND branch joins right after `to`: only the exit edge
            // matters — once it fired, the region behind the (new) join may
            // contain events the inserted activity could never precede.
            let succs: Vec<NodeId> = schema.control_successors(*to).collect();
            insert_on_edge_condition(schema, st, rec.removed_edges.get(1), &succs, rec)
        }
        ChangeOp::DeleteActivity { node } => {
            let s = m.node(*node);
            if s.pending() || s == NodeState::Skipped {
                Verdict::Compliant
            } else {
                Verdict::conflict(
                    ConflictKind::State,
                    format!("deleteActivity: {node} is already {s}"),
                )
            }
        }
        ChangeOp::MoveActivity { node, succ, .. } => {
            let s = m.node(*node);
            if !(s.pending() || s == NodeState::Skipped) {
                return Verdict::conflict(
                    ConflictKind::State,
                    format!("moveActivity: {node} is already {s}"),
                );
            }
            // removed_edges = [old in-edge, old out-edge, target edge].
            insert_on_edge_condition(schema, st, rec.removed_edges.get(2), &[*succ], rec)
        }
        ChangeOp::InsertSyncEdge { from, to } => {
            sync_edge_condition(schema, blocks, st, *from, *to)
        }
        // Removing a constraint can never invalidate a produced trace.
        ChangeOp::DeleteSyncEdge { .. } => Verdict::Compliant,
        ChangeOp::AddDataElement { .. } => Verdict::Compliant,
        ChangeOp::AddDataEdge {
            node,
            mode,
            optional,
            ..
        } => data_edge_condition(st, *node, *mode, *optional, "addDataEdge"),
        ChangeOp::RemoveDataEdge { node, data, mode } => {
            let optional = !schema
                .data_edges_of(*node)
                .any(|de| de.data == *data && de.mode == *mode && !de.optional);
            data_edge_condition(st, *node, *mode, optional, "deleteDataEdge")
        }
        ChangeOp::SetActivityAttributes { .. } => Verdict::Compliant,
    }
}

/// The `addActivity` condition, refining the table of paper Fig. 1:
///
/// ```text
/// ES(pred -> succ) ∈ {NotSignaled, FalseSignaled}
/// ∨ [ no event-bearing node reachable behind succ has entered ]
/// ```
///
/// The paper states the condition over node states (`∀ n ∈ Succs: NS(n) ∈
/// {NotActivated, Activated}` with a `Disabled` special case), because its
/// histories record entries for every node. Our histories — like the
/// underlying theory's *relevant* traces — record entries only for
/// activities and branching/loop decisions, so the precise condition walks
/// *through* completed event-free silent nodes (AND/XOR joins, null tasks,
/// the end node): re-completing those during replay is always possible.
/// `Skipped` is the paper's `Disabled`; a dead edge (`FalseSignaled`)
/// absorbs any insertion because the new activity is immediately skipped
/// and nothing downstream changes.
fn insert_on_edge_condition(
    schema: &ProcessSchema,
    st: &InstanceState,
    replaced_edge: Option<&adept_model::EdgeId>,
    succs: &[NodeId],
    rec: &AppliedOp,
) -> Verdict {
    let m = &st.marking;
    let edge_state = replaced_edge
        .map(|e| m.edge(*e))
        .unwrap_or(adept_state::EdgeState::NotSignaled);
    if edge_state != adept_state::EdgeState::TrueSignaled {
        // Not yet reached, or dead region: the insertion cannot invalidate
        // any produced event.
        return Verdict::Compliant;
    }
    match first_entered_event_node(schema, m, succs) {
        None => Verdict::Compliant,
        Some((n, s)) => Verdict::conflict(
            ConflictKind::State,
            format!(
                "{}: {n} behind the insertion point is already {s}",
                rec.op.name()
            ),
        ),
    }
}

/// Walks forward from `roots` over control edges, looking for the first
/// node that (a) carries history events — activities, XOR splits, loop
/// ends — and (b) has entered execution. Completed event-free silent nodes
/// are walked through; pending or skipped nodes stop the walk.
fn first_entered_event_node(
    schema: &ProcessSchema,
    m: &adept_state::Marking,
    roots: &[NodeId],
) -> Option<(NodeId, NodeState)> {
    use adept_model::NodeKind;
    let mut seen: std::collections::BTreeSet<NodeId> = roots.iter().copied().collect();
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(n) = stack.pop() {
        let Ok(node) = schema.node(n) else { continue };
        let s = m.node(n);
        match node.kind {
            NodeKind::Activity => {
                if matches!(s, NodeState::Running | NodeState::Completed) {
                    return Some((n, s));
                }
                // pending or skipped: no events behind it either (it gates
                // its successors), stop this path.
            }
            NodeKind::XorSplit | NodeKind::LoopEnd => {
                if s == NodeState::Completed
                    || (node.kind == NodeKind::LoopEnd && m.loop_count(n) > 0)
                {
                    return Some((n, s));
                }
            }
            // Event-free silent nodes: re-derivable during replay. Walk
            // through them when they completed; stop at pending/skipped.
            _ => {
                if s == NodeState::Completed {
                    for e in schema.out_edges_kind(n, EdgeKind::Control) {
                        if seen.insert(e.to) {
                            stack.push(e.to);
                        }
                    }
                }
            }
        }
    }
    None
}

/// Compliance condition for `insertSyncEdge(from, to)`: the target must not
/// yet have started — or, if it has, the source must demonstrably have
/// completed (or been skipped) *before* the target started, which the
/// reduced history can witness.
fn sync_edge_condition(
    schema: &ProcessSchema,
    blocks: &Blocks,
    st: &InstanceState,
    from: NodeId,
    to: NodeId,
) -> Verdict {
    let m = &st.marking;
    match m.node(to) {
        NodeState::NotActivated | NodeState::Activated | NodeState::Skipped => Verdict::Compliant,
        NodeState::Running | NodeState::Completed => {
            if completed_before_started(schema, blocks, &st.history, from, to) {
                Verdict::Compliant
            } else {
                Verdict::conflict(
                    ConflictKind::State,
                    format!(
                        "insertSyncEdge: target {to} already started and the history cannot witness {from} finishing first"
                    ),
                )
            }
        }
    }
}

/// Whether the history witnesses that `from`'s fate (completion or skip)
/// was sealed before `to` started. A skip is witnessed by the `XorChosen`
/// event that disabled `from`'s branch.
fn completed_before_started(
    schema: &ProcessSchema,
    blocks: &Blocks,
    history: &ExecutionHistory,
    from: NodeId,
    to: NodeId,
) -> bool {
    let reduced = history.reduced(schema, blocks);
    let mut from_sealed = false;
    for e in &reduced.events {
        match e {
            Event::Completed { node, .. } if *node == from => from_sealed = true,
            Event::XorChosen {
                split,
                branch_target,
            } => {
                // The decision seals `from` if `from` lies in a different
                // branch of this split than the chosen one.
                if let Some(info) = blocks.by_split.get(split) {
                    let from_branch = info.branch_of(from);
                    let chosen_branch = info.branch_of(*branch_target).or_else(|| {
                        // Branch target may be the head node itself.
                        schema
                            .out_edges_kind(*split, EdgeKind::Control)
                            .position(|e| e.to == *branch_target)
                    });
                    if let (Some(fb), Some(cb)) = (from_branch, chosen_branch) {
                        if fb != cb {
                            from_sealed = true;
                        }
                    }
                }
            }
            Event::Started { node, .. } if *node == to => return from_sealed,
            _ => {}
        }
    }
    // `to` has no Started event in the reduced history (e.g. running in an
    // earlier loop iteration that was cut): conservatively accept only if
    // the source is already sealed.
    from_sealed
}

/// Compliance condition for data-edge changes: changing the mandatory read
/// signature requires the activity not to have started; changing the write
/// set requires it not to have completed. Optional reads never conflict.
fn data_edge_condition(
    st: &InstanceState,
    node: NodeId,
    mode: AccessMode,
    optional: bool,
    opname: &str,
) -> Verdict {
    let s = st.marking.node(node);
    let ok = match mode {
        AccessMode::Read if optional => true,
        AccessMode::Read => s.pending() || s == NodeState::Skipped,
        AccessMode::Write => s != NodeState::Completed,
    };
    if ok {
        Verdict::Compliant
    } else {
        Verdict::conflict(
            ConflictKind::State,
            format!("{opname}: {node} is already {s}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_op;
    use crate::ops::NewActivity;
    use adept_model::SchemaBuilder;
    use adept_state::DefaultDriver;

    /// Build the Fig. 1 order process, run an instance `k` activities
    /// forward, and try the Fig. 1 type change on it.
    fn fig1_check(completed_activities: usize) -> (Verdict, Verdict) {
        let mut b = SchemaBuilder::new("order");
        b.activity("get order");
        b.activity("collect data");
        b.and_split();
        b.branch();
        b.activity("confirm order");
        b.branch();
        b.activity("compose order");
        b.activity("pack goods");
        b.and_join();
        b.activity("deliver goods");
        let s_old = b.build().unwrap();

        let ex_old = Execution::new(&s_old).unwrap();
        let mut st = ex_old.init().unwrap();
        ex_old
            .run(&mut st, &mut DefaultDriver, Some(completed_activities))
            .unwrap();

        // ΔT: addActivity(send questions, compose order, pack goods) +
        //     insertSyncEdge(send questions, confirm order)
        let mut s_new = s_old.clone();
        let compose = s_new.node_by_name("compose order").unwrap().id;
        let pack = s_new.node_by_name("pack goods").unwrap().id;
        let rec1 = apply_op(
            &mut s_new,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("send questions"),
                pred: compose,
                succ: pack,
            },
        )
        .unwrap();
        let sq = rec1.inserted_activity().unwrap();
        let confirm = s_new.node_by_name("confirm order").unwrap().id;
        let rec2 = apply_op(
            &mut s_new,
            &ChangeOp::InsertSyncEdge {
                from: sq,
                to: confirm,
            },
        )
        .unwrap();
        let delta: Delta = vec![rec1, rec2].into_iter().collect();

        let ex_new = Execution::new(&s_new).unwrap();
        let fast = check_fast(&s_old, &ex_old.blocks, &st, &delta);
        let trace = check_trace(&s_old, &ex_old.blocks, &ex_new, &st);
        (fast, trace)
    }

    #[test]
    fn fig1_instance_i1_is_compliant() {
        // I1 has completed "get order" and "collect data" only (the
        // parallel block not yet entered deeply): compliant.
        let (fast, trace) = fig1_check(2);
        assert!(fast.is_compliant(), "fast: {fast}");
        assert!(trace.is_compliant(), "trace: {trace}");
    }

    #[test]
    fn fig1_instance_i3_has_state_conflict() {
        // Drive the instance to completion: pack goods (the insertion
        // successor) is completed -> state-related conflict.
        let (fast, trace) = fig1_check(6);
        assert!(!fast.is_compliant());
        assert!(!trace.is_compliant());
        if let Verdict::NotCompliant(c) = fast {
            assert_eq!(c.kind, ConflictKind::State);
        }
    }

    #[test]
    fn fast_matches_trace_at_every_progress_point() {
        for k in 0..=6 {
            let (fast, trace) = fig1_check(k);
            assert_eq!(
                fast.is_compliant(),
                trace.is_compliant(),
                "fast/trace disagree after {k} activities: fast={fast}, trace={trace}"
            );
        }
    }

    #[test]
    fn delete_condition_depends_on_state() {
        let mut b = SchemaBuilder::new("seq");
        let a = b.activity("a");
        b.activity("b");
        let s_old = b.build().unwrap();
        let ex = Execution::new(&s_old).unwrap();
        let mut st = ex.init().unwrap();

        let mut s_new = s_old.clone();
        let rec = apply_op(&mut s_new, &ChangeOp::DeleteActivity { node: a }).unwrap();
        let delta: Delta = vec![rec].into_iter().collect();

        // Before a runs: compliant.
        assert!(check_fast(&s_old, &ex.blocks, &st, &delta).is_compliant());
        // After a completed: conflict.
        ex.run(&mut st, &mut DefaultDriver, Some(1)).unwrap();
        let v = check_fast(&s_old, &ex.blocks, &st, &delta);
        assert!(!v.is_compliant());

        let ex_new = Execution::new(&s_new).unwrap();
        let t = check_trace(&s_old, &ex.blocks, &ex_new, &st);
        assert!(!t.is_compliant(), "trace must agree: {t}");
    }

    #[test]
    fn sync_edge_witnessed_by_history_is_compliant() {
        // Parallel branches; both executed, but the history shows the
        // source completing before the target started (because the driver
        // executes in id order): inserting the sync edge afterwards is
        // compliant.
        let mut b = SchemaBuilder::new("par");
        b.and_split();
        b.branch();
        let first = b.activity("first");
        b.branch();
        let second = b.activity("second");
        b.and_join();
        let s_old = b.build().unwrap();
        let ex = Execution::new(&s_old).unwrap();
        let mut st = ex.init().unwrap();
        ex.run(&mut st, &mut DefaultDriver, None).unwrap();

        let mut s_new = s_old.clone();
        let rec = apply_op(
            &mut s_new,
            &ChangeOp::InsertSyncEdge {
                from: first,
                to: second,
            },
        )
        .unwrap();
        let delta: Delta = vec![rec].into_iter().collect();
        let fast = check_fast(&s_old, &ex.blocks, &st, &delta);
        assert!(fast.is_compliant(), "{fast}");
        let ex_new = Execution::new(&s_new).unwrap();
        let trace = check_trace(&s_old, &ex.blocks, &ex_new, &st);
        assert!(trace.is_compliant(), "{trace}");

        // The opposite direction is NOT compliant: second started before
        // first completed... actually with the default driver first runs
        // first, so build the conflicting case explicitly by syncing from
        // `second` to `first`.
        let mut s_new2 = s_old.clone();
        let rec2 = apply_op(
            &mut s_new2,
            &ChangeOp::InsertSyncEdge {
                from: second,
                to: first,
            },
        )
        .unwrap();
        let delta2: Delta = vec![rec2].into_iter().collect();
        let fast2 = check_fast(&s_old, &ex.blocks, &st, &delta2);
        assert!(!fast2.is_compliant());
        let ex_new2 = Execution::new(&s_new2).unwrap();
        let trace2 = check_trace(&s_old, &ex.blocks, &ex_new2, &st);
        assert!(!trace2.is_compliant());
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Compliant.to_string(), "compliant");
        let v = Verdict::conflict(ConflictKind::Structural, "cycle");
        assert!(v.to_string().contains("structural conflict"));
    }
}
