//! Change transactions: staging multiple change operations as one guarded,
//! atomic unit.
//!
//! ADEPT2's promise is that dynamic changes — ad-hoc instance deviations
//! and type evolutions alike — can never corrupt a schema or an instance
//! state. The one-op-at-a-time entry points ([`crate::apply::apply_op`])
//! buy that promise expensively: every operation pays a **full buildtime
//! verification pass** as its postcondition, so a change of N operations
//! verifies N times. A [`ChangeTxn`] restores the amortised cost model the
//! paper intends:
//!
//! 1. **stage** — each operation is applied to a private *working overlay*
//!    of the base schema with its structural preconditions checked, its
//!    application record ([`AppliedOp`]) captured, and its inverse
//!    ([`crate::inverse::inverse_of`]) recorded for rollback;
//! 2. **preview** — a pure dry run: per-op diagnostics, exactly one full
//!    verification pass over the final overlay, and one Fig.-1
//!    fast-compliance pass of the composed delta against an instance
//!    marking — nothing is mutated;
//! 3. **commit** — the same single verification + compliance gate, after
//!    which the caller installs the overlay and composed [`Delta`]
//!    atomically. A failing gate consumes nothing: the base schema, the
//!    staged record and every observable structure are untouched.
//!
//! The transaction owns all intermediate state, so *abort is free*:
//! dropping a `ChangeTxn` leaves the world bit-identical to before
//! `begin`.

use crate::apply::apply_op_unverified;
use crate::compliance::{check_fast_op, Verdict};
use crate::delta::Delta;
use crate::error::ChangeError;
use crate::inverse::inverse_of;
use crate::ops::{AppliedOp, ChangeOp};
use adept_model::{Blocks, ProcessSchema};
use adept_state::InstanceState;
use adept_verify::{verify_schema, VerificationReport};
use std::fmt;

/// One staged operation: its application record on the working overlay and
/// the inverse operation that would undo it (when the operation is
/// invertible from its record).
#[derive(Debug, Clone, PartialEq)]
pub struct StagedOp {
    /// The application record (requested op + allocated/removed ids).
    pub rec: AppliedOp,
    /// The inverse operation, computed against the post-application
    /// overlay. `None` for operations that are not invertible from their
    /// record (e.g. deleting a nullified activity).
    pub inverse: Option<ChangeOp>,
}

/// A change transaction: a sequence of operations staged against a working
/// overlay of a base schema, committed (or dropped) as one unit.
#[derive(Debug, Clone)]
pub struct ChangeTxn {
    base: ProcessSchema,
    working: ProcessSchema,
    staged: Vec<StagedOp>,
}

/// Per-operation diagnostics of a [`TxnPreview`].
#[derive(Debug, Clone, PartialEq)]
pub struct OpDiagnostic {
    /// Position in staging order.
    pub index: usize,
    /// Rendered operation.
    pub op: String,
    /// Whether the recorded inverse can undo this operation.
    pub invertible: bool,
    /// The per-operation fast-compliance verdict, when the preview was
    /// taken against an instance state.
    pub compliance: Option<Verdict>,
}

/// The result of a pure dry run over a transaction.
#[derive(Debug, Clone)]
pub struct TxnPreview {
    /// Per staged operation: rendering, invertibility, compliance.
    pub per_op: Vec<OpDiagnostic>,
    /// The full buildtime verification report of the final overlay (the
    /// one verification pass a commit would perform).
    pub verification: VerificationReport,
    /// The overall fast-compliance verdict of the composed delta against
    /// the supplied instance state; `None` for schema-only previews (type
    /// evolutions).
    pub compliance: Option<Verdict>,
}

impl TxnPreview {
    /// Whether a commit taken now would pass both gates.
    pub fn is_committable(&self) -> bool {
        self.verification.is_correct() && self.compliance.as_ref().is_none_or(Verdict::is_compliant)
    }
}

impl fmt::Display for TxnPreview {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "transaction preview: {} op(s), {}",
            self.per_op.len(),
            if self.is_committable() {
                "committable"
            } else {
                "NOT committable"
            }
        )?;
        for d in &self.per_op {
            write!(f, "  [{}] {}", d.index, d.op)?;
            if !d.invertible {
                write!(f, " (not invertible)")?;
            }
            if let Some(v) = &d.compliance {
                write!(f, " — {v}")?;
            }
            writeln!(f)?;
        }
        if !self.verification.is_correct() {
            writeln!(f, "  verification: {}", self.verification)?;
        }
        Ok(())
    }
}

impl ChangeTxn {
    /// Opens a transaction against `base`. The base is kept untouched; all
    /// staging happens on a private working overlay.
    pub fn begin(base: ProcessSchema) -> Self {
        let working = base.clone();
        Self {
            base,
            working,
            staged: Vec::new(),
        }
    }

    /// The schema the transaction was opened on.
    pub fn base(&self) -> &ProcessSchema {
        &self.base
    }

    /// The working overlay with all staged operations applied.
    pub fn working(&self) -> &ProcessSchema {
        &self.working
    }

    /// The staged operations in staging order.
    pub fn staged(&self) -> &[StagedOp] {
        &self.staged
    }

    /// Number of staged operations.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// Whether nothing has been staged yet.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Stages one operation: checks its structural preconditions against
    /// the current overlay, applies it, and records the application and
    /// its inverse. **No** full verification runs here — that cost is paid
    /// once, at preview/commit time.
    ///
    /// On failure the overlay is untouched and the transaction remains
    /// usable (the failed operation is simply not part of it).
    pub fn stage(&mut self, op: &ChangeOp) -> Result<&AppliedOp, ChangeError> {
        let rec = apply_op_unverified(&mut self.working, op)?;
        let inverse = inverse_of(&self.working, &rec);
        self.staged.push(StagedOp { rec, inverse });
        Ok(&self.staged.last().expect("just pushed").rec)
    }

    /// Rolls back the most recently staged operation. The overlay is
    /// rebuilt by replaying the remaining records from the base with their
    /// **recorded ids** ([`crate::apply::apply_recorded`]) — applying the
    /// op's inverse instead would yield a semantically equal overlay with
    /// *different* edge ids, silently breaking the `working = base +
    /// delta` id correspondence that substitution blocks rely on. Works
    /// for every operation, invertible or not.
    pub fn unstage_last(&mut self) -> Result<AppliedOp, ChangeError> {
        let popped = self.staged.pop().ok_or_else(|| {
            ChangeError::Precondition("transaction has no staged operations".into())
        })?;
        let mut working = self.base.clone();
        for s in &self.staged {
            if let Err(e) = crate::apply::apply_recorded(&mut working, &s.rec) {
                // Cannot happen: the same prefix applied before. Restore
                // the popped op so the transaction stays consistent.
                self.staged.push(popped);
                return Err(e);
            }
        }
        self.working = working;
        Ok(popped.rec)
    }

    /// The composed delta of all staged operations, in staging order.
    pub fn delta(&self) -> Delta {
        self.staged.iter().map(|s| s.rec.clone()).collect()
    }

    /// The recorded inverses, aligned with [`ChangeTxn::staged`].
    pub fn inverses(&self) -> Vec<Option<ChangeOp>> {
        self.staged.iter().map(|s| s.inverse.clone()).collect()
    }

    /// Runs the **single** full buildtime verification pass over the final
    /// overlay — the postcondition a commit enforces.
    pub fn verify(&self) -> VerificationReport {
        verify_schema(&self.working)
    }

    /// Runs the Fig.-1 fast-compliance conditions of every staged
    /// operation against an instance marking (one pass over the staged
    /// records, no replay, no re-verification). Returns the first
    /// conflict, with the index of the offending operation.
    pub fn check_compliance(
        &self,
        blocks: &Blocks,
        st: &InstanceState,
    ) -> Result<(), (usize, Verdict)> {
        for (i, s) in self.staged.iter().enumerate() {
            let v = check_fast_op(&self.base, blocks, st, &s.rec);
            if !v.is_compliant() {
                return Err((i, v));
            }
        }
        Ok(())
    }

    /// A pure dry run: per-op diagnostics, one verification pass, and —
    /// when an instance state is supplied — the composed compliance
    /// verdict. Nothing observable is mutated.
    pub fn preview(&self, instance: Option<(&Blocks, &InstanceState)>) -> TxnPreview {
        let mut per_op: Vec<OpDiagnostic> = self
            .staged
            .iter()
            .enumerate()
            .map(|(i, s)| OpDiagnostic {
                index: i,
                op: s.rec.to_string(),
                invertible: s.inverse.is_some(),
                compliance: None,
            })
            .collect();
        let compliance = instance.map(|(blocks, st)| {
            for (d, s) in per_op.iter_mut().zip(&self.staged) {
                d.compliance = Some(check_fast_op(&self.base, blocks, st, &s.rec));
            }
            per_op
                .iter()
                .filter_map(|d| d.compliance.clone())
                .find(|v| !v.is_compliant())
                .unwrap_or(Verdict::Compliant)
        });
        TxnPreview {
            per_op,
            verification: self.verify(),
            compliance,
        }
    }

    /// Commits the transaction's *schema side*: runs the single
    /// verification pass and, on success, consumes the transaction into
    /// its outcome — the verified overlay, the composed delta and the
    /// recorded inverses. Callers install the outcome atomically (swap a
    /// repository version, set an instance bias).
    ///
    /// On failure the transaction is handed back unchanged together with
    /// the error, so the caller can keep staging or abort — and since
    /// nothing outside the transaction was touched, a failed commit is
    /// observably side-effect free.
    pub fn commit_schema(self) -> Result<CommittedTxn, (Box<ChangeTxn>, ChangeError)> {
        let report = self.verify();
        if !report.is_correct() {
            let msgs: Vec<String> = report.errors().map(|i| i.to_string()).collect();
            let err = ChangeError::PostconditionViolated(msgs.join("; "));
            return Err((Box::new(self), err));
        }
        let delta = self.delta();
        let inverses = self.inverses();
        Ok(CommittedTxn {
            base: self.base,
            schema: self.working,
            delta,
            inverses,
        })
    }
}

/// The outcome of a successfully committed transaction.
#[derive(Debug, Clone)]
pub struct CommittedTxn {
    /// The schema the transaction was opened on.
    pub base: ProcessSchema,
    /// The verified final schema (base + all staged operations).
    pub schema: ProcessSchema,
    /// The composed change log, in staging order.
    pub delta: Delta,
    /// The recorded inverse per operation (rollback material).
    pub inverses: Vec<Option<ChangeOp>>,
}

impl CommittedTxn {
    /// Every node the transaction touched: anchors of the staged
    /// operations plus nodes the delta added or removed. The runtime uses
    /// this as its cache/worklist invalidation hook — a commit whose
    /// touched set is empty (pure attribute edits never anchor) cannot
    /// have changed which activities are enabled.
    pub fn touched_nodes(&self) -> std::collections::BTreeSet<adept_model::NodeId> {
        let mut nodes = self.delta.anchor_nodes();
        nodes.extend(self.delta.added_nodes());
        nodes.extend(self.delta.deleted_nodes());
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::NewActivity;
    use adept_model::{NodeId, SchemaBuilder};
    use adept_verify::{is_correct, verification_passes};

    fn order() -> ProcessSchema {
        let mut b = SchemaBuilder::new("order");
        b.activity("get order");
        b.activity("collect data");
        b.and_split();
        b.branch();
        b.activity("confirm order");
        b.branch();
        b.activity("compose order");
        b.activity("pack goods");
        b.and_join();
        b.activity("deliver goods");
        b.build().unwrap()
    }

    fn node(s: &ProcessSchema, name: &str) -> NodeId {
        s.node_by_name(name).unwrap().id
    }

    #[test]
    fn stage_commit_applies_all_ops_with_one_verification() {
        let base = order();
        let compose = node(&base, "compose order");
        let pack = node(&base, "pack goods");
        let confirm = node(&base, "confirm order");
        let mut txn = ChangeTxn::begin(base.clone());

        let before = verification_passes();
        let sq = txn
            .stage(&ChangeOp::SerialInsert {
                activity: NewActivity::named("send questions"),
                pred: compose,
                succ: pack,
            })
            .unwrap()
            .inserted_activity()
            .unwrap();
        txn.stage(&ChangeOp::InsertSyncEdge {
            from: sq,
            to: confirm,
        })
        .unwrap();
        assert_eq!(
            verification_passes(),
            before,
            "staging must not run full verification"
        );

        let committed = txn.commit_schema().unwrap();
        assert_eq!(
            verification_passes(),
            before + 1,
            "commit runs exactly one verification pass"
        );
        assert!(is_correct(&committed.schema));
        assert_eq!(committed.delta.len(), 2);
        assert!(committed.schema.node_by_name("send questions").is_some());
        assert_eq!(committed.base, base, "base is preserved untouched");
    }

    #[test]
    fn failed_stage_leaves_overlay_untouched() {
        let base = order();
        let get = node(&base, "get order");
        let deliver = node(&base, "deliver goods");
        let mut txn = ChangeTxn::begin(base);
        let snapshot = txn.working().clone();
        // Not adjacent: structural precondition fails.
        let err = txn
            .stage(&ChangeOp::SerialInsert {
                activity: NewActivity::named("x"),
                pred: get,
                succ: deliver,
            })
            .unwrap_err();
        assert!(matches!(err, ChangeError::Precondition(_)));
        assert_eq!(txn.working(), &snapshot);
        assert!(txn.is_empty());
    }

    #[test]
    fn failed_commit_returns_txn_and_keeps_base_identical() {
        // A staged op that only the *full* verification rejects: insert an
        // activity reading a data element that is written later.
        let mut b = SchemaBuilder::new("g");
        let d = b.data("late", adept_model::ValueType::Int);
        let a = b.activity("a");
        let c = b.activity("c");
        b.write(c, d);
        let base = b.build().unwrap();

        let mut txn = ChangeTxn::begin(base.clone());
        txn.stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("x").reading(d),
            pred: a,
            succ: c,
        })
        .unwrap();
        let (txn, err) = txn.commit_schema().unwrap_err();
        assert!(
            matches!(err, ChangeError::PostconditionViolated(_)),
            "{err}"
        );
        assert_eq!(txn.base(), &base, "failed commit is side-effect free");
        assert_eq!(txn.len(), 1, "staged record survives for inspection");
    }

    #[test]
    fn unstage_last_restores_the_exact_overlay() {
        let base = order();
        let get = node(&base, "get order");
        let collect = node(&base, "collect data");
        let mut txn = ChangeTxn::begin(base.clone());
        txn.stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("tmp"),
            pred: get,
            succ: collect,
        })
        .unwrap();
        assert_eq!(txn.len(), 1);
        txn.unstage_last().unwrap();
        assert!(txn.is_empty());
        assert_eq!(txn.working(), &base, "overlay is id-identical to base");
        // Nothing staged: further unstaging errors cleanly.
        assert!(txn.unstage_last().is_err());
    }

    #[test]
    fn unstage_keeps_recorded_ids_of_remaining_ops() {
        // Regression for the id-correspondence bug: undoing op 2 must not
        // shift the edge ids recorded for op 1 (a bias delta must replay
        // exactly onto the base).
        let base = order();
        let get = node(&base, "get order");
        let collect = node(&base, "collect data");
        let mut txn = ChangeTxn::begin(base.clone());
        let keep = txn
            .stage(&ChangeOp::SerialInsert {
                activity: NewActivity::named("keep"),
                pred: get,
                succ: collect,
            })
            .unwrap()
            .inserted_activity()
            .unwrap();
        txn.stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("discard"),
            pred: keep,
            succ: collect,
        })
        .unwrap();
        txn.unstage_last().unwrap();
        // Replaying the remaining delta on the base reproduces the overlay
        // exactly (ids included).
        let mut replayed = base.clone();
        for s in txn.staged() {
            crate::apply::apply_recorded(&mut replayed, &s.rec).unwrap();
        }
        assert_eq!(&replayed, txn.working());
        // A non-invertible op (delete with null-replacement) unstages too.
        let confirm = node(txn.working(), "confirm order");
        let pack = node(txn.working(), "pack goods");
        txn.stage(&ChangeOp::InsertSyncEdge {
            from: confirm,
            to: pack,
        })
        .unwrap();
        txn.stage(&ChangeOp::DeleteActivity { node: confirm })
            .unwrap();
        assert!(txn.staged().last().unwrap().inverse.is_none());
        txn.unstage_last().unwrap();
        assert!(txn.working().has_node(confirm));
    }

    #[test]
    fn preview_is_pure_and_reports_per_op() {
        let base = order();
        let compose = node(&base, "compose order");
        let pack = node(&base, "pack goods");
        let mut txn = ChangeTxn::begin(base);
        txn.stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("extra"),
            pred: compose,
            succ: pack,
        })
        .unwrap();
        let snapshot = txn.clone();
        let p = txn.preview(None);
        assert!(p.is_committable(), "{p}");
        assert_eq!(p.per_op.len(), 1);
        assert!(p.per_op[0].invertible);
        assert!(p.compliance.is_none(), "schema-only preview");
        // Purity: the transaction is unchanged by previewing.
        assert_eq!(txn.working(), snapshot.working());
        assert_eq!(txn.staged(), snapshot.staged());
    }
}
