//! The change operations of ADEPT2.
//!
//! The paper: *"ADEPT2 offers a complete set of operations for defining
//! changes at a high semantic level and ensures correctness by introducing
//! pre-/post-conditions for these operations."*
//!
//! A [`ChangeOp`] is the *request* — it references existing nodes and
//! describes what to change. Applying it (see [`crate::apply`]) yields an
//! [`AppliedOp`] — the *record* — which additionally carries the concrete
//! node/edge ids the application allocated. Records are what deltas,
//! substitution blocks and conflict analysis operate on.

use adept_model::{AccessMode, ActivityAttributes, DataId, EdgeId, Guard, NodeId, ValueType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Description of an activity to be inserted, including its data edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NewActivity {
    /// Display name.
    pub name: String,
    /// Operational attributes.
    pub attrs: ActivityAttributes,
    /// Mandatory read parameters.
    pub reads: Vec<DataId>,
    /// Optional read parameters.
    pub optional_reads: Vec<DataId>,
    /// Written data elements.
    pub writes: Vec<DataId>,
}

impl NewActivity {
    /// A new activity with the given name and no data edges.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            attrs: ActivityAttributes::default(),
            reads: Vec::new(),
            optional_reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Adds a mandatory read parameter.
    pub fn reading(mut self, d: DataId) -> Self {
        self.reads.push(d);
        self
    }

    /// Adds an optional read parameter.
    pub fn optionally_reading(mut self, d: DataId) -> Self {
        self.optional_reads.push(d);
        self
    }

    /// Adds a written data element.
    pub fn writing(mut self, d: DataId) -> Self {
        self.writes.push(d);
        self
    }

    /// Sets the staff assignment role.
    pub fn with_role(mut self, role: impl Into<String>) -> Self {
        self.attrs.role = Some(role.into());
        self
    }
}

/// A high-level change operation (the request form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChangeOp {
    /// `serialInsert(S, X, pred, succ)` — insert activity `X` between two
    /// directly connected nodes (paper Fig. 1: `addActivity(S, send
    /// questions, compose order, pack goods)`).
    SerialInsert {
        /// The activity to insert.
        activity: NewActivity,
        /// Predecessor (must have a control edge to `succ`).
        pred: NodeId,
        /// Successor.
        succ: NodeId,
    },
    /// `parallelInsert(S, X, from, to)` — wrap the single-entry/single-exit
    /// region `from..to` into a new AND block and put `X` on a fresh
    /// parallel branch.
    ParallelInsert {
        /// The activity to insert.
        activity: NewActivity,
        /// First node of the region to parallelise.
        from: NodeId,
        /// Last node of the region to parallelise.
        to: NodeId,
    },
    /// `branchInsert(S, X, pred, succ, guard)` — insert `X` conditionally
    /// between two directly connected nodes: a new XOR block whose guarded
    /// branch contains `X` and whose else branch is empty.
    BranchInsert {
        /// The activity to insert.
        activity: NewActivity,
        /// Predecessor.
        pred: NodeId,
        /// Successor.
        succ: NodeId,
        /// Guard of the branch executing `X` (`None` = externally decided).
        guard: Option<Guard>,
    },
    /// `deleteActivity(S, X)` — remove an activity. Serial activities
    /// without sync edges are removed physically; otherwise the node is
    /// replaced by a silent `Null` node to preserve the block structure.
    DeleteActivity {
        /// The activity to delete.
        node: NodeId,
    },
    /// `moveActivity(S, X, pred, succ)` — shift a serial activity to a new
    /// position (delete + serial insert as one atomic operation).
    MoveActivity {
        /// The activity to move.
        node: NodeId,
        /// New predecessor.
        pred: NodeId,
        /// New successor.
        succ: NodeId,
    },
    /// `insertSyncEdge(S, from, to)` — order two activities from different
    /// branches of a parallel block (paper Fig. 1).
    InsertSyncEdge {
        /// Source (must complete or be skipped first).
        from: NodeId,
        /// Target (waits).
        to: NodeId,
    },
    /// Remove a sync edge.
    DeleteSyncEdge {
        /// Source of the existing sync edge.
        from: NodeId,
        /// Target of the existing sync edge.
        to: NodeId,
    },
    /// `addDataElement(S, name, type)` — declare a new data element.
    AddDataElement {
        /// Name of the new element.
        name: String,
        /// Declared type.
        ty: ValueType,
    },
    /// `addDataEdge(S, n, d, mode)` — connect a node to a data element.
    AddDataEdge {
        /// The accessing node.
        node: NodeId,
        /// The data element.
        data: DataId,
        /// Read or write.
        mode: AccessMode,
        /// For reads: whether `Null` is tolerated.
        optional: bool,
    },
    /// `deleteDataEdge(S, n, d, mode)` — remove a data edge.
    RemoveDataEdge {
        /// The accessing node.
        node: NodeId,
        /// The data element.
        data: DataId,
        /// Read or write.
        mode: AccessMode,
    },
    /// `changeActivityAttributes(S, n, attrs)` — update operational
    /// attributes (role, duration, application binding).
    SetActivityAttributes {
        /// The activity.
        node: NodeId,
        /// The new attributes.
        attrs: ActivityAttributes,
    },
}

impl ChangeOp {
    /// A short operation name for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ChangeOp::SerialInsert { .. } => "serialInsert",
            ChangeOp::ParallelInsert { .. } => "parallelInsert",
            ChangeOp::BranchInsert { .. } => "branchInsert",
            ChangeOp::DeleteActivity { .. } => "deleteActivity",
            ChangeOp::MoveActivity { .. } => "moveActivity",
            ChangeOp::InsertSyncEdge { .. } => "insertSyncEdge",
            ChangeOp::DeleteSyncEdge { .. } => "deleteSyncEdge",
            ChangeOp::AddDataElement { .. } => "addDataElement",
            ChangeOp::AddDataEdge { .. } => "addDataEdge",
            ChangeOp::RemoveDataEdge { .. } => "deleteDataEdge",
            ChangeOp::SetActivityAttributes { .. } => "changeActivityAttributes",
        }
    }
}

impl fmt::Display for ChangeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChangeOp::SerialInsert {
                activity,
                pred,
                succ,
            } => write!(f, "serialInsert(\"{}\", {pred}, {succ})", activity.name),
            ChangeOp::ParallelInsert { activity, from, to } => {
                write!(f, "parallelInsert(\"{}\", {from}..{to})", activity.name)
            }
            ChangeOp::BranchInsert {
                activity,
                pred,
                succ,
                guard,
            } => {
                write!(f, "branchInsert(\"{}\", {pred}, {succ}", activity.name)?;
                if let Some(g) = guard {
                    write!(f, ", if {g}")?;
                }
                f.write_str(")")
            }
            ChangeOp::DeleteActivity { node } => write!(f, "deleteActivity({node})"),
            ChangeOp::MoveActivity { node, pred, succ } => {
                write!(f, "moveActivity({node}, {pred}, {succ})")
            }
            ChangeOp::InsertSyncEdge { from, to } => write!(f, "insertSyncEdge({from}, {to})"),
            ChangeOp::DeleteSyncEdge { from, to } => write!(f, "deleteSyncEdge({from}, {to})"),
            ChangeOp::AddDataElement { name, ty } => write!(f, "addDataElement(\"{name}\", {ty})"),
            ChangeOp::AddDataEdge {
                node, data, mode, ..
            } => write!(f, "addDataEdge({node}, {data}, {mode})"),
            ChangeOp::RemoveDataEdge { node, data, mode } => {
                write!(f, "deleteDataEdge({node}, {data}, {mode})")
            }
            ChangeOp::SetActivityAttributes { node, .. } => {
                write!(f, "changeActivityAttributes({node})")
            }
        }
    }
}

/// The record of one applied change operation: the request plus every id
/// that applying it allocated or removed. This is what substitution blocks
/// (paper Fig. 2), bias composition and conflict analysis consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppliedOp {
    /// The operation as requested.
    pub op: ChangeOp,
    /// Nodes created by this application (inserted activity, new splits /
    /// joins / null replacements), in creation order.
    pub added_nodes: Vec<NodeId>,
    /// Edges created by this application.
    pub added_edges: Vec<EdgeId>,
    /// Nodes physically removed.
    pub removed_nodes: Vec<NodeId>,
    /// Edges physically removed.
    pub removed_edges: Vec<EdgeId>,
    /// Data elements created.
    pub added_data: Vec<DataId>,
    /// Nodes replaced by silent `Null` nodes instead of physical removal
    /// (deletions that must preserve the block structure).
    pub nullified_nodes: Vec<NodeId>,
}

impl AppliedOp {
    /// A record with no allocations (attribute/data-edge changes).
    pub fn plain(op: ChangeOp) -> Self {
        Self {
            op,
            added_nodes: Vec::new(),
            added_edges: Vec::new(),
            removed_nodes: Vec::new(),
            removed_edges: Vec::new(),
            added_data: Vec::new(),
            nullified_nodes: Vec::new(),
        }
    }

    /// The primary inserted node, if this operation inserted an activity.
    pub fn inserted_activity(&self) -> Option<NodeId> {
        match &self.op {
            ChangeOp::SerialInsert { .. }
            | ChangeOp::ParallelInsert { .. }
            | ChangeOp::BranchInsert { .. } => self.added_nodes.first().copied(),
            _ => None,
        }
    }

    /// All nodes this operation touches on the *pre-change* schema: used by
    /// overlap/conflict analysis between concurrent deltas.
    pub fn anchor_nodes(&self) -> Vec<NodeId> {
        match &self.op {
            ChangeOp::SerialInsert { pred, succ, .. } => vec![*pred, *succ],
            ChangeOp::ParallelInsert { from, to, .. } => vec![*from, *to],
            ChangeOp::BranchInsert { pred, succ, .. } => vec![*pred, *succ],
            ChangeOp::DeleteActivity { node } => vec![*node],
            ChangeOp::MoveActivity { node, pred, succ } => vec![*node, *pred, *succ],
            ChangeOp::InsertSyncEdge { from, to } | ChangeOp::DeleteSyncEdge { from, to } => {
                vec![*from, *to]
            }
            ChangeOp::AddDataElement { .. } => vec![],
            ChangeOp::AddDataEdge { node, .. }
            | ChangeOp::RemoveDataEdge { node, .. }
            | ChangeOp::SetActivityAttributes { node, .. } => vec![*node],
        }
    }
}

impl fmt::Display for AppliedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        if let Some(n) = self.inserted_activity() {
            write!(f, " => {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_activity_builder() {
        let a = NewActivity::named("send questions")
            .reading(DataId(0))
            .optionally_reading(DataId(1))
            .writing(DataId(2))
            .with_role("clerk");
        assert_eq!(a.name, "send questions");
        assert_eq!(a.reads, vec![DataId(0)]);
        assert_eq!(a.optional_reads, vec![DataId(1)]);
        assert_eq!(a.writes, vec![DataId(2)]);
        assert_eq!(a.attrs.role.as_deref(), Some("clerk"));
    }

    #[test]
    fn display_names_match_paper_vocabulary() {
        let op = ChangeOp::SerialInsert {
            activity: NewActivity::named("send questions"),
            pred: NodeId(4),
            succ: NodeId(5),
        };
        assert_eq!(op.name(), "serialInsert");
        assert!(op.to_string().contains("send questions"));
        let sync = ChangeOp::InsertSyncEdge {
            from: NodeId(9),
            to: NodeId(2),
        };
        assert_eq!(sync.to_string(), "insertSyncEdge(n9, n2)");
    }

    #[test]
    fn anchor_nodes_cover_endpoints() {
        let op = ChangeOp::MoveActivity {
            node: NodeId(1),
            pred: NodeId(2),
            succ: NodeId(3),
        };
        let rec = AppliedOp::plain(op);
        assert_eq!(rec.anchor_nodes(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(rec.inserted_activity(), None);
    }
}
