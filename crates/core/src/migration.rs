//! Process type evolution and instance migration.
//!
//! [`ProcessType`] manages the version chain of one process type: evolving
//! it applies a delta to the newest version and appends the verified result
//! as a new [`adept_model::ProcessSchema`] (schema evolution).
//!
//! [`migrate_instance`] decides the fate of a single running instance
//! (paper Fig. 1 and Fig. 3):
//!
//! 1. **structural check** — for biased instances the bias is transplanted
//!    onto the new version ([`crate::apply::apply_recorded`]) and the result
//!    is re-verified; failures (e.g. the deadlock-causing cycle of instance
//!    I2) are *structural conflicts*;
//! 2. **state compliance** — the per-operation conditions
//!    ([`crate::compliance::check_fast`]) or the trace criterion
//!    ([`crate::compliance::check_trace`]) decide whether the instance's
//!    history could have been produced on the new schema; failures are
//!    *state-related conflicts* (instance I3);
//! 3. **state adaptation** — compliant instances get their marking
//!    migrated ([`crate::adapt`]) and continue on the new version;
//!    non-compliant instances remain on the old one.

use crate::adapt::adapt_instance_state;
use crate::apply::{apply_op, apply_recorded};
use crate::compliance::{check_fast, check_trace, Conflict, ConflictKind, Verdict};
use crate::delta::Delta;
use crate::error::ChangeError;
use crate::ops::ChangeOp;
use adept_model::{Blocks, InstanceId, ProcessSchema};
use adept_state::{Execution, InstanceState};
use adept_verify::verify_schema;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A process type: a name plus its chain of schema versions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessType {
    /// Type name, e.g. `"online order"`.
    pub name: String,
    /// All versions, oldest first. `versions[i].version == i + 1`.
    pub versions: Vec<ProcessSchema>,
    /// The deltas between consecutive versions (`deltas[i]` transforms
    /// version `i+1` into version `i+2`).
    pub deltas: Vec<Delta>,
}

impl ProcessType {
    /// Creates a type from its initial schema (version 1). The schema must
    /// pass verification.
    pub fn new(mut base: ProcessSchema) -> Result<Self, ChangeError> {
        let report = verify_schema(&base);
        if !report.is_correct() {
            let msgs: Vec<String> = report.errors().map(|i| i.to_string()).collect();
            return Err(ChangeError::PostconditionViolated(msgs.join("; ")));
        }
        base.version = 1;
        Ok(Self {
            name: base.name.clone(),
            versions: vec![base],
            deltas: Vec::new(),
        })
    }

    /// The newest schema version.
    pub fn latest(&self) -> &ProcessSchema {
        self.versions.last().expect("at least one version")
    }

    /// A specific version (1-based), if it exists.
    pub fn version(&self, v: u32) -> Option<&ProcessSchema> {
        self.versions.get((v as usize).checked_sub(1)?)
    }

    /// Number of versions.
    pub fn version_count(&self) -> u32 {
        self.versions.len() as u32
    }

    /// Evolves the type: applies `ops` to the newest version and appends
    /// the result as a new version. Returns the new version number and the
    /// recorded delta. Type-level changes must stay below the private id
    /// space (which is reserved for instance-level ad-hoc changes).
    pub fn evolve(&mut self, ops: &[ChangeOp]) -> Result<(u32, Delta), ChangeError> {
        let mut schema = self.latest().clone();
        let mut delta = Delta::new();
        for op in ops {
            delta.push(apply_op(&mut schema, op)?);
        }
        if !schema.ids_below_private_space() {
            return Err(ChangeError::Precondition(
                "type evolution exhausted the public id space".into(),
            ));
        }
        schema.version += 1;
        let v = schema.version;
        self.versions.push(schema);
        self.deltas.push(delta.clone());
        Ok((v, delta))
    }

    /// The delta transforming `from` into `from + 1`, if recorded.
    pub fn delta_between(&self, from: u32) -> Option<&Delta> {
        self.deltas.get((from as usize).checked_sub(1)?)
    }

    /// Appends an **already-verified** schema as the next version, with
    /// the delta that produced it. This is the change-transaction commit
    /// path: the transaction ran the single verification pass over its
    /// final overlay, so re-applying (and re-verifying) each operation
    /// here would defeat the amortisation. The caller asserts that
    /// `schema` is `latest() + delta`; the id-space invariant of
    /// [`ProcessType::evolve`] is still enforced.
    pub fn push_prepared(
        &mut self,
        mut schema: ProcessSchema,
        delta: Delta,
    ) -> Result<u32, ChangeError> {
        if !schema.ids_below_private_space() {
            return Err(ChangeError::Precondition(
                "type evolution exhausted the public id space".into(),
            ));
        }
        schema.version = self.latest().version + 1;
        let v = schema.version;
        self.versions.push(schema);
        self.deltas.push(delta);
        Ok(v)
    }

    /// Reverses the most recent [`ProcessType::push_prepared`], restoring
    /// the version chain to its prior state. Install paths that discover a
    /// pushed version is unusable (e.g. its block structure does not
    /// analyze) use this so the `versions`/`deltas` pairing stays owned by
    /// this type. A no-op on version 1 — the base version is never popped.
    pub fn pop_prepared(&mut self) {
        if self.versions.len() > 1 {
            self.versions.pop();
            self.deltas.pop();
        }
    }
}

/// Options controlling a migration run.
#[derive(Debug, Clone, Copy)]
pub struct MigrationOptions {
    /// Use the trace-replay criterion instead of the fast per-operation
    /// conditions (slower; useful for audits and as an oracle).
    pub use_trace_criterion: bool,
    /// Re-verify the materialised target schema of biased instances
    /// (always recommended; disabled only in specific benchmarks).
    pub verify_biased_targets: bool,
}

impl Default for MigrationOptions {
    fn default() -> Self {
        Self {
            use_trace_criterion: false,
            verify_biased_targets: true,
        }
    }
}

/// The result of migrating one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationResult {
    /// The verdict (compliant / which conflict).
    pub verdict: Verdict,
    /// For compliant instances: the adapted runtime state on the target
    /// schema.
    pub adapted: Option<InstanceState>,
    /// For compliant *biased* instances: the materialised instance-specific
    /// target schema (new version + re-applied bias). Unbiased instances
    /// run directly on the shared new version.
    pub materialized: Option<ProcessSchema>,
}

impl MigrationResult {
    fn conflict(kind: ConflictKind, reason: impl Into<String>) -> Self {
        Self {
            verdict: Verdict::NotCompliant(Conflict {
                kind,
                reason: reason.into(),
            }),
            adapted: None,
            materialized: None,
        }
    }
}

/// Migrates one instance from its current schema to a new type version.
///
/// * `current_schema`/`current_blocks` — what the instance currently runs
///   on (the base version for unbiased instances, the materialised
///   bias-overlaid schema for biased ones);
/// * `new_base` — the new type version `S'`;
/// * `delta_t` — the type change `ΔT` that produced `new_base`;
/// * `bias` — the instance's ad-hoc changes (empty for unbiased instances);
/// * `st` — the instance's runtime state.
pub fn migrate_instance(
    current_schema: &ProcessSchema,
    current_blocks: &Blocks,
    new_base: &ProcessSchema,
    delta_t: &Delta,
    bias: &Delta,
    st: &InstanceState,
    options: &MigrationOptions,
) -> MigrationResult {
    // Step 1: structural conflict detection for biased instances: the bias
    // must re-apply on the new version and the result must verify.
    let materialized: Option<ProcessSchema> = if bias.is_empty() {
        None
    } else {
        let mut target = new_base.clone();
        target.reserve_private_id_space();
        for rec in &bias.ops {
            if let Err(e) = apply_recorded(&mut target, rec) {
                return MigrationResult::conflict(
                    ConflictKind::Structural,
                    format!(
                        "bias {} cannot be re-applied on the new version: {e}",
                        rec.op
                    ),
                );
            }
        }
        if options.verify_biased_targets {
            let report = verify_schema(&target);
            if !report.is_correct() {
                let msgs: Vec<String> = report.errors().map(|i| i.to_string()).collect();
                return MigrationResult::conflict(
                    ConflictKind::Structural,
                    format!(
                        "type change and instance bias conflict: {}",
                        msgs.join("; ")
                    ),
                );
            }
        }
        Some(target)
    };

    let target_schema: &ProcessSchema = materialized.as_ref().unwrap_or(new_base);
    let new_ex = match Execution::new(target_schema) {
        Ok(ex) => ex,
        Err(e) => {
            return MigrationResult::conflict(
                ConflictKind::Structural,
                format!("target schema has no valid block structure: {e}"),
            )
        }
    };

    // Step 2: state compliance.
    let verdict = if options.use_trace_criterion {
        check_trace(current_schema, current_blocks, &new_ex, st)
    } else {
        check_fast(current_schema, current_blocks, st, delta_t)
    };
    if !verdict.is_compliant() {
        return MigrationResult {
            verdict,
            adapted: None,
            materialized: None,
        };
    }

    // Step 3: state adaptation.
    let mut adapted = st.clone();
    if let Err(e) = adapt_instance_state(
        current_schema,
        current_blocks,
        &new_ex,
        delta_t,
        &mut adapted,
    ) {
        return MigrationResult::conflict(
            ConflictKind::State,
            format!("state adaptation failed: {e}"),
        );
    }
    MigrationResult {
        verdict: Verdict::Compliant,
        adapted: Some(adapted),
        materialized,
    }
}

/// Per-instance entry of a [`MigrationReport`] (paper Fig. 3's instance
/// list: which instances migrated, which stayed, and why).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceOutcome {
    /// The instance.
    pub instance: InstanceId,
    /// Whether the instance carried ad-hoc changes.
    pub biased: bool,
    /// The verdict.
    pub verdict: Verdict,
}

/// The migration report shown to the user after committing a type change
/// (paper Fig. 3).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// Process type name.
    pub type_name: String,
    /// Source version.
    pub from_version: u32,
    /// Target version.
    pub to_version: u32,
    /// Per-instance outcomes, in instance id order.
    pub outcomes: Vec<InstanceOutcome>,
}

impl MigrationReport {
    /// Records one outcome.
    pub fn push(&mut self, outcome: InstanceOutcome) {
        self.outcomes.push(outcome);
    }

    /// Number of migrated (compliant) instances.
    pub fn migrated(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.verdict.is_compliant())
            .count()
    }

    /// Number of instances with the given conflict kind.
    pub fn conflicts(&self, kind: ConflictKind) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(&o.verdict, Verdict::NotCompliant(c) if c.kind == kind))
            .count()
    }

    /// Number of instances that disappeared mid-migration (cancelled or
    /// archived concurrently). These are not failures of the change —
    /// there was nothing left to migrate — so they are reported separately
    /// from the paper's conflict taxonomy.
    pub fn vanished(&self) -> usize {
        self.conflicts(ConflictKind::Vanished)
    }

    /// Number of real migration conflicts: outcomes that are neither
    /// compliant nor merely [`ConflictKind::Vanished`].
    pub fn failed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(
                |o| matches!(&o.verdict, Verdict::NotCompliant(c) if c.kind != ConflictKind::Vanished),
            )
            .count()
    }

    /// Total instances checked.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }
}

impl fmt::Display for MigrationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "migration report: \"{}\" V{} -> V{}",
            self.type_name, self.from_version, self.to_version
        )?;
        write!(
            f,
            "  {} of {} instances migrated ({} state conflicts, {} structural conflicts, {} semantical conflicts",
            self.migrated(),
            self.total(),
            self.conflicts(ConflictKind::State),
            self.conflicts(ConflictKind::Structural),
            self.conflicts(ConflictKind::Semantic),
        )?;
        if self.vanished() > 0 {
            write!(f, ", {} vanished", self.vanished())?;
        }
        if self.conflicts(ConflictKind::Internal) > 0 {
            write!(
                f,
                ", {} internal failures",
                self.conflicts(ConflictKind::Internal)
            )?;
        }
        writeln!(f, ")")?;
        for o in &self.outcomes {
            let bias = if o.biased { " (ad-hoc modified)" } else { "" };
            match &o.verdict {
                Verdict::Compliant => writeln!(
                    f,
                    "  {}{}: migrated to V{}",
                    o.instance, bias, self.to_version
                )?,
                Verdict::NotCompliant(c) => writeln!(
                    f,
                    "  {}{}: stays on V{} — {}",
                    o.instance, bias, self.from_version, c
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::NewActivity;
    use adept_model::{NodeId, SchemaBuilder};
    use adept_state::DefaultDriver;

    fn order() -> ProcessSchema {
        let mut b = SchemaBuilder::new("online order");
        b.activity("get order");
        b.activity("collect data");
        b.and_split();
        b.branch();
        b.activity("confirm order");
        b.branch();
        b.activity("compose order");
        b.activity("pack goods");
        b.and_join();
        b.activity("deliver goods");
        b.build().unwrap()
    }

    fn node(s: &ProcessSchema, name: &str) -> NodeId {
        s.node_by_name(name).unwrap().id
    }

    fn fig1_ops(s: &ProcessSchema) -> Vec<ChangeOp> {
        vec![ChangeOp::SerialInsert {
            activity: NewActivity::named("send questions"),
            pred: node(s, "compose order"),
            succ: node(s, "pack goods"),
        }]
    }

    #[test]
    fn type_evolution_creates_versions() {
        let mut pt = ProcessType::new(order()).unwrap();
        assert_eq!(pt.version_count(), 1);
        let ops = fig1_ops(pt.latest());
        let (v, delta) = pt.evolve(&ops).unwrap();
        assert_eq!(v, 2);
        assert_eq!(pt.version_count(), 2);
        assert_eq!(delta.len(), 1);
        assert_eq!(pt.latest().version, 2);
        assert!(pt.version(1).is_some());
        assert!(pt.version(3).is_none());
        assert_eq!(pt.delta_between(1), Some(&delta));
    }

    #[test]
    fn unbiased_instance_migrates_and_state_adapts() {
        let mut pt = ProcessType::new(order()).unwrap();
        let v1 = pt.version(1).unwrap().clone();
        let ex1 = Execution::new(&v1).unwrap();
        let mut st = ex1.init().unwrap();
        ex1.run(&mut st, &mut DefaultDriver, Some(2)).unwrap();

        let ops = fig1_ops(pt.latest());
        let (_, delta) = pt.evolve(&ops).unwrap();
        let res = migrate_instance(
            &v1,
            &ex1.blocks,
            pt.latest(),
            &delta,
            &Delta::new(),
            &st,
            &MigrationOptions::default(),
        );
        assert!(res.verdict.is_compliant(), "{}", res.verdict);
        assert!(res.adapted.is_some());
        assert!(res.materialized.is_none(), "unbiased: shared schema");

        // The adapted instance can run to completion on the new version,
        // executing the inserted activity.
        let ex2 = Execution::new(pt.latest()).unwrap();
        let mut st2 = res.adapted.unwrap();
        ex2.run(&mut st2, &mut DefaultDriver, None).unwrap();
        assert!(ex2.is_finished(&st2));
        let sq = pt.latest().node_by_name("send questions").unwrap().id;
        assert_eq!(st2.marking.node(sq), adept_state::NodeState::Completed);
    }

    #[test]
    fn too_advanced_instance_gets_state_conflict() {
        let mut pt = ProcessType::new(order()).unwrap();
        let v1 = pt.version(1).unwrap().clone();
        let ex1 = Execution::new(&v1).unwrap();
        let mut st = ex1.init().unwrap();
        ex1.run(&mut st, &mut DefaultDriver, None).unwrap(); // run to end

        let ops = fig1_ops(pt.latest());
        let (_, delta) = pt.evolve(&ops).unwrap();
        let res = migrate_instance(
            &v1,
            &ex1.blocks,
            pt.latest(),
            &delta,
            &Delta::new(),
            &st,
            &MigrationOptions::default(),
        );
        match &res.verdict {
            Verdict::NotCompliant(c) => assert_eq!(c.kind, ConflictKind::State),
            v => panic!("expected state conflict, got {v}"),
        }
    }

    #[test]
    fn biased_instance_with_cycle_gets_structural_conflict() {
        // Reproduces Fig. 1/I2: instance bias sync(confirm -> compose),
        // type change inserts "send questions" + sync(send questions ->
        // confirm order): combined, the wait-for cycle confirm -> compose
        // -> send questions -> confirm arises -> structural conflict.
        let mut pt = ProcessType::new(order()).unwrap();
        let v1 = pt.version(1).unwrap().clone();

        // Ad-hoc change on the instance's private copy.
        let mut inst_schema = v1.clone();
        inst_schema.reserve_private_id_space();
        let confirm_i = node(&inst_schema, "confirm order");
        let compose_i = node(&inst_schema, "compose order");
        let mut bias = Delta::new();
        bias.push(
            apply_op(
                &mut inst_schema,
                &ChangeOp::InsertSyncEdge {
                    from: confirm_i,
                    to: compose_i,
                },
            )
            .unwrap(),
        );
        let ex_inst = Execution::new(&inst_schema).unwrap();
        let mut st = ex_inst.init().unwrap();
        ex_inst.run(&mut st, &mut DefaultDriver, Some(2)).unwrap();

        // Type change: insert + opposing sync edge.
        let compose = node(pt.latest(), "compose order");
        let pack = node(pt.latest(), "pack goods");
        let confirm = node(pt.latest(), "confirm order");
        let (_, delta) = pt
            .evolve(&[ChangeOp::SerialInsert {
                activity: NewActivity::named("send questions"),
                pred: compose,
                succ: pack,
            }])
            .unwrap();
        let sq = pt.latest().node_by_name("send questions").unwrap().id;
        let mut pt2 = pt.clone();
        let (_, delta2) = pt2
            .evolve(&[ChangeOp::InsertSyncEdge {
                from: sq,
                to: confirm,
            }])
            .unwrap();
        // Combined ΔT (two evolution steps flattened for the check).
        let mut full_delta = delta.clone();
        for r in &delta2.ops {
            full_delta.push(r.clone());
        }

        let res = migrate_instance(
            &inst_schema,
            &ex_inst.blocks,
            pt2.latest(),
            &full_delta,
            &bias,
            &st,
            &MigrationOptions::default(),
        );
        match &res.verdict {
            Verdict::NotCompliant(c) => {
                assert_eq!(c.kind, ConflictKind::Structural, "{c}");
                assert!(
                    c.reason.contains("deadlock") || c.reason.contains("conflict"),
                    "{c}"
                );
            }
            v => panic!("expected structural conflict, got {v}"),
        }
    }

    #[test]
    fn biased_instance_with_disjoint_bias_migrates() {
        let mut pt = ProcessType::new(order()).unwrap();
        let v1 = pt.version(1).unwrap().clone();

        // Bias: ad-hoc insert right after start (disjoint from ΔT).
        let mut inst_schema = v1.clone();
        inst_schema.reserve_private_id_space();
        let get = node(&inst_schema, "get order");
        let collect = node(&inst_schema, "collect data");
        let mut bias = Delta::new();
        bias.push(
            apply_op(
                &mut inst_schema,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("check customer"),
                    pred: get,
                    succ: collect,
                },
            )
            .unwrap(),
        );
        let ex_inst = Execution::new(&inst_schema).unwrap();
        let mut st = ex_inst.init().unwrap();
        ex_inst.run(&mut st, &mut DefaultDriver, Some(1)).unwrap();

        let ops = fig1_ops(pt.latest());
        let (_, delta) = pt.evolve(&ops).unwrap();
        assert!(bias.disjoint_from(&delta));

        let res = migrate_instance(
            &inst_schema,
            &ex_inst.blocks,
            pt.latest(),
            &delta,
            &bias,
            &st,
            &MigrationOptions::default(),
        );
        assert!(res.verdict.is_compliant(), "{}", res.verdict);
        let target = res.materialized.expect("biased instances materialise");
        assert!(target.node_by_name("check customer").is_some());
        assert!(target.node_by_name("send questions").is_some());

        // The migrated instance finishes on the materialised schema.
        let ex2 = Execution::new(&target).unwrap();
        let mut st2 = res.adapted.unwrap();
        ex2.run(&mut st2, &mut DefaultDriver, None).unwrap();
        assert!(ex2.is_finished(&st2));
    }

    #[test]
    fn report_formats_like_fig3() {
        let mut report = MigrationReport {
            type_name: "online order".into(),
            from_version: 1,
            to_version: 2,
            outcomes: vec![],
        };
        report.push(InstanceOutcome {
            instance: InstanceId(1),
            biased: false,
            verdict: Verdict::Compliant,
        });
        report.push(InstanceOutcome {
            instance: InstanceId(2),
            biased: true,
            verdict: Verdict::conflict(ConflictKind::Structural, "deadlock-causing cycle"),
        });
        report.push(InstanceOutcome {
            instance: InstanceId(3),
            biased: false,
            verdict: Verdict::conflict(ConflictKind::State, "successor already completed"),
        });
        assert_eq!(report.migrated(), 1);
        assert_eq!(report.conflicts(ConflictKind::Structural), 1);
        assert_eq!(report.conflicts(ConflictKind::State), 1);
        assert_eq!(report.failed(), 2);
        let text = report.to_string();
        assert!(text.contains("V1 -> V2"));
        assert!(text.contains("I1: migrated to V2"));
        assert!(text.contains("I2 (ad-hoc modified): stays on V1"));
        assert!(text.contains("I3: stays on V1"));
        assert!(
            !text.contains("vanished") && !text.contains("internal"),
            "engine-level outcome kinds only appear when present: {text}"
        );
    }

    #[test]
    fn vanished_instances_are_not_structural_failures() {
        let mut report = MigrationReport {
            type_name: "online order".into(),
            from_version: 1,
            to_version: 2,
            outcomes: vec![],
        };
        report.push(InstanceOutcome {
            instance: InstanceId(1),
            biased: false,
            verdict: Verdict::Compliant,
        });
        report.push(InstanceOutcome {
            instance: InstanceId(2),
            biased: false,
            verdict: Verdict::conflict(
                ConflictKind::Vanished,
                "instance disappeared during migration",
            ),
        });
        report.push(InstanceOutcome {
            instance: InstanceId(3),
            biased: false,
            verdict: Verdict::conflict(ConflictKind::Internal, "migration worker panicked"),
        });
        assert_eq!(report.migrated(), 1);
        assert_eq!(report.vanished(), 1);
        assert_eq!(report.conflicts(ConflictKind::Internal), 1);
        assert_eq!(
            report.conflicts(ConflictKind::Structural),
            0,
            "not structural"
        );
        assert_eq!(report.failed(), 1, "vanished is not a failure, a panic is");
        let text = report.to_string();
        assert!(text.contains("1 vanished"), "{text}");
        assert!(text.contains("1 internal failures"), "{text}");
    }
}
