//! Deltas (change logs) and the bias algebra.
//!
//! A [`Delta`] is an ordered list of applied change operations. Two kinds
//! of deltas exist at runtime (paper Fig. 2):
//!
//! * **ΔT** — a process *type* change, transforming schema version `S`
//!   into `S'`;
//! * **bias ΔI** — the ad-hoc changes of one *instance*, kept as the
//!   instance's substitution data relative to its schema version.
//!
//! The interplay of the two (Sec. 2 of the paper) requires reasoning about
//! *overlap*: disjoint deltas commute and can be combined freely, while
//! overlapping deltas may exhibit structural or semantical conflicts that
//! the migration layer must detect.

use crate::ops::{AppliedOp, ChangeOp};
use adept_model::{DataId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An ordered list of applied change operations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Delta {
    /// The applied operations, in application order.
    pub ops: Vec<AppliedOp>,
}

impl Delta {
    /// An empty delta (an *unbiased* instance has an empty bias).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an applied operation.
    pub fn push(&mut self, rec: AppliedOp) {
        self.ops.push(rec);
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All nodes the delta *anchors on* (pre-change nodes it references).
    pub fn anchor_nodes(&self) -> BTreeSet<NodeId> {
        self.ops.iter().flat_map(|r| r.anchor_nodes()).collect()
    }

    /// All nodes the delta added.
    pub fn added_nodes(&self) -> BTreeSet<NodeId> {
        self.ops
            .iter()
            .flat_map(|r| r.added_nodes.iter().copied())
            .collect()
    }

    /// All nodes the delta removed or nullified.
    pub fn deleted_nodes(&self) -> BTreeSet<NodeId> {
        self.ops
            .iter()
            .flat_map(|r| {
                r.removed_nodes
                    .iter()
                    .copied()
                    .chain(r.nullified_nodes.iter().copied())
            })
            .collect()
    }

    /// All data elements the delta added.
    pub fn added_data(&self) -> BTreeSet<DataId> {
        self.ops
            .iter()
            .flat_map(|r| r.added_data.iter().copied())
            .collect()
    }

    /// Whether the two deltas are *disjoint*: they touch no common node.
    /// Disjoint deltas commute — applying them in either order yields the
    /// same schema — so a type change can always be combined with a
    /// disjoint instance bias (only state conditions remain to check).
    pub fn disjoint_from(&self, other: &Delta) -> bool {
        let mine: BTreeSet<NodeId> = self
            .anchor_nodes()
            .into_iter()
            .chain(self.deleted_nodes())
            .collect();
        let theirs: BTreeSet<NodeId> = other
            .anchor_nodes()
            .into_iter()
            .chain(other.deleted_nodes())
            .collect();
        mine.intersection(&theirs).next().is_none()
    }

    /// Purges no-op pairs: an insert whose activity is later deleted by the
    /// same delta cancels out (both operations disappear). This keeps
    /// biases — and therefore substitution blocks — *minimal*, as the paper
    /// requires ("for each biased instance we maintain a **minimal**
    /// substitution block").
    pub fn purge(&mut self) {
        loop {
            let mut cancel: Option<(usize, usize)> = None;
            'outer: for (i, ins) in self.ops.iter().enumerate() {
                let Some(inserted) = ins.inserted_activity() else {
                    continue;
                };
                for (j, del) in self.ops.iter().enumerate().skip(i + 1) {
                    if let ChangeOp::DeleteActivity { node } = &del.op {
                        // Only a *physical* removal cancels the insert; a
                        // null-replacement leaves a node behind that the
                        // delta must keep describing.
                        if *node == inserted && del.removed_nodes.contains(node) {
                            cancel = Some((i, j));
                            break 'outer;
                        }
                    }
                }
            }
            match cancel {
                Some((i, j)) => {
                    self.ops.remove(j);
                    self.ops.remove(i);
                }
                None => return,
            }
        }
    }

    /// A one-line summary for reports.
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return "unbiased".to_string();
        }
        self.ops
            .iter()
            .map(|r| r.op.name())
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// Approximate deep size in bytes of the delta representation (for the
    /// Fig. 2 storage experiments: this *is* the substitution block's
    /// logical payload).
    pub fn approx_size(&self) -> usize {
        use std::mem::size_of;
        let mut s = size_of::<Self>() + self.ops.capacity() * size_of::<AppliedOp>();
        for r in &self.ops {
            s += r.added_nodes.capacity() * size_of::<NodeId>();
            s += r.added_edges.capacity() * size_of::<adept_model::EdgeId>();
            s += r.removed_nodes.capacity() * size_of::<NodeId>();
            s += r.removed_edges.capacity() * size_of::<adept_model::EdgeId>();
            s += r.added_data.capacity() * size_of::<DataId>();
            s += r.nullified_nodes.capacity() * size_of::<NodeId>();
            if let ChangeOp::SerialInsert { activity, .. }
            | ChangeOp::ParallelInsert { activity, .. }
            | ChangeOp::BranchInsert { activity, .. } = &r.op
            {
                s += activity.name.capacity()
                    + activity.reads.capacity() * size_of::<DataId>()
                    + activity.optional_reads.capacity() * size_of::<DataId>()
                    + activity.writes.capacity() * size_of::<DataId>();
            }
        }
        s
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ[")?;
        for (i, r) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<AppliedOp> for Delta {
    fn from_iter<T: IntoIterator<Item = AppliedOp>>(iter: T) -> Self {
        Delta {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_op;
    use crate::ops::NewActivity;
    use adept_model::SchemaBuilder;

    fn base() -> adept_model::ProcessSchema {
        let mut b = SchemaBuilder::new("t");
        b.activity("a");
        b.activity("b");
        b.activity("c");
        b.build().unwrap()
    }

    #[test]
    fn disjointness() {
        let mut s1 = base();
        let a = s1.node_by_name("a").unwrap().id;
        let b = s1.node_by_name("b").unwrap().id;
        let c = s1.node_by_name("c").unwrap().id;
        let mut s2 = s1.clone();

        let d1: Delta = vec![apply_op(
            &mut s1,
            &crate::ops::ChangeOp::SerialInsert {
                activity: NewActivity::named("x"),
                pred: a,
                succ: b,
            },
        )
        .unwrap()]
        .into_iter()
        .collect();
        let d2: Delta = vec![apply_op(
            &mut s2,
            &crate::ops::ChangeOp::SerialInsert {
                activity: NewActivity::named("y"),
                pred: b,
                succ: c,
            },
        )
        .unwrap()]
        .into_iter()
        .collect();
        assert!(!d1.disjoint_from(&d2), "both anchor on b");

        let mut s3 = base();
        let start = s3.start_node();
        let a3 = s3.node_by_name("a").unwrap().id;
        let d3: Delta = vec![apply_op(
            &mut s3,
            &crate::ops::ChangeOp::SerialInsert {
                activity: NewActivity::named("z"),
                pred: start,
                succ: a3,
            },
        )
        .unwrap()]
        .into_iter()
        .collect();
        assert!(d2.disjoint_from(&d3));
    }

    #[test]
    fn purge_cancels_insert_delete_pairs() {
        let mut s = base();
        let a = s.node_by_name("a").unwrap().id;
        let b = s.node_by_name("b").unwrap().id;
        let mut delta = Delta::new();
        let rec = apply_op(
            &mut s,
            &crate::ops::ChangeOp::SerialInsert {
                activity: NewActivity::named("temp"),
                pred: a,
                succ: b,
            },
        )
        .unwrap();
        let x = rec.inserted_activity().unwrap();
        delta.push(rec);
        delta.push(apply_op(&mut s, &crate::ops::ChangeOp::DeleteActivity { node: x }).unwrap());
        assert_eq!(delta.len(), 2);
        delta.purge();
        assert!(delta.is_empty(), "insert+delete of same node is a no-op");
    }

    #[test]
    fn summary_and_display() {
        let d = Delta::new();
        assert_eq!(d.summary(), "unbiased");
        assert_eq!(d.to_string(), "Δ[]");
    }
}
