//! State adaptation: updating an instance's marking when its schema
//! changes.
//!
//! The paper (Sec. 2): *"efficient procedures exist for adapting the states
//! of instances when migrating them to the new schema (cf. Instance I1 in
//! Fig. 1)."* This module is those procedures: instead of re-deriving the
//! marking by replaying the (arbitrarily long) execution history on the new
//! schema, each change operation locally transfers edge/node states onto
//! the structures it created, and a single propagation sweep then settles
//! activations, silent-node auto-completions and dead paths.
//!
//! `prop_adaptation_matches_replay` in the integration suite verifies that
//! the incremental procedure produces exactly the marking that full replay
//! would.

use crate::delta::Delta;
use crate::error::ChangeError;
use crate::ops::{AppliedOp, ChangeOp};
use adept_model::{Blocks, ProcessSchema};
use adept_state::{EdgeState, Execution, InstanceState, NodeState};

/// Adapts `st`'s marking for all operations of `delta`, then lets the
/// regular execution semantics settle via one propagation sweep on the new
/// schema. The instance must already have been found *compliant* with the
/// delta; adaptation of non-compliant instances is meaningless.
///
/// `old_schema`/`old_blocks` describe the schema the instance's history was
/// recorded on. Almost all operations adapt *locally* (the efficient path
/// the paper claims); the exception is `moveActivity`, which can relocate
/// an activity upstream across an already-traversed silent region — there
/// the marking is re-derived by reduced-history replay, preserving loop
/// counters.
pub fn adapt_instance_state(
    old_schema: &ProcessSchema,
    old_blocks: &Blocks,
    new_ex: &Execution<'_>,
    delta: &Delta,
    st: &mut InstanceState,
) -> Result<(), ChangeError> {
    if delta
        .ops
        .iter()
        .any(|r| matches!(r.op, ChangeOp::MoveActivity { .. }))
    {
        let reduced = st.history.reduced(old_schema, old_blocks);
        let replayed = new_ex.replay(&reduced)?;
        let mut marking = replayed.marking;
        marking.copy_loop_counts_from(&st.marking);
        st.marking = marking;
        return Ok(());
    }
    for rec in &delta.ops {
        adapt_op(new_ex, rec, st);
    }
    new_ex.refresh(st)?;
    Ok(())
}

/// Rewinds the region behind an insertion point: compliance guarantees
/// that no *event-bearing* node behind it has entered execution, but
/// silent nodes (splits, joins, null tasks) may have auto-completed and
/// must return to `NotActivated` so the propagation sweep can re-derive
/// their state once the inserted activity completes. Exactly inverts what
/// the auto-completion sweep did: follows the signalled edges of rewound
/// nodes, demotes `Activated` frontier nodes, and stops at pending or
/// skipped nodes.
fn rewind_region(
    new_ex: &Execution<'_>,
    m: &mut adept_state::Marking,
    roots: &[adept_model::NodeId],
) {
    let mut stack: Vec<adept_model::NodeId> = roots.to_vec();
    let mut seen: std::collections::BTreeSet<adept_model::NodeId> = roots.iter().copied().collect();
    while let Some(n) = stack.pop() {
        match m.node(n) {
            NodeState::Activated => m.set_node(n, NodeState::NotActivated),
            NodeState::Completed => {
                m.set_node(n, NodeState::NotActivated);
                let out: Vec<(adept_model::EdgeId, adept_model::NodeId)> = new_ex
                    .schema
                    .out_edges(n)
                    .filter(|e| e.kind != adept_model::EdgeKind::Loop)
                    .map(|e| (e.id, e.to))
                    .collect();
                for (e, to) in out {
                    if m.edge(e).signaled() {
                        m.set_edge(e, EdgeState::NotSignaled);
                        if seen.insert(to) {
                            stack.push(to);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Local marking transfer for one applied operation (no propagation).
fn adapt_op(new_ex: &Execution<'_>, rec: &AppliedOp, st: &mut InstanceState) {
    let m = &mut st.marking;
    match &rec.op {
        ChangeOp::SerialInsert { succ, .. } | ChangeOp::BranchInsert { succ, .. } => {
            // The state of the replaced edge moves onto the entry edge of
            // the inserted structure. Only if that edge had already fired
            // (TrueSignaled) can silent nodes behind it have auto-completed
            // *because of it* — those are rewound so the new activity
            // re-gates them. Dead or unsignalled edges leave downstream
            // state untouched (it derives from other paths, if at all).
            let mut fired = false;
            if let (Some(old), Some(entry)) = (rec.removed_edges.first(), rec.added_edges.first()) {
                let s = m.edge(*old);
                fired = s == EdgeState::TrueSignaled;
                m.forget_edge(*old);
                m.set_edge(*entry, s);
            }
            if fired {
                rewind_region(new_ex, m, &[*succ]);
            }
        }
        ChangeOp::ParallelInsert { .. } => {
            // removed: [entry, exit]; added: [p->split, split->from,
            // split->x, x->join, to->join, join->succ].
            if let (Some(old_entry), Some(new_entry)) =
                (rec.removed_edges.first(), rec.added_edges.first())
            {
                let s = m.edge(*old_entry);
                m.forget_edge(*old_entry);
                m.set_edge(*new_entry, s);
            }
            let mut exit_fired = false;
            if let (Some(old_exit), Some(new_exit)) =
                (rec.removed_edges.get(1), rec.added_edges.get(4))
            {
                let s = m.edge(*old_exit);
                exit_fired = s == EdgeState::TrueSignaled;
                m.forget_edge(*old_exit);
                m.set_edge(*new_exit, s);
            }
            if exit_fired {
                if let Some(join_succ) = rec.added_edges.get(5) {
                    if let Ok(e) = new_ex.schema.edge(*join_succ) {
                        rewind_region(new_ex, m, &[e.to]);
                    }
                }
            }
        }
        ChangeOp::DeleteActivity { node } => {
            if rec.removed_nodes.contains(node) {
                // Physical removal: bridge inherits the incoming state.
                if let (Some(pin), Some(bridge)) =
                    (rec.removed_edges.first(), rec.added_edges.first())
                {
                    let s = m.edge(*pin);
                    m.set_edge(*bridge, s);
                }
                for e in &rec.removed_edges {
                    m.forget_edge(*e);
                }
                m.forget_node(*node);
            } else {
                // Null replacement: the node stays; if it was activated the
                // propagation sweep will auto-complete the silent node.
            }
        }
        ChangeOp::MoveActivity { node, .. } => {
            // removed: [pin, pout, target]; added: [bridge, pred->node,
            // node->succ].
            let s_pin = rec
                .removed_edges
                .first()
                .map(|e| m.edge(*e))
                .unwrap_or(EdgeState::NotSignaled);
            let s_target = rec
                .removed_edges
                .get(2)
                .map(|e| m.edge(*e))
                .unwrap_or(EdgeState::NotSignaled);
            for e in &rec.removed_edges {
                m.forget_edge(*e);
            }
            if let Some(bridge) = rec.added_edges.first() {
                m.set_edge(*bridge, s_pin);
            }
            if let Some(e1) = rec.added_edges.get(1) {
                m.set_edge(*e1, s_target);
            }
            // The moved node starts over at its new position: whatever
            // state its *old* location had (activated, or skipped inside a
            // dead region) is meaningless there — compliance guarantees it
            // never ran, so reset and let propagation re-derive the state
            // from the new incoming edges.
            if m.node(*node).pending() || m.node(*node) == NodeState::Skipped {
                m.set_node(*node, NodeState::NotActivated);
            }
            if let Some(e2) = rec.added_edges.get(2) {
                if let Ok(e) = new_ex.schema.edge(*e2) {
                    if m.node(e.to) == NodeState::Activated {
                        m.set_node(e.to, NodeState::NotActivated);
                    }
                }
            }
        }
        ChangeOp::InsertSyncEdge { from, to } => {
            if let Some(sync) = rec.added_edges.first() {
                let s = match m.node(*from) {
                    NodeState::Completed => EdgeState::TrueSignaled,
                    NodeState::Skipped => EdgeState::FalseSignaled,
                    _ => EdgeState::NotSignaled,
                };
                m.set_edge(*sync, s);
                if s == EdgeState::NotSignaled && m.node(*to) == NodeState::Activated {
                    // The target must now wait for the new constraint.
                    m.set_node(*to, NodeState::NotActivated);
                }
            }
        }
        ChangeOp::DeleteSyncEdge { .. } => {
            for e in &rec.removed_edges {
                m.forget_edge(*e);
            }
        }
        ChangeOp::AddDataElement { .. }
        | ChangeOp::AddDataEdge { .. }
        | ChangeOp::RemoveDataEdge { .. }
        | ChangeOp::SetActivityAttributes { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_op;
    use crate::ops::NewActivity;
    use adept_model::{NodeId, ProcessSchema, SchemaBuilder};
    use adept_state::DefaultDriver;

    fn order() -> ProcessSchema {
        let mut b = SchemaBuilder::new("order");
        b.activity("get order");
        b.activity("collect data");
        b.and_split();
        b.branch();
        b.activity("confirm order");
        b.branch();
        b.activity("compose order");
        b.activity("pack goods");
        b.and_join();
        b.activity("deliver goods");
        b.build().unwrap()
    }

    fn node(s: &ProcessSchema, name: &str) -> NodeId {
        s.node_by_name(name).unwrap().id
    }

    /// Adaptation must equal replay-derived marking (spot check; the
    /// integration suite property-tests this broadly).
    #[test]
    fn adaptation_matches_replay_for_fig1_migration() {
        let s_old = order();
        let ex_old = Execution::new(&s_old).unwrap();

        for progress in 0..=2 {
            let mut st = ex_old.init().unwrap();
            ex_old
                .run(&mut st, &mut DefaultDriver, Some(progress))
                .unwrap();

            let mut s_new = s_old.clone();
            let compose = node(&s_new, "compose order");
            let pack = node(&s_new, "pack goods");
            let confirm = node(&s_new, "confirm order");
            let rec1 = apply_op(
                &mut s_new,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("send questions"),
                    pred: compose,
                    succ: pack,
                },
            )
            .unwrap();
            let sq = rec1.inserted_activity().unwrap();
            let rec2 = apply_op(
                &mut s_new,
                &ChangeOp::InsertSyncEdge {
                    from: sq,
                    to: confirm,
                },
            )
            .unwrap();
            let delta: Delta = vec![rec1, rec2].into_iter().collect();

            let ex_new = Execution::new(&s_new).unwrap();
            let mut adapted = st.clone();
            adapt_instance_state(&s_old, &ex_old.blocks, &ex_new, &delta, &mut adapted).unwrap();

            let reduced = st.history.reduced(&s_old, &ex_old.blocks);
            let replayed = ex_new.replay(&reduced).unwrap();
            assert!(
                adapted.marking.same_states(&replayed.marking),
                "progress={progress}:\n  adapted : {}\n  replayed: {}",
                adapted.marking,
                replayed.marking
            );
        }
    }

    #[test]
    fn inserted_activity_becomes_activated_when_region_is_live() {
        // Instance sits between "compose order" (done) and "pack goods"
        // (activated): inserting between them must activate the new
        // activity and demote pack goods.
        let s_old = order();
        let ex_old = Execution::new(&s_old).unwrap();
        let mut st = ex_old.init().unwrap();
        // run: get order, collect data, confirm order?, compose order...
        // DefaultDriver picks by id order: get order, collect data, then
        // the two parallel heads in id order.
        ex_old.run(&mut st, &mut DefaultDriver, Some(4)).unwrap();
        let pack = node(&s_old, "pack goods");
        assert_eq!(st.marking.node(pack), NodeState::Activated);

        let mut s_new = s_old.clone();
        let compose = node(&s_new, "compose order");
        let rec = apply_op(
            &mut s_new,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("send questions"),
                pred: compose,
                succ: pack,
            },
        )
        .unwrap();
        let sq = rec.inserted_activity().unwrap();
        let delta: Delta = vec![rec].into_iter().collect();
        let ex_new = Execution::new(&s_new).unwrap();
        let mut adapted = st.clone();
        adapt_instance_state(&s_old, &ex_old.blocks, &ex_new, &delta, &mut adapted).unwrap();
        assert_eq!(adapted.marking.node(sq), NodeState::Activated);
        assert_eq!(adapted.marking.node(pack), NodeState::NotActivated);
    }

    #[test]
    fn delete_bridges_state_forward() {
        let mut b = SchemaBuilder::new("seq");
        let a = b.activity("a");
        let c = b.activity("c");
        let d = b.activity("d");
        let s_old = b.build().unwrap();
        let ex_old = Execution::new(&s_old).unwrap();
        let mut st = ex_old.init().unwrap();
        ex_old.run(&mut st, &mut DefaultDriver, Some(1)).unwrap(); // a done
        assert_eq!(st.marking.node(c), NodeState::Activated);

        let mut s_new = s_old.clone();
        let rec = apply_op(&mut s_new, &ChangeOp::DeleteActivity { node: c }).unwrap();
        let delta: Delta = vec![rec].into_iter().collect();
        let ex_new = Execution::new(&s_new).unwrap();
        let mut adapted = st.clone();
        adapt_instance_state(&s_old, &ex_old.blocks, &ex_new, &delta, &mut adapted).unwrap();
        // After deleting the activated c, d must be activated instead.
        assert_eq!(adapted.marking.node(d), NodeState::Activated);
        let _ = a;
    }

    #[test]
    fn sync_edge_from_completed_source_is_true_signaled() {
        let mut b = SchemaBuilder::new("par");
        b.and_split();
        b.branch();
        let first = b.activity("first");
        b.branch();
        let second = b.activity("second");
        b.and_join();
        let s_old = b.build().unwrap();
        let ex_old = Execution::new(&s_old).unwrap();
        let mut st = ex_old.init().unwrap();
        // Complete `first` only.
        ex_old.start_activity(&mut st, first).unwrap();
        ex_old.complete_activity(&mut st, first, vec![]).unwrap();

        let mut s_new = s_old.clone();
        let rec = apply_op(
            &mut s_new,
            &ChangeOp::InsertSyncEdge {
                from: first,
                to: second,
            },
        )
        .unwrap();
        let sync_edge = rec.added_edges[0];
        let delta: Delta = vec![rec].into_iter().collect();
        let ex_new = Execution::new(&s_new).unwrap();
        let mut adapted = st.clone();
        adapt_instance_state(&s_old, &ex_old.blocks, &ex_new, &delta, &mut adapted).unwrap();
        assert_eq!(adapted.marking.edge(sync_edge), EdgeState::TrueSignaled);
        assert_eq!(adapted.marking.node(second), NodeState::Activated);
    }
}
