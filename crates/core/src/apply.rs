//! Applying change operations to schemas.
//!
//! [`apply_op`] checks the operation's structural preconditions, transforms
//! a *copy* of the schema, re-runs the full buildtime verification as the
//! postcondition, and only then commits — applying a change can therefore
//! never leave a corrupt schema behind, which is the paper's central
//! robustness guarantee for dynamic changes.
//!
//! [`apply_recorded`] re-applies an [`AppliedOp`] *with its recorded ids*.
//! This is how a biased instance's ad-hoc changes are transplanted onto a
//! new schema version during migration: because instance-level changes
//! allocate ids in the private id space
//! ([`ProcessSchema::PRIVATE_ID_BASE`]), the recorded ids are always free
//! on the evolved type schema and the instance's marking and history remain
//! valid without any re-mapping.

use crate::error::ChangeError;
use crate::ops::{AppliedOp, ChangeOp, NewActivity};
use adept_model::graph::{self, EdgeFilter};
use adept_model::{
    AccessMode, Blocks, DataEdge, Edge, EdgeId, EdgeKind, NodeId, NodeKind, ProcessSchema,
};
use adept_verify::verify_schema;

/// Applies a change operation with full pre-/post-condition checking.
///
/// On success the schema is updated in place and the application record is
/// returned; on failure the schema is untouched.
pub fn apply_op(schema: &mut ProcessSchema, op: &ChangeOp) -> Result<AppliedOp, ChangeError> {
    let mut copy = schema.clone();
    let rec = apply_raw(&mut copy, op)?;
    let report = verify_schema(&copy);
    if !report.is_correct() {
        let msgs: Vec<String> = report.errors().map(|i| i.to_string()).collect();
        return Err(ChangeError::PostconditionViolated(msgs.join("; ")));
    }
    *schema = copy;
    Ok(rec)
}

/// Applies a change operation without the (comparatively expensive)
/// postcondition verification. Used in hot paths after the same operation
/// has already been validated once at the type level.
pub fn apply_op_unverified(
    schema: &mut ProcessSchema,
    op: &ChangeOp,
) -> Result<AppliedOp, ChangeError> {
    let mut copy = schema.clone();
    let rec = apply_raw(&mut copy, op)?;
    *schema = copy;
    Ok(rec)
}

/// Re-applies a recorded operation using the exact ids of the original
/// application (see module docs). Fails if the anchors no longer exist or
/// any recorded id is already taken — which the migration layer reports as
/// a *structural conflict* between the type change and the instance bias.
pub fn apply_recorded(schema: &mut ProcessSchema, rec: &AppliedOp) -> Result<(), ChangeError> {
    let mut copy = schema.clone();
    replay_raw(&mut copy, rec)?;
    *schema = copy;
    Ok(())
}

// ----------------------------------------------------------------------
// Fresh application
// ----------------------------------------------------------------------

fn apply_raw(schema: &mut ProcessSchema, op: &ChangeOp) -> Result<AppliedOp, ChangeError> {
    match op {
        ChangeOp::SerialInsert {
            activity,
            pred,
            succ,
        } => serial_insert(schema, op, activity, *pred, *succ, None),
        ChangeOp::ParallelInsert { activity, from, to } => {
            parallel_insert(schema, op, activity, *from, *to, None)
        }
        ChangeOp::BranchInsert {
            activity,
            pred,
            succ,
            guard,
        } => branch_insert(schema, op, activity, *pred, *succ, guard.clone(), None),
        ChangeOp::DeleteActivity { node } => delete_activity(schema, op, *node),
        ChangeOp::MoveActivity { node, pred, succ } => {
            move_activity(schema, op, *node, *pred, *succ)
        }
        ChangeOp::InsertSyncEdge { from, to } => insert_sync_edge(schema, op, *from, *to, None),
        ChangeOp::DeleteSyncEdge { from, to } => delete_sync_edge(schema, op, *from, *to),
        ChangeOp::AddDataElement { name, ty } => {
            let d = schema.add_data(name.clone(), *ty);
            let mut rec = AppliedOp::plain(op.clone());
            rec.added_data.push(d);
            Ok(rec)
        }
        ChangeOp::AddDataEdge {
            node,
            data,
            mode,
            optional,
        } => {
            require_activity(schema, *node)?;
            schema.data_element(*data)?;
            let de = match (mode, optional) {
                (AccessMode::Read, false) => DataEdge::read(*node, *data),
                (AccessMode::Read, true) => DataEdge::optional_read(*node, *data),
                (AccessMode::Write, _) => DataEdge::write(*node, *data),
            };
            schema.add_data_edge(de)?;
            Ok(AppliedOp::plain(op.clone()))
        }
        ChangeOp::RemoveDataEdge { node, data, mode } => {
            schema.remove_data_edge(*node, *data, *mode)?;
            Ok(AppliedOp::plain(op.clone()))
        }
        ChangeOp::SetActivityAttributes { node, attrs } => {
            require_activity(schema, *node)?;
            schema.node_mut(*node)?.attrs = attrs.clone();
            Ok(AppliedOp::plain(op.clone()))
        }
    }
}

/// Forced-id application: `ids` supplies the node/edge/data ids to use, in
/// the same order `apply_raw` allocated them originally.
struct ForcedIds<'a> {
    nodes: &'a [NodeId],
    edges: &'a [EdgeId],
    next_node: usize,
    next_edge: usize,
}

impl<'a> ForcedIds<'a> {
    fn new(rec: &'a AppliedOp) -> Self {
        Self {
            nodes: &rec.added_nodes,
            edges: &rec.added_edges,
            next_node: 0,
            next_edge: 0,
        }
    }
}

/// Allocates a node either freshly or at the next recorded id.
fn alloc_node(
    schema: &mut ProcessSchema,
    forced: &mut Option<&mut ForcedIds<'_>>,
    name: &str,
    kind: NodeKind,
) -> Result<NodeId, ChangeError> {
    match forced {
        None => Ok(schema.add_node(name, kind)),
        Some(f) => {
            let id = *f
                .nodes
                .get(f.next_node)
                .ok_or_else(|| ChangeError::Precondition("recorded node ids exhausted".into()))?;
            f.next_node += 1;
            Ok(schema.add_node_at(id, name, kind)?)
        }
    }
}

/// Adds an edge either freshly or at the next recorded id.
fn alloc_edge(
    schema: &mut ProcessSchema,
    forced: &mut Option<&mut ForcedIds<'_>>,
    e: Edge,
) -> Result<EdgeId, ChangeError> {
    match forced {
        None => match e.kind {
            EdgeKind::Control => Ok(schema.add_guarded_edge(e.from, e.to, e.guard)?),
            EdgeKind::Sync => Ok(schema.add_sync_edge(e.from, e.to)?),
            EdgeKind::Loop => Ok(schema.add_loop_edge(
                e.from,
                e.to,
                e.loop_cond.ok_or_else(|| {
                    ChangeError::Precondition("loop edge without condition".into())
                })?,
            )?),
        },
        Some(f) => {
            let id = *f
                .edges
                .get(f.next_edge)
                .ok_or_else(|| ChangeError::Precondition("recorded edge ids exhausted".into()))?;
            f.next_edge += 1;
            Ok(schema.add_edge_at(id, e)?)
        }
    }
}

fn replay_raw(schema: &mut ProcessSchema, rec: &AppliedOp) -> Result<(), ChangeError> {
    let mut forced = ForcedIds::new(rec);
    match &rec.op {
        ChangeOp::SerialInsert {
            activity,
            pred,
            succ,
        } => {
            serial_insert(schema, &rec.op, activity, *pred, *succ, Some(&mut forced))?;
        }
        ChangeOp::ParallelInsert { activity, from, to } => {
            parallel_insert(schema, &rec.op, activity, *from, *to, Some(&mut forced))?;
        }
        ChangeOp::BranchInsert {
            activity,
            pred,
            succ,
            guard,
        } => {
            branch_insert(
                schema,
                &rec.op,
                activity,
                *pred,
                *succ,
                guard.clone(),
                Some(&mut forced),
            )?;
        }
        ChangeOp::InsertSyncEdge { from, to } => {
            insert_sync_edge(schema, &rec.op, *from, *to, Some(&mut forced))?;
        }
        // Operations that allocate no graph ids (or whose removals are
        // id-independent) re-apply through the ordinary path.
        ChangeOp::AddDataElement { name, ty } => {
            let want = *rec
                .added_data
                .first()
                .ok_or_else(|| ChangeError::Precondition("recorded data id missing".into()))?;
            schema.add_data_at(want, name.clone(), *ty)?;
        }
        other => {
            apply_raw(schema, other)?;
        }
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Individual operations
// ----------------------------------------------------------------------

fn require_activity(schema: &ProcessSchema, n: NodeId) -> Result<(), ChangeError> {
    let node = schema.node(n)?;
    if node.kind != NodeKind::Activity {
        return Err(ChangeError::Precondition(format!(
            "{n} is a {} node, not an activity",
            node.kind
        )));
    }
    Ok(())
}

fn attach_data_edges(
    schema: &mut ProcessSchema,
    node: NodeId,
    activity: &NewActivity,
) -> Result<(), ChangeError> {
    for d in &activity.reads {
        schema.data_element(*d)?;
        schema.add_data_edge(DataEdge::read(node, *d))?;
    }
    for d in &activity.optional_reads {
        schema.data_element(*d)?;
        schema.add_data_edge(DataEdge::optional_read(node, *d))?;
    }
    for d in &activity.writes {
        schema.data_element(*d)?;
        schema.add_data_edge(DataEdge::write(node, *d))?;
    }
    Ok(())
}

fn control_edge_between(
    schema: &ProcessSchema,
    pred: NodeId,
    succ: NodeId,
) -> Result<EdgeId, ChangeError> {
    schema
        .edge_between(pred, succ, EdgeKind::Control)
        .map(|e| e.id)
        .ok_or_else(|| {
            ChangeError::Precondition(format!("no control edge between {pred} and {succ}"))
        })
}

fn serial_insert(
    schema: &mut ProcessSchema,
    op: &ChangeOp,
    activity: &NewActivity,
    pred: NodeId,
    succ: NodeId,
    mut forced: Option<&mut ForcedIds<'_>>,
) -> Result<AppliedOp, ChangeError> {
    let old_edge_id = control_edge_between(schema, pred, succ)?;
    let old = schema.remove_edge(old_edge_id)?;
    let x = alloc_node(schema, &mut forced, &activity.name, NodeKind::Activity)?;
    schema.node_mut(x)?.attrs = activity.attrs.clone();
    let mut e1 = Edge::control(EdgeId(0), pred, x);
    e1.guard = old.guard.clone(); // preserve an XOR branch guard
    let e1 = alloc_edge(schema, &mut forced, e1)?;
    let e2 = alloc_edge(schema, &mut forced, Edge::control(EdgeId(0), x, succ))?;
    attach_data_edges(schema, x, activity)?;
    let mut rec = AppliedOp::plain(op.clone());
    rec.added_nodes.push(x);
    rec.added_edges.extend([e1, e2]);
    rec.removed_edges.push(old_edge_id);
    Ok(rec)
}

fn branch_insert(
    schema: &mut ProcessSchema,
    op: &ChangeOp,
    activity: &NewActivity,
    pred: NodeId,
    succ: NodeId,
    guard: Option<adept_model::Guard>,
    mut forced: Option<&mut ForcedIds<'_>>,
) -> Result<AppliedOp, ChangeError> {
    let old_edge_id = control_edge_between(schema, pred, succ)?;
    let old = schema.remove_edge(old_edge_id)?;
    let split = alloc_node(schema, &mut forced, "xor-split", NodeKind::XorSplit)?;
    let x = alloc_node(schema, &mut forced, &activity.name, NodeKind::Activity)?;
    let join = alloc_node(schema, &mut forced, "xor-join", NodeKind::XorJoin)?;
    schema.node_mut(x)?.attrs = activity.attrs.clone();
    let mut entry = Edge::control(EdgeId(0), pred, split);
    entry.guard = old.guard.clone();
    let entry = alloc_edge(schema, &mut forced, entry)?;
    let mut to_x = Edge::control(EdgeId(0), split, x);
    to_x.guard = guard;
    let to_x = alloc_edge(schema, &mut forced, to_x)?;
    let x_join = alloc_edge(schema, &mut forced, Edge::control(EdgeId(0), x, join))?;
    let else_edge = alloc_edge(schema, &mut forced, Edge::control(EdgeId(0), split, join))?;
    let exit = alloc_edge(schema, &mut forced, Edge::control(EdgeId(0), join, succ))?;
    attach_data_edges(schema, x, activity)?;
    let mut rec = AppliedOp::plain(op.clone());
    rec.added_nodes.extend([x, split, join]);
    rec.added_edges
        .extend([entry, to_x, x_join, else_edge, exit]);
    rec.removed_edges.push(old_edge_id);
    Ok(rec)
}

fn parallel_insert(
    schema: &mut ProcessSchema,
    op: &ChangeOp,
    activity: &NewActivity,
    from: NodeId,
    to: NodeId,
    mut forced: Option<&mut ForcedIds<'_>>,
) -> Result<AppliedOp, ChangeError> {
    schema.node(from)?;
    schema.node(to)?;
    let pred = schema.sole_control_predecessor(from).ok_or_else(|| {
        ChangeError::Precondition(format!("{from} must have exactly one control predecessor"))
    })?;
    let succ = schema.sole_control_successor(to).ok_or_else(|| {
        ChangeError::Precondition(format!("{to} must have exactly one control successor"))
    })?;
    // The region from..to must be single-entry/single-exit over control
    // edges: compute it and check its boundary.
    let fwd = graph::reachable_from(schema, from, EdgeFilter::CONTROL);
    let back = graph::reaching_to(schema, to, EdgeFilter::CONTROL);
    let region: std::collections::BTreeSet<NodeId> = fwd.intersection(&back).copied().collect();
    if !region.contains(&from) || !region.contains(&to) {
        return Err(ChangeError::Precondition(format!(
            "{to} is not reachable from {from}"
        )));
    }
    for e in schema.edges().filter(|e| e.kind == EdgeKind::Control) {
        let enters = !region.contains(&e.from) && region.contains(&e.to);
        let leaves = region.contains(&e.from) && !region.contains(&e.to);
        if enters && !(e.from == pred && e.to == from) {
            return Err(ChangeError::Precondition(format!(
                "region {from}..{to} has a second entry edge {e}"
            )));
        }
        if leaves && !(e.from == to && e.to == succ) {
            return Err(ChangeError::Precondition(format!(
                "region {from}..{to} has a second exit edge {e}"
            )));
        }
    }

    let entry_id = control_edge_between(schema, pred, from)?;
    let exit_id = control_edge_between(schema, to, succ)?;
    let entry_old = schema.remove_edge(entry_id)?;
    let _exit_old = schema.remove_edge(exit_id)?;

    let split = alloc_node(schema, &mut forced, "and-split", NodeKind::AndSplit)?;
    let x = alloc_node(schema, &mut forced, &activity.name, NodeKind::Activity)?;
    let join = alloc_node(schema, &mut forced, "and-join", NodeKind::AndJoin)?;
    schema.node_mut(x)?.attrs = activity.attrs.clone();
    let mut e_p_split = Edge::control(EdgeId(0), pred, split);
    e_p_split.guard = entry_old.guard.clone();
    let e_p_split = alloc_edge(schema, &mut forced, e_p_split)?;
    let e_split_from = alloc_edge(schema, &mut forced, Edge::control(EdgeId(0), split, from))?;
    let e_split_x = alloc_edge(schema, &mut forced, Edge::control(EdgeId(0), split, x))?;
    let e_x_join = alloc_edge(schema, &mut forced, Edge::control(EdgeId(0), x, join))?;
    let e_to_join = alloc_edge(schema, &mut forced, Edge::control(EdgeId(0), to, join))?;
    let e_join_succ = alloc_edge(schema, &mut forced, Edge::control(EdgeId(0), join, succ))?;
    attach_data_edges(schema, x, activity)?;

    let mut rec = AppliedOp::plain(op.clone());
    rec.added_nodes.extend([x, split, join]);
    rec.added_edges.extend([
        e_p_split,
        e_split_from,
        e_split_x,
        e_x_join,
        e_to_join,
        e_join_succ,
    ]);
    rec.removed_edges.extend([entry_id, exit_id]);
    Ok(rec)
}

fn delete_activity(
    schema: &mut ProcessSchema,
    op: &ChangeOp,
    node: NodeId,
) -> Result<AppliedOp, ChangeError> {
    let kind = schema.node(node)?.kind;
    if !matches!(kind, NodeKind::Activity | NodeKind::Null) {
        return Err(ChangeError::Precondition(format!(
            "{node} is a {kind} node; only activities can be deleted"
        )));
    }
    let cin: Vec<EdgeId> = schema
        .in_edges_kind(node, EdgeKind::Control)
        .map(|e| e.id)
        .collect();
    let cout: Vec<EdgeId> = schema
        .out_edges_kind(node, EdgeKind::Control)
        .map(|e| e.id)
        .collect();
    let has_sync = schema.in_edges_kind(node, EdgeKind::Sync).next().is_some()
        || schema.out_edges_kind(node, EdgeKind::Sync).next().is_some();

    let mut rec = AppliedOp::plain(op.clone());
    if cin.len() == 1 && cout.len() == 1 && !has_sync {
        let pin = schema.edge(cin[0])?.clone();
        let pout = schema.edge(cout[0])?.clone();
        // Physical removal is only possible if the bridge edge does not
        // already exist (e.g. the deleted node sat parallel to an empty
        // XOR branch) — and never for the head of an XOR branch: recorded
        // branch decisions (`XorChosen`) reference the head node, and
        // replacing it by a silent null task (ADEPT's "empty activity")
        // keeps those decisions resolvable during compliance replay.
        let is_xor_branch_head = schema.node(pin.from).map(|n| n.kind) == Ok(NodeKind::XorSplit);
        if schema
            .edge_between(pin.from, pout.to, EdgeKind::Control)
            .is_none()
            && pin.from != pout.to
            && !is_xor_branch_head
        {
            schema.remove_edge(pin.id)?;
            schema.remove_edge(pout.id)?;
            let removed = schema.remove_node(node)?;
            let mut bridge = Edge::control(EdgeId(0), pin.from, pout.to);
            bridge.guard = pin.guard.clone();
            let bridge = schema.add_guarded_edge(pin.from, pout.to, bridge.guard)?;
            let _ = removed;
            rec.removed_nodes.push(node);
            rec.removed_edges.extend([pin.id, pout.id]);
            rec.added_edges.push(bridge);
            return Ok(rec);
        }
    }
    // Null replacement: keep the node and its edges, silence it.
    let data_edges: Vec<DataEdge> = schema.data_edges_of(node).cloned().collect();
    for de in data_edges {
        schema.remove_data_edge(de.node, de.data, de.mode)?;
    }
    let n = schema.node_mut(node)?;
    n.kind = NodeKind::Null;
    rec.nullified_nodes.push(node);
    Ok(rec)
}

fn move_activity(
    schema: &mut ProcessSchema,
    op: &ChangeOp,
    node: NodeId,
    pred: NodeId,
    succ: NodeId,
) -> Result<AppliedOp, ChangeError> {
    require_activity(schema, node)?;
    if node == pred || node == succ {
        return Err(ChangeError::Precondition(
            "cannot move an activity next to itself".into(),
        ));
    }
    let cin: Vec<EdgeId> = schema
        .in_edges_kind(node, EdgeKind::Control)
        .map(|e| e.id)
        .collect();
    let cout: Vec<EdgeId> = schema
        .out_edges_kind(node, EdgeKind::Control)
        .map(|e| e.id)
        .collect();
    if cin.len() != 1 || cout.len() != 1 {
        return Err(ChangeError::Precondition(format!(
            "{node} is not serial (1 in / 1 out control edge) and cannot be moved"
        )));
    }
    let has_sync = schema.in_edges_kind(node, EdgeKind::Sync).next().is_some()
        || schema.out_edges_kind(node, EdgeKind::Sync).next().is_some();
    if has_sync {
        return Err(ChangeError::Precondition(format!(
            "{node} has sync edges; delete them before moving"
        )));
    }
    // Moving the head of an XOR branch away would orphan recorded branch
    // decisions that reference it (see delete_activity): refuse.
    if let Some(p) = schema.sole_control_predecessor(node) {
        if schema.node(p)?.kind == NodeKind::XorSplit {
            return Err(ChangeError::Precondition(format!(
                "{node} heads an XOR branch; branch decisions may reference it — delete + insert instead"
            )));
        }
    }
    let target_edge = control_edge_between(schema, pred, succ)?;
    let pin = schema.edge(cin[0])?.clone();
    let pout = schema.edge(cout[0])?.clone();
    if schema
        .edge_between(pin.from, pout.to, EdgeKind::Control)
        .is_some()
        || pin.from == pout.to
    {
        return Err(ChangeError::Precondition(format!(
            "removing {node} from its current position would duplicate an edge"
        )));
    }

    let mut rec = AppliedOp::plain(op.clone());
    // Detach from the old position.
    schema.remove_edge(pin.id)?;
    schema.remove_edge(pout.id)?;
    let bridge = schema.add_guarded_edge(pin.from, pout.to, pin.guard.clone())?;
    // Re-attach between pred and succ.
    let old = schema.remove_edge(target_edge)?;
    let mut e1 = Edge::control(EdgeId(0), pred, node);
    e1.guard = old.guard.clone();
    let e1 = schema.add_guarded_edge(pred, node, e1.guard)?;
    let e2 = schema.add_control_edge(node, succ)?;
    rec.removed_edges.extend([pin.id, pout.id, target_edge]);
    rec.added_edges.extend([bridge, e1, e2]);
    Ok(rec)
}

fn insert_sync_edge(
    schema: &mut ProcessSchema,
    op: &ChangeOp,
    from: NodeId,
    to: NodeId,
    mut forced: Option<&mut ForcedIds<'_>>,
) -> Result<AppliedOp, ChangeError> {
    schema.node(from)?;
    schema.node(to)?;
    if from == to {
        return Err(ChangeError::Precondition(
            "sync edge cannot be a self loop".into(),
        ));
    }
    let blocks = Blocks::analyze(schema)
        .map_err(|e| ChangeError::Precondition(format!("block analysis failed: {e}")))?;
    if blocks.parallel_separator(from, to).is_none() {
        return Err(ChangeError::Precondition(format!(
            "{from} and {to} are not in different branches of one parallel block"
        )));
    }
    if !blocks.same_loop_context(from, to) {
        return Err(ChangeError::Precondition(format!(
            "sync edge {from} -> {to} would cross a loop boundary"
        )));
    }
    // A path to -> from over control+sync edges means the new edge closes a
    // deadlock-causing cycle (paper Fig. 1, instance I2).
    if graph::path_exists(schema, to, from, EdgeFilter::CONTROL_SYNC) {
        return Err(ChangeError::Precondition(format!(
            "sync edge {from} -> {to} would create a deadlock-causing cycle"
        )));
    }
    let e = alloc_edge(schema, &mut forced, Edge::sync(EdgeId(0), from, to))?;
    let mut rec = AppliedOp::plain(op.clone());
    rec.added_edges.push(e);
    Ok(rec)
}

fn delete_sync_edge(
    schema: &mut ProcessSchema,
    op: &ChangeOp,
    from: NodeId,
    to: NodeId,
) -> Result<AppliedOp, ChangeError> {
    let e = schema
        .edge_between(from, to, EdgeKind::Sync)
        .map(|e| e.id)
        .ok_or_else(|| {
            ChangeError::Precondition(format!("no sync edge between {from} and {to}"))
        })?;
    schema.remove_edge(e)?;
    let mut rec = AppliedOp::plain(op.clone());
    rec.removed_edges.push(e);
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_model::{SchemaBuilder, ValueType};
    use adept_verify::is_correct;

    /// The paper's order process: get order -> collect data ->
    /// AND(confirm order | compose order -> pack goods) -> deliver goods.
    fn order_process() -> ProcessSchema {
        let mut b = SchemaBuilder::new("order");
        b.activity("get order");
        b.activity("collect data");
        b.and_split();
        b.branch();
        b.activity("confirm order");
        b.branch();
        b.activity("compose order");
        b.activity("pack goods");
        b.and_join();
        b.activity("deliver goods");
        b.build().unwrap()
    }

    fn node(s: &ProcessSchema, name: &str) -> NodeId {
        s.node_by_name(name).unwrap().id
    }

    #[test]
    fn fig1_type_change_applies() {
        // ΔT = addActivity(send questions, compose order, pack goods) +
        //      insertSyncEdge(send questions, confirm order)
        let mut s = order_process();
        let compose = node(&s, "compose order");
        let pack = node(&s, "pack goods");
        let confirm = node(&s, "confirm order");
        let rec1 = apply_op(
            &mut s,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("send questions"),
                pred: compose,
                succ: pack,
            },
        )
        .unwrap();
        let sq = rec1.inserted_activity().unwrap();
        apply_op(
            &mut s,
            &ChangeOp::InsertSyncEdge {
                from: sq,
                to: confirm,
            },
        )
        .unwrap();
        assert!(is_correct(&s));
        assert_eq!(s.sync_edges().count(), 1);
        assert_eq!(s.sole_control_successor(compose), Some(sq));
    }

    #[test]
    fn opposing_sync_edge_rejected_as_deadlock() {
        // The I2 conflict: an instance-level sync edge confirm -> compose
        // plus the type-level sync send questions -> confirm would form a
        // wait-for cycle confirm -> compose -> send questions -> confirm.
        let mut s = order_process();
        let confirm = node(&s, "confirm order");
        let pack = node(&s, "pack goods");
        let compose = node(&s, "compose order");
        apply_op(
            &mut s,
            &ChangeOp::InsertSyncEdge {
                from: confirm,
                to: compose,
            },
        )
        .unwrap();
        let rec = apply_op(
            &mut s,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("send questions"),
                pred: compose,
                succ: pack,
            },
        )
        .unwrap();
        let sq = rec.inserted_activity().unwrap();
        let err = apply_op(
            &mut s,
            &ChangeOp::InsertSyncEdge {
                from: sq,
                to: confirm,
            },
        )
        .unwrap_err();
        assert!(matches!(err, ChangeError::Precondition(_)), "{err}");
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn serial_insert_requires_adjacent_nodes() {
        let mut s = order_process();
        let get = node(&s, "get order");
        let deliver = node(&s, "deliver goods");
        let err = apply_op(
            &mut s,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("x"),
                pred: get,
                succ: deliver,
            },
        )
        .unwrap_err();
        assert!(matches!(err, ChangeError::Precondition(_)));
    }

    #[test]
    fn delete_serial_activity_removes_node() {
        let mut s = order_process();
        let pack = node(&s, "pack goods");
        let compose = node(&s, "compose order");
        let rec = apply_op(&mut s, &ChangeOp::DeleteActivity { node: pack }).unwrap();
        assert!(rec.removed_nodes.contains(&pack));
        assert!(!s.has_node(pack));
        assert!(is_correct(&s));
        // compose order now connects to the and-join directly.
        assert_eq!(s.control_successors(compose).count(), 1);
    }

    #[test]
    fn delete_with_sync_edge_nullifies() {
        let mut s = order_process();
        let confirm = node(&s, "confirm order");
        let pack = node(&s, "pack goods");
        apply_op(
            &mut s,
            &ChangeOp::InsertSyncEdge {
                from: confirm,
                to: pack,
            },
        )
        .unwrap();
        let rec = apply_op(&mut s, &ChangeOp::DeleteActivity { node: confirm }).unwrap();
        assert!(rec.nullified_nodes.contains(&confirm));
        assert!(s.has_node(confirm));
        assert_eq!(s.node(confirm).unwrap().kind, NodeKind::Null);
        assert!(is_correct(&s));
    }

    #[test]
    fn delete_rejects_non_activity() {
        let mut s = order_process();
        let split = s.nodes().find(|n| n.kind == NodeKind::AndSplit).unwrap().id;
        assert!(apply_op(&mut s, &ChangeOp::DeleteActivity { node: split }).is_err());
    }

    #[test]
    fn move_activity_relocates() {
        let mut s = order_process();
        let confirm = node(&s, "confirm order");
        let compose = node(&s, "compose order");
        let pack = node(&s, "pack goods");
        // Move "confirm order" between compose and pack: its old branch
        // becomes empty (split -> join edge).
        apply_op(
            &mut s,
            &ChangeOp::MoveActivity {
                node: confirm,
                pred: compose,
                succ: pack,
            },
        )
        .unwrap();
        assert!(is_correct(&s));
        assert_eq!(s.sole_control_successor(compose), Some(confirm));
        assert_eq!(s.sole_control_successor(confirm), Some(pack));
    }

    #[test]
    fn parallel_insert_wraps_region() {
        let mut s = order_process();
        let compose = node(&s, "compose order");
        let pack = node(&s, "pack goods");
        let rec = apply_op(
            &mut s,
            &ChangeOp::ParallelInsert {
                activity: NewActivity::named("print label"),
                from: compose,
                to: pack,
            },
        )
        .unwrap();
        assert!(is_correct(&s));
        let x = rec.inserted_activity().unwrap();
        let blocks = Blocks::analyze(&s).unwrap();
        assert!(blocks.parallel_separator(x, compose).is_some());
        assert!(blocks.parallel_separator(x, pack).is_some());
    }

    #[test]
    fn branch_insert_creates_conditional() {
        let mut b = SchemaBuilder::new("g");
        let d = b.data("amount", ValueType::Int);
        let w = b.activity("w");
        b.write(w, d);
        let r = b.activity("r");
        let mut s = b.build().unwrap();
        let rec = apply_op(
            &mut s,
            &ChangeOp::BranchInsert {
                activity: NewActivity::named("extra check"),
                pred: w,
                succ: r,
                guard: Some(adept_model::Guard::new(
                    d,
                    adept_model::CmpOp::Ge,
                    adept_model::Value::Int(1000),
                )),
            },
        )
        .unwrap();
        assert!(is_correct(&s));
        assert_eq!(rec.added_nodes.len(), 3);
        let x = rec.inserted_activity().unwrap();
        assert_eq!(s.node(x).unwrap().name, "extra check");
    }

    #[test]
    fn postcondition_rejects_missing_input() {
        let mut b = SchemaBuilder::new("g");
        let d = b.data("late", ValueType::Int);
        let a = b.activity("a");
        let c = b.activity("c");
        b.write(c, d); // only written AFTER a
        let mut s = b.build().unwrap();
        // Inserting an activity reading `late` between a and c must fail:
        // the value is not yet written there.
        let err = apply_op(
            &mut s,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("x").reading(d),
                pred: a,
                succ: c,
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, ChangeError::PostconditionViolated(_)),
            "{err}"
        );
        // Schema unchanged on failure.
        assert!(s.node_by_name("x").is_none());
    }

    #[test]
    fn recorded_reapplication_reuses_ids() {
        let mut s = order_process();
        let get = node(&s, "get order");
        let collect = node(&s, "collect data");
        let and_split = s.nodes().find(|n| n.kind == NodeKind::AndSplit).unwrap().id;
        let mut instance_schema = s.clone();
        instance_schema.reserve_private_id_space();
        let rec = apply_op(
            &mut instance_schema,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("ad-hoc step"),
                pred: get,
                succ: collect,
            },
        )
        .unwrap();
        let x = rec.inserted_activity().unwrap();
        assert!(x.raw() >= ProcessSchema::PRIVATE_ID_BASE);

        // Evolve the type (allocates low ids), then transplant the bias.
        apply_op(
            &mut s,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("type step"),
                pred: collect,
                succ: and_split,
            },
        )
        .unwrap();
        let mut target = s.clone();
        apply_recorded(&mut target, &rec).unwrap();
        assert!(target.has_node(x));
        assert_eq!(target.node(x).unwrap().name, "ad-hoc step");
        assert!(is_correct(&target));
    }

    #[test]
    fn data_ops_roundtrip() {
        let mut s = order_process();
        let rec = apply_op(
            &mut s,
            &ChangeOp::AddDataElement {
                name: "priority".into(),
                ty: ValueType::Int,
            },
        )
        .unwrap();
        let d = rec.added_data[0];
        let get = node(&s, "get order");
        let deliver = node(&s, "deliver goods");
        apply_op(
            &mut s,
            &ChangeOp::AddDataEdge {
                node: get,
                data: d,
                mode: AccessMode::Write,
                optional: false,
            },
        )
        .unwrap();
        apply_op(
            &mut s,
            &ChangeOp::AddDataEdge {
                node: deliver,
                data: d,
                mode: AccessMode::Read,
                optional: false,
            },
        )
        .unwrap();
        assert!(is_correct(&s));
        apply_op(
            &mut s,
            &ChangeOp::RemoveDataEdge {
                node: deliver,
                data: d,
                mode: AccessMode::Read,
            },
        )
        .unwrap();
        assert_eq!(s.readers_of(d).count(), 0);
    }

    #[test]
    fn attribute_change() {
        let mut s = order_process();
        let get = node(&s, "get order");
        let attrs = adept_model::ActivityAttributes {
            role: Some("sales".into()),
            ..Default::default()
        };
        apply_op(
            &mut s,
            &ChangeOp::SetActivityAttributes { node: get, attrs },
        )
        .unwrap();
        assert_eq!(s.node(get).unwrap().attrs.role.as_deref(), Some("sales"));
    }
}
