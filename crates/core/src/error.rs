//! Error type of the change-operation layer.

use adept_model::{DataId, ModelError, NodeId};
use adept_state::RuntimeError;
use std::fmt;

/// Errors raised when defining or applying change operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeError {
    /// Underlying model mutation failed.
    Model(ModelError),
    /// A structural precondition of the operation is violated. The message
    /// names the condition.
    Precondition(String),
    /// The state precondition of an instance-level (ad-hoc) change is
    /// violated, e.g. deleting an already running activity.
    StatePrecondition {
        /// The offending node.
        node: NodeId,
        /// Why the state forbids the change.
        reason: String,
    },
    /// Applying the operation would produce an incorrect schema; the
    /// verification findings are summarised in the message. This is how
    /// ADEPT2 guarantees that "none of the guarantees achieved by formal
    /// checks at buildtime are violated due to the dynamic change".
    PostconditionViolated(String),
    /// A node referenced by the operation does not exist.
    UnknownNode(NodeId),
    /// A data element referenced by the operation does not exist.
    UnknownData(DataId),
    /// A runtime error occurred during state adaptation.
    Runtime(RuntimeError),
}

impl fmt::Display for ChangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChangeError::Model(e) => write!(f, "model error: {e}"),
            ChangeError::Precondition(m) => write!(f, "precondition violated: {m}"),
            ChangeError::StatePrecondition { node, reason } => {
                write!(f, "state precondition violated at {node}: {reason}")
            }
            ChangeError::PostconditionViolated(m) => {
                write!(f, "change would corrupt the schema: {m}")
            }
            ChangeError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ChangeError::UnknownData(d) => write!(f, "unknown data element {d}"),
            ChangeError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl ChangeError {
    /// The node the failure anchors to, when the error names one —
    /// lets monitoring consumers attach rejections to a schema position
    /// without parsing the message.
    pub fn failing_node(&self) -> Option<NodeId> {
        match self {
            ChangeError::StatePrecondition { node, .. } => Some(*node),
            ChangeError::UnknownNode(n) => Some(*n),
            _ => None,
        }
    }
}

impl std::error::Error for ChangeError {}

impl From<ModelError> for ChangeError {
    fn from(e: ModelError) -> Self {
        ChangeError::Model(e)
    }
}

impl From<RuntimeError> for ChangeError {
    fn from(e: RuntimeError) -> Self {
        ChangeError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ChangeError = ModelError::UnknownNode(NodeId(1)).into();
        assert!(e.to_string().contains("unknown node"));
        let e: ChangeError = RuntimeError::Stuck.into();
        assert!(e.to_string().contains("cannot progress"));
        let e = ChangeError::StatePrecondition {
            node: NodeId(2),
            reason: "already running".into(),
        };
        assert!(e.to_string().contains("already running"));
    }
}
