//! # adept-core — the ADEPT2 change framework
//!
//! This crate is the reproduction of the paper's primary contribution
//! (*Adaptive Process Management with ADEPT2*, ICDE 2005):
//!
//! * [`ops`] / [`apply`] — the complete set of high-level change operations
//!   (serial/parallel/conditional insert, delete, move, sync edges, data
//!   flow changes) with structural pre-conditions and full verification as
//!   post-condition: a dynamic change can never corrupt a schema.
//! * [`delta`] — change logs (ΔT for type changes, the *bias* ΔI for
//!   ad-hoc modified instances) and their algebra (disjointness, purging).
//! * [`compliance`] — the correctness criterion for migrating running
//!   instances: the trace-replay oracle over *reduced* execution histories
//!   and the fast per-operation compliance conditions of the paper's
//!   Fig. 1, including conflict classification (state-related, structural,
//!   semantical).
//! * [`adapt`] — efficient state adaptation: markings are transferred
//!   locally per operation instead of replaying whole histories.
//! * [`migration`] — process type version chains, per-instance migration
//!   (including biased instances whose ad-hoc changes are transplanted
//!   onto the new version), and the migration report of the paper's
//!   Fig. 3.
//!
//! The typical flow, mirroring the paper's demo:
//!
//! ```
//! use adept_core::{ChangeOp, Delta, MigrationOptions, NewActivity, ProcessType};
//! use adept_core::migration::migrate_instance;
//! use adept_model::SchemaBuilder;
//! use adept_state::{DefaultDriver, Execution};
//!
//! // Deploy version 1 of the order process.
//! let mut b = SchemaBuilder::new("online order");
//! b.activity("get order");
//! b.activity("pack goods");
//! let mut pt = ProcessType::new(b.build().unwrap()).unwrap();
//!
//! // Start an instance on V1.
//! let v1 = pt.latest().clone();
//! let ex = Execution::new(&v1).unwrap();
//! let mut st = ex.init().unwrap();
//! ex.run(&mut st, &mut DefaultDriver, Some(1)).unwrap();
//!
//! // Evolve the type: V2 inserts "send invoice" before "pack goods".
//! let get = v1.node_by_name("get order").unwrap().id;
//! let pack = v1.node_by_name("pack goods").unwrap().id;
//! let (v2, delta) = pt.evolve(&[ChangeOp::SerialInsert {
//!     activity: NewActivity::named("send invoice"),
//!     pred: get,
//!     succ: pack,
//! }]).unwrap();
//! assert_eq!(v2, 2);
//!
//! // Migrate the running instance on the fly.
//! let res = migrate_instance(&v1, &ex.blocks, pt.latest(), &delta,
//!     &Delta::new(), &st, &MigrationOptions::default());
//! assert!(res.verdict.is_compliant());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapt;
pub mod apply;
pub mod compliance;
pub mod delta;
pub mod error;
pub mod inverse;
pub mod migration;
pub mod ops;

pub use adapt::adapt_instance_state;
pub use apply::{apply_op, apply_op_unverified, apply_recorded};
pub use compliance::{check_fast, check_trace, Conflict, ConflictKind, Verdict};
pub use delta::Delta;
pub use error::ChangeError;
pub use inverse::{inverse_of, undo_last};
pub use migration::{
    migrate_instance, InstanceOutcome, MigrationOptions, MigrationReport, MigrationResult,
    ProcessType,
};
pub use ops::{AppliedOp, ChangeOp, NewActivity};
