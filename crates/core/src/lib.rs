//! # adept-core — the ADEPT2 change framework
//!
//! This crate is the reproduction of the paper's primary contribution
//! (*Adaptive Process Management with ADEPT2*, ICDE 2005):
//!
//! * [`ops`] / [`apply`] — the complete set of high-level change operations
//!   (serial/parallel/conditional insert, delete, move, sync edges, data
//!   flow changes) with structural pre-conditions and full verification as
//!   post-condition: a dynamic change can never corrupt a schema.
//! * [`txn`] — **change transactions**, the primary change surface: stage
//!   any number of operations against a working overlay, dry-run them with
//!   [`ChangeTxn::preview`], then commit atomically. A commit pays exactly
//!   **one** full verification pass and one Fig.-1 compliance pass for the
//!   whole batch — instead of one per operation — and a failed commit is
//!   observably side-effect free. Recorded inverses ([`inverse`]) make
//!   staged operations individually rollback-able.
//! * [`delta`] — change logs (ΔT for type changes, the *bias* ΔI for
//!   ad-hoc modified instances) and their algebra (disjointness, purging).
//! * [`compliance`] — the correctness criterion for migrating running
//!   instances: the trace-replay oracle over *reduced* execution histories
//!   and the fast per-operation compliance conditions of the paper's
//!   Fig. 1, including conflict classification (state-related, structural,
//!   semantical).
//! * [`adapt`] — efficient state adaptation: markings are transferred
//!   locally per operation instead of replaying whole histories.
//! * [`migration`] — process type version chains, per-instance migration
//!   (including biased instances whose ad-hoc changes are transplanted
//!   onto the new version), and the migration report of the paper's
//!   Fig. 3.
//!
//! The transactional flow — stage, preview, commit:
//!
//! ```
//! use adept_core::{ChangeOp, ChangeTxn, NewActivity};
//! use adept_model::SchemaBuilder;
//!
//! let mut b = SchemaBuilder::new("online order");
//! b.activity("get order");
//! b.activity("pack goods");
//! let base = b.build().unwrap();
//! let get = base.node_by_name("get order").unwrap().id;
//! let pack = base.node_by_name("pack goods").unwrap().id;
//!
//! // Stage two operations; no verification runs yet.
//! let mut txn = ChangeTxn::begin(base);
//! let invoice = txn.stage(&ChangeOp::SerialInsert {
//!     activity: NewActivity::named("send invoice"),
//!     pred: get,
//!     succ: pack,
//! }).unwrap().inserted_activity().unwrap();
//! txn.stage(&ChangeOp::SetActivityAttributes {
//!     node: invoice,
//!     attrs: adept_model::ActivityAttributes { role: Some("clerk".into()), ..Default::default() },
//! }).unwrap();
//!
//! // Pure dry run: per-op diagnostics + the single verification pass.
//! let preview = txn.preview(None);
//! assert!(preview.is_committable());
//!
//! // Atomic commit: one verification pass for the whole batch.
//! let committed = txn.commit_schema().unwrap();
//! assert_eq!(committed.delta.len(), 2);
//! assert!(committed.schema.node_by_name("send invoice").is_some());
//! ```
//!
//! The classic per-operation entry point ([`apply_op`]) remains for
//! callers that genuinely change one thing; `adept-engine` builds its
//! session API (`begin_change` / `begin_evolution`) on [`ChangeTxn`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapt;
pub mod apply;
pub mod compliance;
pub mod compose;
pub mod delta;
pub mod error;
pub mod inverse;
pub mod migration;
pub mod ops;
pub mod txn;

pub use adapt::adapt_instance_state;
pub use apply::{apply_op, apply_op_unverified, apply_recorded};
pub use compliance::{check_fast, check_trace, Conflict, ConflictKind, Verdict};
pub use compose::{
    annotate_activity, compensation_for, control_predecessor, control_successor, enclosing_loop,
    insert_after, skip_activity,
};
pub use delta::Delta;
pub use error::ChangeError;
pub use inverse::{inverse_of, undo_last};
pub use migration::{
    migrate_instance, InstanceOutcome, MigrationOptions, MigrationReport, MigrationResult,
    ProcessType,
};
pub use ops::{AppliedOp, ChangeOp, NewActivity};
pub use txn::{ChangeTxn, CommittedTxn, OpDiagnostic, StagedOp, TxnPreview};
