//! Op-composition helpers for recovery synthesizers.
//!
//! The adaptation loop (crate `adept-adapt`) turns deviations into staged
//! change transactions built from the existing [`ChangeOp`] vocabulary.
//! These helpers answer the small structural questions every synthesizer
//! asks — "where does this activity hand off to?", "which loop encloses
//! it?" — and assemble the recurring op shapes (skip, compensation
//! insert, attribute rewrite) without the caller re-deriving graph
//! positions by hand.

use crate::ops::{ChangeOp, NewActivity};
use adept_model::{ActivityAttributes, Blocks, NodeId, ProcessSchema};

/// The unique control-flow successor of a node, if it has exactly one.
/// Splits (several successors) and the end node (none) return `None` —
/// insertion after them would be ambiguous.
pub fn control_successor(schema: &ProcessSchema, n: NodeId) -> Option<NodeId> {
    let mut it = schema.control_successors(n);
    let first = it.next()?;
    it.next().is_none().then_some(first)
}

/// The unique control-flow predecessor of a node, if it has exactly one
/// (the mirror of [`control_successor`] for joins and the start node).
pub fn control_predecessor(schema: &ProcessSchema, n: NodeId) -> Option<NodeId> {
    let mut it = schema.control_predecessors(n);
    let first = it.next()?;
    it.next().is_none().then_some(first)
}

/// The op removing an activity from the flow — compliant while the node
/// is still pending (paper Fig. 1: `deleteActivity`).
pub fn skip_activity(node: NodeId) -> ChangeOp {
    ChangeOp::DeleteActivity { node }
}

/// Inserts `activity` serially right after `node`, between `node` and its
/// unique successor. `None` if the successor is ambiguous or missing.
pub fn insert_after(
    schema: &ProcessSchema,
    node: NodeId,
    activity: NewActivity,
) -> Option<ChangeOp> {
    let succ = control_successor(schema, node)?;
    Some(ChangeOp::SerialInsert {
        activity,
        pred: node,
        succ,
    })
}

/// A compensation activity named `name`, inserted directly after the
/// `failed` activity — the "insert-compensation" recovery shape.
pub fn compensation_for(
    schema: &ProcessSchema,
    failed: NodeId,
    name: impl Into<String>,
) -> Option<ChangeOp> {
    insert_after(schema, failed, NewActivity::named(name))
}

/// Rewrites an activity's attributes through `f` (on a copy of the
/// current ones) as a `SetActivityAttributes` op — the carrier for
/// retry-bias notes and worklist escalations. `None` for unknown nodes.
pub fn annotate_activity(
    schema: &ProcessSchema,
    node: NodeId,
    f: impl FnOnce(&mut ActivityAttributes),
) -> Option<ChangeOp> {
    let mut attrs = schema.node(node).ok()?.attrs.clone();
    f(&mut attrs);
    Some(ChangeOp::SetActivityAttributes { node, attrs })
}

/// The `(loop_start, loop_end)` pair of the innermost loop block
/// enclosing `node`, if any — the jump-back target of loop-reset
/// recovery.
pub fn enclosing_loop(blocks: &Blocks, node: NodeId) -> Option<(NodeId, NodeId)> {
    blocks.innermost_loop(node).map(|b| (b.split, b.join))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_model::SchemaBuilder;

    #[test]
    fn successor_and_shapes() {
        let mut b = SchemaBuilder::new("t");
        let a = b.activity("a");
        let c = b.activity("c");
        let s = b.build().unwrap();
        assert_eq!(control_successor(&s, a), Some(c));
        assert_eq!(control_predecessor(&s, c), Some(a));
        let op = compensation_for(&s, a, "undo a").unwrap();
        match &op {
            ChangeOp::SerialInsert {
                activity,
                pred,
                succ,
            } => {
                assert_eq!(activity.name, "undo a");
                assert_eq!((*pred, *succ), (a, c));
            }
            other => panic!("unexpected op {other}"),
        }
        let ann = annotate_activity(&s, a, |attrs| attrs.skippable = true).unwrap();
        match &ann {
            ChangeOp::SetActivityAttributes { node, attrs } => {
                assert_eq!(*node, a);
                assert!(attrs.skippable);
            }
            other => panic!("unexpected op {other}"),
        }
        assert!(matches!(skip_activity(a), ChangeOp::DeleteActivity { node } if node == a));
        // End node has no unique successor.
        assert_eq!(control_successor(&s, s.end_node()), None);
    }

    #[test]
    fn finds_enclosing_loop() {
        let mut b = SchemaBuilder::new("l");
        let before = b.activity("before");
        let ls = b.loop_start();
        b.activity("body");
        let le = b.loop_end(adept_model::LoopCond::External);
        let s = b.build().unwrap();
        let body = s.node_by_name("body").unwrap().id;
        let blocks = Blocks::analyze(&s).unwrap();
        assert_eq!(enclosing_loop(&blocks, body), Some((ls, le)));
        assert_eq!(enclosing_loop(&blocks, before), None);
    }
}
