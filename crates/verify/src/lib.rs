//! # adept-verify — buildtime verification of ADEPT2 process schemas
//!
//! The paper (Sec. 2): *"ADEPT2 offers powerful concepts for modeling,
//! analyzing, and verifying process schemes. Particularly, it ensures schema
//! correctness, like the absence of deadlock-causing cycles or erroneous
//! data flows. This, in turn, constitutes an important prerequisite for
//! dynamic process changes as well."*
//!
//! This crate is that verifier. [`verify_schema`] runs:
//!
//! * **structural checks** — unique start/end node, reachability, legal
//!   node degrees, intact block structure, well-formed XOR guards,
//!   admissible sync edges ([`structural`]);
//! * **deadlock analysis** — the combined control+sync graph must be
//!   acyclic ([`deadlock`]);
//! * **data-flow analysis** — every mandatory input parameter is definitely
//!   written before use; concurrent writes are flagged ([`dataflow`]).
//!
//! The same verifier runs (a) when templates are deployed, (b) after every
//! change operation — which is how the change framework in `adept-core`
//! guarantees that *"none of the guarantees achieved by formal checks at
//! buildtime are violated due to the dynamic change."*

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataflow;
pub mod deadlock;
pub mod report;
pub mod structural;

pub use report::{Issue, IssueKind, Severity, VerificationReport};

use adept_model::ProcessSchema;
use std::cell::Cell;

thread_local! {
    static PASSES: Cell<u64> = const { Cell::new(0) };
}

/// Number of full verification passes ([`verify_schema`] calls) this
/// thread has performed. The change-transaction layer uses this to prove
/// its core amortisation guarantee — *one* verification pass per committed
/// transaction, however many operations were staged. Thread-local, so
/// concurrent tests and parallel migration workers never skew each other's
/// measurements.
pub fn verification_passes() -> u64 {
    PASSES.with(Cell::get)
}

/// Runs the complete ADEPT2 buildtime verification suite on a schema.
pub fn verify_schema(schema: &ProcessSchema) -> VerificationReport {
    PASSES.with(|c| c.set(c.get() + 1));
    let mut rep = structural::check_structure(schema);
    rep.merge(deadlock::check_deadlock_freedom(schema));
    rep.merge(dataflow::check_dataflow(schema));
    rep
}

/// Convenience: whether the schema passes verification without errors.
pub fn is_correct(schema: &ProcessSchema) -> bool {
    verify_schema(schema).is_correct()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_model::{SchemaBuilder, ValueType};

    #[test]
    fn full_suite_on_realistic_schema() {
        let mut b = SchemaBuilder::new("online order");
        let amount = b.data("amount", ValueType::Int);
        let get = b.activity("get order");
        b.write(get, amount);
        b.activity("collect data");
        b.and_split();
        b.branch();
        let confirm = b.activity("confirm order");
        b.read(confirm, amount);
        b.branch();
        b.activity("compose order");
        b.activity("pack goods");
        b.and_join();
        b.activity("deliver goods");
        let s = b.build().unwrap();
        let rep = verify_schema(&s);
        assert!(rep.is_correct(), "{rep}");
        assert!(is_correct(&s));
    }

    #[test]
    fn all_checks_contribute() {
        // Deliberately broken schema: orphan node + read without write.
        let mut b = SchemaBuilder::new("broken");
        let d = b.data("x", ValueType::Int);
        let r = b.activity("r");
        b.read(r, d);
        let mut s = b.build().unwrap();
        s.add_node("orphan", adept_model::NodeKind::Activity);
        let rep = verify_schema(&s);
        assert!(!rep.is_correct());
        assert!(rep.has(IssueKind::Unreachable));
        assert!(rep.has(IssueKind::MissingInputData));
    }
}
