//! Deadlock analysis: the control+sync graph must stay acyclic.
//!
//! This is the check behind the paper's Fig. 1 structural conflict: applying
//! the type change `insertSyncEdge(send questions, confirm order)` to the
//! ad-hoc modified instance I2 would create a cycle over control and sync
//! edges, i.e. two activities transitively waiting for each other. ADEPT2
//! refuses such schemas at buildtime and refuses such migrations at change
//! time.

use crate::report::{Issue, IssueKind, VerificationReport};
use adept_model::graph::{self, EdgeFilter};
use adept_model::ProcessSchema;

/// Checks the schema for deadlock-causing cycles over control + sync edges.
pub fn check_deadlock_freedom(schema: &ProcessSchema) -> VerificationReport {
    let mut rep = VerificationReport::default();
    if let Err(cycle) = graph::topo_order(schema, EdgeFilter::CONTROL_SYNC) {
        let list = cycle
            .nodes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        rep.push(
            Issue::error(
                IssueKind::DeadlockCycle,
                format!("control/sync cycle involving nodes {{{list}}}"),
            )
            .with_nodes(cycle.nodes),
        );
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_model::SchemaBuilder;

    #[test]
    fn acyclic_schema_passes() {
        let mut b = SchemaBuilder::new("ok");
        b.and_split();
        b.branch();
        let a = b.activity("a");
        b.branch();
        let c = b.activity("c");
        b.and_join();
        b.sync(a, c);
        let s = b.build().unwrap();
        assert!(check_deadlock_freedom(&s).is_correct());
    }

    #[test]
    fn opposing_sync_edges_deadlock() {
        let mut b = SchemaBuilder::new("dead");
        b.and_split();
        b.branch();
        let a1 = b.activity("a1");
        let a2 = b.activity("a2");
        b.branch();
        let b1 = b.activity("b1");
        let b2 = b.activity("b2");
        b.and_join();
        // a2 waits for b2, but b1 (before b2) waits for... a wait cycle:
        // a1 -> a2, b1 -> b2 (control); sync a2 -> b1 and sync b2 -> a1
        // yields a1 < a2 <= b1 < b2 <= a1: deadlock.
        b.sync(a2, b1);
        b.sync(b2, a1);
        let s = b.build().unwrap();
        let rep = check_deadlock_freedom(&s);
        assert!(!rep.is_correct());
        assert!(rep.has(IssueKind::DeadlockCycle));
        let issue = rep.errors().next().unwrap();
        for n in [a1, a2, b1, b2] {
            assert!(issue.nodes.contains(&n), "cycle should include {n}");
        }
    }

    #[test]
    fn consistent_sync_edges_do_not_deadlock() {
        let mut b = SchemaBuilder::new("ok2");
        b.and_split();
        b.branch();
        let a1 = b.activity("a1");
        let a2 = b.activity("a2");
        b.branch();
        let b1 = b.activity("b1");
        let b2 = b.activity("b2");
        b.and_join();
        b.sync(a1, b1);
        b.sync(a2, b2);
        let s = b.build().unwrap();
        assert!(check_deadlock_freedom(&s).is_correct());
    }
}
