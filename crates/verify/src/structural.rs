//! Structural soundness checks: start/end uniqueness, reachability, node
//! degrees, block structure, guard well-formedness and sync-edge rules.

use crate::report::{Issue, IssueKind, VerificationReport};
use adept_model::graph::{self, EdgeFilter};
use adept_model::{Blocks, EdgeKind, NodeKind, ProcessSchema};

/// Runs all structural checks and returns the findings.
pub fn check_structure(schema: &ProcessSchema) -> VerificationReport {
    let mut rep = VerificationReport::default();
    check_start_end(schema, &mut rep);
    check_degrees(schema, &mut rep);
    check_reachability(schema, &mut rep);
    check_blocks_and_syncs(schema, &mut rep);
    rep
}

fn check_start_end(schema: &ProcessSchema, rep: &mut VerificationReport) {
    let starts: Vec<_> = schema
        .nodes()
        .filter(|n| n.kind == NodeKind::Start)
        .map(|n| n.id)
        .collect();
    let ends: Vec<_> = schema
        .nodes()
        .filter(|n| n.kind == NodeKind::End)
        .map(|n| n.id)
        .collect();
    if starts.len() != 1 {
        rep.push(
            Issue::error(
                IssueKind::StartEndStructure,
                format!(
                    "schema must have exactly one start node, found {}",
                    starts.len()
                ),
            )
            .with_nodes(starts),
        );
    }
    if ends.len() != 1 {
        rep.push(
            Issue::error(
                IssueKind::StartEndStructure,
                format!(
                    "schema must have exactly one end node, found {}",
                    ends.len()
                ),
            )
            .with_nodes(ends),
        );
    }
}

fn check_degrees(schema: &ProcessSchema, rep: &mut VerificationReport) {
    for n in schema.nodes() {
        let cin = schema.in_edges_kind(n.id, EdgeKind::Control).count();
        let cout = schema.out_edges_kind(n.id, EdgeKind::Control).count();
        let lin = schema.in_edges_kind(n.id, EdgeKind::Loop).count();
        let lout = schema.out_edges_kind(n.id, EdgeKind::Loop).count();
        let bad = |msg: String, rep: &mut VerificationReport| {
            rep.push(Issue::error(IssueKind::Degree, msg).with_nodes([n.id]));
        };
        match n.kind {
            NodeKind::Start => {
                if cin != 0 || cout != 1 {
                    bad(format!("start node {n} must have 0 in / 1 out control edges (has {cin}/{cout})"), rep);
                }
            }
            NodeKind::End => {
                if cin != 1 || cout != 0 {
                    bad(
                        format!(
                            "end node {n} must have 1 in / 0 out control edges (has {cin}/{cout})"
                        ),
                        rep,
                    );
                }
            }
            NodeKind::Activity | NodeKind::Null => {
                if cin != 1 || cout != 1 {
                    bad(format!("node {n} must have exactly 1 in / 1 out control edge (has {cin}/{cout})"), rep);
                }
            }
            NodeKind::AndSplit | NodeKind::XorSplit => {
                if cin != 1 || cout < 2 {
                    bad(
                        format!(
                            "split {n} must have 1 in / >=2 out control edges (has {cin}/{cout})"
                        ),
                        rep,
                    );
                }
            }
            NodeKind::AndJoin | NodeKind::XorJoin => {
                if cin < 2 || cout != 1 {
                    bad(
                        format!(
                            "join {n} must have >=2 in / 1 out control edges (has {cin}/{cout})"
                        ),
                        rep,
                    );
                }
            }
            NodeKind::LoopStart => {
                if cin != 1 || cout != 1 || lin != 1 {
                    bad(format!("loop start {n} must have 1 in / 1 out control and 1 incoming loop edge (has {cin}/{cout}, {lin} loop-in)"), rep);
                }
            }
            NodeKind::LoopEnd => {
                if cin != 1 || cout != 1 || lout != 1 {
                    bad(format!("loop end {n} must have 1 in / 1 out control and 1 outgoing loop edge (has {cin}/{cout}, {lout} loop-out)"), rep);
                }
            }
        }
        if (lin > 0 && n.kind != NodeKind::LoopStart) || (lout > 0 && n.kind != NodeKind::LoopEnd) {
            rep.push(
                Issue::error(
                    IssueKind::LoopStructure,
                    format!("node {n} has loop edges but is not a loop start/end"),
                )
                .with_nodes([n.id]),
            );
        }
    }
}

fn check_reachability(schema: &ProcessSchema, rep: &mut VerificationReport) {
    let start = schema.nodes().find(|n| n.kind == NodeKind::Start);
    let end = schema.nodes().find(|n| n.kind == NodeKind::End);
    if let Some(start) = start {
        let fwd = graph::reachable_from(schema, start.id, EdgeFilter::CONTROL);
        for n in schema.nodes() {
            if !fwd.contains(&n.id) {
                rep.push(
                    Issue::error(
                        IssueKind::Unreachable,
                        format!("node {n} is unreachable from the start node"),
                    )
                    .with_nodes([n.id]),
                );
            }
        }
    }
    if let Some(end) = end {
        let back = graph::reaching_to(schema, end.id, EdgeFilter::CONTROL);
        for n in schema.nodes() {
            if !back.contains(&n.id) {
                rep.push(
                    Issue::error(
                        IssueKind::Unreachable,
                        format!("node {n} cannot reach the end node"),
                    )
                    .with_nodes([n.id]),
                );
            }
        }
    }
}

fn check_blocks_and_syncs(schema: &ProcessSchema, rep: &mut VerificationReport) {
    // Guard structure on XOR splits: at most one unguarded (else) branch and
    // guards must reference declared data elements.
    for n in schema.nodes().filter(|n| n.kind == NodeKind::XorSplit) {
        let mut unguarded = 0usize;
        let mut total = 0usize;
        for e in schema.out_edges_kind(n.id, EdgeKind::Control) {
            total += 1;
            match &e.guard {
                None => unguarded += 1,
                Some(g) => {
                    if schema.data_element(g.data).is_err() {
                        rep.push(
                            Issue::error(
                                IssueKind::GuardStructure,
                                format!("guard on {e} references unknown data {}", g.data),
                            )
                            .with_nodes([n.id]),
                        );
                    } else if let Some(vt) = g.value.value_type() {
                        let declared = schema.data_element(g.data).expect("checked").ty;
                        if vt != declared {
                            rep.push(
                                Issue::error(
                                    IssueKind::GuardTypeMismatch,
                                    format!(
                                        "guard on {e} compares {} ({declared}) against a {vt} literal",
                                        g.data
                                    ),
                                )
                                .with_nodes([n.id])
                                .with_data([g.data]),
                            );
                        }
                    }
                }
            }
        }
        // A fully unguarded XOR block delegates the branching decision to
        // the runtime (user or simulation driver) and is legal. Mixing
        // guarded branches with more than one unguarded branch makes the
        // else-branch ambiguous.
        if unguarded > 1 && unguarded != total {
            rep.push(
                Issue::error(
                    IssueKind::GuardStructure,
                    format!("XOR split {n} mixes guards with {unguarded} unguarded branches; at most one (else) allowed"),
                )
                .with_nodes([n.id]),
            );
        }
    }

    // Guards on non-XOR edges are meaningless.
    for e in schema.edges() {
        if e.guard.is_some() {
            let from_kind = schema.node(e.from).map(|n| n.kind);
            if from_kind != Ok(NodeKind::XorSplit) {
                rep.push(Issue::warning(
                    IssueKind::GuardStructure,
                    format!("guard on {e} is ignored: source is not an XOR split"),
                ));
            }
        }
    }

    // Block analysis must succeed; sync edges must connect concurrent nodes.
    match Blocks::analyze(schema) {
        Err(e) => {
            rep.push(Issue::error(
                IssueKind::BlockStructure,
                format!("block analysis failed: {e}"),
            ));
        }
        Ok(blocks) => {
            for e in schema.sync_edges() {
                if e.from == e.to {
                    rep.push(
                        Issue::error(IssueKind::SyncEdge, format!("sync edge {e} is a self loop"))
                            .with_nodes([e.from]),
                    );
                    continue;
                }
                if blocks.parallel_separator(e.from, e.to).is_none() {
                    rep.push(
                        Issue::error(
                            IssueKind::SyncEdge,
                            format!(
                                "sync edge {e} does not connect different branches of one parallel block"
                            ),
                        )
                        .with_nodes([e.from, e.to]),
                    );
                }
                if !blocks.same_loop_context(e.from, e.to) {
                    rep.push(
                        Issue::error(
                            IssueKind::SyncEdge,
                            format!("sync edge {e} crosses a loop boundary"),
                        )
                        .with_nodes([e.from, e.to]),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_model::SchemaBuilder;

    #[test]
    fn builder_output_is_structurally_sound() {
        let mut b = SchemaBuilder::new("good");
        b.activity("a");
        b.and_split();
        b.branch();
        b.activity("b");
        b.branch();
        b.activity("c");
        b.and_join();
        let s = b.build().unwrap();
        let rep = check_structure(&s);
        assert!(rep.is_correct(), "{rep}");
    }

    #[test]
    fn dangling_node_is_unreachable() {
        let mut b = SchemaBuilder::new("g");
        b.activity("a");
        let mut s = b.build().unwrap();
        s.add_node("orphan", NodeKind::Activity);
        let rep = check_structure(&s);
        assert!(!rep.is_correct());
        assert!(rep.has(IssueKind::Unreachable));
        assert!(rep.has(IssueKind::Degree));
    }

    #[test]
    fn sync_within_sequence_is_rejected() {
        let mut b = SchemaBuilder::new("g");
        let a = b.activity("a");
        let c = b.activity("c");
        b.sync(a, c);
        let s = b.build().unwrap();
        let rep = check_structure(&s);
        assert!(rep.has(IssueKind::SyncEdge));
        assert!(!rep.is_correct());
    }

    #[test]
    fn sync_between_parallel_branches_is_accepted() {
        let mut b = SchemaBuilder::new("g");
        b.and_split();
        b.branch();
        let a = b.activity("a");
        b.branch();
        let c = b.activity("c");
        b.and_join();
        b.sync(a, c);
        let s = b.build().unwrap();
        let rep = check_structure(&s);
        assert!(rep.is_correct(), "{rep}");
    }

    #[test]
    fn sync_crossing_loop_boundary_is_rejected() {
        let mut b = SchemaBuilder::new("g");
        b.and_split();
        b.branch();
        let a = b.activity("a");
        b.branch();
        b.loop_start();
        let inner = b.activity("inner");
        b.loop_end(adept_model::LoopCond::Times(2));
        b.and_join();
        b.sync(a, inner);
        let s = b.build().unwrap();
        let rep = check_structure(&s);
        assert!(rep.has(IssueKind::SyncEdge));
    }

    #[test]
    fn fully_unguarded_xor_is_external_choice_and_legal() {
        let mut b = SchemaBuilder::new("g");
        b.xor_split();
        b.case();
        b.activity("x");
        b.case();
        b.activity("y");
        b.xor_join();
        let s = b.build().unwrap();
        let rep = check_structure(&s);
        assert!(rep.is_correct(), "{rep}");
    }

    #[test]
    fn mixed_guards_with_two_else_branches_rejected() {
        use adept_model::{CmpOp, Guard, Value, ValueType};
        let mut b = SchemaBuilder::new("g");
        let d = b.data("amount", ValueType::Int);
        b.xor_split();
        b.case_when(Guard::new(d, CmpOp::Ge, Value::Int(10)));
        b.activity("x");
        b.case();
        b.activity("y");
        b.case();
        b.activity("z");
        b.xor_join();
        let s = b.build().unwrap();
        let rep = check_structure(&s);
        assert!(rep.has(IssueKind::GuardStructure));
    }
}
