//! Verification report types.

use adept_model::{DataId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Severity of a verification issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational finding; never blocks deployment.
    Info,
    /// Suspicious but tolerated construct (e.g. potentially lost update).
    Warning,
    /// Correctness violation; the schema must not be deployed or the change
    /// must not be applied.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Classification of verification issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IssueKind {
    /// Missing or duplicated start/end node.
    StartEndStructure,
    /// A node is unreachable from the start or cannot reach the end.
    Unreachable,
    /// A node has an illegal in/out degree for its kind.
    Degree,
    /// The block structure is broken (unmatched split/join, bad nesting).
    BlockStructure,
    /// An XOR split's branch guards are malformed.
    GuardStructure,
    /// A sync edge violates its structural rules.
    SyncEdge,
    /// The control+sync graph contains a deadlock-causing cycle
    /// (paper Fig. 1: structural conflict of instance I2).
    DeadlockCycle,
    /// A mandatory input parameter may be unsupplied at runtime.
    MissingInputData,
    /// Concurrent writers may race on a data element.
    ParallelWriteConflict,
    /// A data element is written but never read.
    UnreadData,
    /// A guard compares a data element against a value of the wrong type.
    GuardTypeMismatch,
    /// A loop block is malformed.
    LoopStructure,
}

impl fmt::Display for IssueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IssueKind::StartEndStructure => "start/end structure",
            IssueKind::Unreachable => "unreachable node",
            IssueKind::Degree => "illegal degree",
            IssueKind::BlockStructure => "block structure",
            IssueKind::GuardStructure => "guard structure",
            IssueKind::SyncEdge => "sync edge",
            IssueKind::DeadlockCycle => "deadlock-causing cycle",
            IssueKind::MissingInputData => "missing input data",
            IssueKind::ParallelWriteConflict => "parallel write conflict",
            IssueKind::UnreadData => "unread data",
            IssueKind::GuardTypeMismatch => "guard type mismatch",
            IssueKind::LoopStructure => "loop structure",
        };
        f.write_str(s)
    }
}

/// One verification finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Issue {
    /// Severity of the finding.
    pub severity: Severity,
    /// Classification.
    pub kind: IssueKind,
    /// Human-readable description.
    pub message: String,
    /// Nodes involved (may be empty).
    pub nodes: Vec<NodeId>,
    /// Data elements involved (may be empty).
    pub data: Vec<DataId>,
}

impl Issue {
    /// Creates an error-severity issue.
    pub fn error(kind: IssueKind, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Error,
            kind,
            message: message.into(),
            nodes: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Creates a warning-severity issue.
    pub fn warning(kind: IssueKind, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Warning,
            kind,
            message: message.into(),
            nodes: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Attaches involved nodes.
    pub fn with_nodes(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.nodes.extend(nodes);
        self
    }

    /// Attaches involved data elements.
    pub fn with_data(mut self, data: impl IntoIterator<Item = DataId>) -> Self {
        self.data.extend(data);
        self
    }
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.severity, self.kind, self.message)
    }
}

/// The result of verifying one schema.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// All findings, in detection order (deterministic).
    pub issues: Vec<Issue>,
}

impl VerificationReport {
    /// Whether the schema may be deployed (no error-severity issues).
    pub fn is_correct(&self) -> bool {
        !self.issues.iter().any(|i| i.severity == Severity::Error)
    }

    /// All error-severity issues.
    pub fn errors(&self) -> impl Iterator<Item = &Issue> {
        self.issues.iter().filter(|i| i.severity == Severity::Error)
    }

    /// All warning-severity issues.
    pub fn warnings(&self) -> impl Iterator<Item = &Issue> {
        self.issues
            .iter()
            .filter(|i| i.severity == Severity::Warning)
    }

    /// Appends an issue.
    pub fn push(&mut self, issue: Issue) {
        self.issues.push(issue);
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: VerificationReport) {
        self.issues.extend(other.issues);
    }

    /// Whether any issue of the given kind was found.
    pub fn has(&self, kind: IssueKind) -> bool {
        self.issues.iter().any(|i| i.kind == kind)
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.issues.is_empty() {
            return f.write_str("verification: OK\n");
        }
        for i in &self.issues {
            writeln!(f, "{i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correctness_requires_no_errors() {
        let mut r = VerificationReport::default();
        assert!(r.is_correct());
        r.push(Issue::warning(IssueKind::UnreadData, "w"));
        assert!(r.is_correct());
        r.push(Issue::error(IssueKind::DeadlockCycle, "e"));
        assert!(!r.is_correct());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
        assert!(r.has(IssueKind::DeadlockCycle));
        assert!(!r.has(IssueKind::Degree));
    }

    #[test]
    fn display_formats() {
        let i = Issue::error(IssueKind::SyncEdge, "bad sync").with_nodes([NodeId(1)]);
        assert_eq!(i.to_string(), "[error] sync edge: bad sync");
        let mut r = VerificationReport::default();
        assert_eq!(r.to_string(), "verification: OK\n");
        r.push(i);
        assert!(r.to_string().contains("bad sync"));
    }
}
