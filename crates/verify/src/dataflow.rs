//! Data-flow analysis: missing input data, parallel write conflicts and
//! unread data elements.
//!
//! ADEPT2's buildtime checks prove that every mandatory input parameter of
//! every activity is *definitely written* before the activity can start —
//! on every path, across XOR branches, and without relying on concurrent
//! (unordered) writes. Deleting an activity at runtime re-runs this
//! analysis, which is how the system detects the "missing data" problem the
//! paper mentions for activity deletions.

use crate::report::{Issue, IssueKind, VerificationReport};
use adept_model::graph::{self, EdgeFilter};
use adept_model::{
    AccessMode, BlockKind, Blocks, DataId, EdgeKind, LoopCond, NodeId, ProcessSchema,
};
use std::collections::{BTreeMap, BTreeSet};

/// Runs all data-flow checks.
pub fn check_dataflow(schema: &ProcessSchema) -> VerificationReport {
    let mut rep = VerificationReport::default();
    let Ok(order) = graph::topo_order(schema, EdgeFilter::CONTROL_SYNC) else {
        // A cyclic graph is reported by the deadlock checker; data flow
        // cannot be analysed meaningfully.
        return rep;
    };
    let blocks = match Blocks::analyze(schema) {
        Ok(b) => b,
        Err(_) => return rep, // reported by the structural checker
    };

    let definitely_written = compute_definitely_written(schema, &order, &blocks);

    check_mandatory_reads(schema, &definitely_written, &mut rep);
    check_guard_reads(schema, &definitely_written, &mut rep);
    check_parallel_writes(schema, &blocks, &mut rep);
    check_unread_data(schema, &mut rep);
    rep
}

/// Computes, for every node, the set of data elements that are guaranteed
/// to have been written before the node starts (first loop iteration
/// semantics: loop edges are excluded, so a loop body cannot rely on writes
/// of later body nodes).
///
/// Sync edges contribute their source's writes only when the source cannot
/// be skipped (it is not nested inside any conditional block): a skipped
/// sync source signals `FalseSignaled` and the target proceeds *without*
/// the write.
pub fn compute_definitely_written(
    schema: &ProcessSchema,
    topo: &[NodeId],
    blocks: &Blocks,
) -> BTreeMap<NodeId, BTreeSet<DataId>> {
    let mut dw: BTreeMap<NodeId, BTreeSet<DataId>> = BTreeMap::new();
    let writes_of =
        |n: NodeId| -> BTreeSet<DataId> { schema.writes_of(n).map(|de| de.data).collect() };
    let skippable = |n: NodeId| -> bool {
        blocks
            .enclosing(n)
            .iter()
            .any(|(s, _)| blocks.by_split[s].kind == BlockKind::Conditional)
    };
    let is_xor_join =
        |n: NodeId| schema.node(n).map(|x| x.kind) == Ok(adept_model::NodeKind::XorJoin);
    for &n in topo {
        // Incoming control edges of an XOR join are *alternatives*: only one
        // path is taken, so guarantees are intersected. Everywhere else
        // (sequences, AND joins) every incoming control edge has fired
        // before the node starts, so guarantees accumulate (union). Sync
        // edges are mandatory waits and always accumulate — unless their
        // source is skippable, in which case they guarantee nothing.
        let mut acc: Option<BTreeSet<DataId>> = None;
        let mut sync_acc: BTreeSet<DataId> = BTreeSet::new();
        for e in schema.in_edges(n) {
            match e.kind {
                EdgeKind::Control => {
                    let mut c = dw.get(&e.from).cloned().unwrap_or_default();
                    c.extend(writes_of(e.from));
                    acc = Some(match acc {
                        None => c,
                        Some(a) => {
                            if is_xor_join(n) {
                                a.intersection(&c).copied().collect()
                            } else {
                                a.union(&c).copied().collect()
                            }
                        }
                    });
                }
                EdgeKind::Sync => {
                    if skippable(e.from) {
                        continue; // source may be skipped: no guarantee
                    }
                    sync_acc.extend(dw.get(&e.from).cloned().unwrap_or_default());
                    sync_acc.extend(writes_of(e.from));
                }
                EdgeKind::Loop => {} // first-iteration semantics
            }
        }
        let mut result = acc.unwrap_or_default();
        result.extend(sync_acc);
        dw.insert(n, result);
    }
    dw
}

fn check_mandatory_reads(
    schema: &ProcessSchema,
    dw: &BTreeMap<NodeId, BTreeSet<DataId>>,
    rep: &mut VerificationReport,
) {
    for de in schema.data_edges() {
        if de.mode != AccessMode::Read || de.optional {
            continue;
        }
        let written = dw.get(&de.node).is_some_and(|s| s.contains(&de.data));
        if !written {
            let node = schema
                .node(de.node)
                .map(|n| n.name.clone())
                .unwrap_or_default();
            let data = schema
                .data_element(de.data)
                .map(|d| d.name.clone())
                .unwrap_or_default();
            let detail = if schema.writers_of(de.data).next().is_none() {
                "no activity writes it at all"
            } else {
                "not written on every path before the read"
            };
            rep.push(
                Issue::error(
                    IssueKind::MissingInputData,
                    format!(
                        "mandatory input \"{data}\" of activity \"{node}\" may be unsupplied: {detail}"
                    ),
                )
                .with_nodes([de.node])
                .with_data([de.data]),
            );
        }
    }
}

fn check_guard_reads(
    schema: &ProcessSchema,
    dw: &BTreeMap<NodeId, BTreeSet<DataId>>,
    rep: &mut VerificationReport,
) {
    let check = |decider: NodeId, data: DataId, what: &str, rep: &mut VerificationReport| {
        let available = dw.get(&decider).is_some_and(|s| s.contains(&data))
            || schema.writes_of(decider).any(|w| w.data == data);
        if !available {
            rep.push(
                Issue::error(
                    IssueKind::MissingInputData,
                    format!("{what} at {decider} reads {data}, which may be unwritten"),
                )
                .with_nodes([decider])
                .with_data([data]),
            );
        }
    };
    for e in schema.edges() {
        if let Some(g) = &e.guard {
            check(e.from, g.data, "branch guard", rep);
        }
        if let Some(LoopCond::While(g)) = &e.loop_cond {
            check(e.from, g.data, "loop condition", rep);
        }
    }
}

fn check_parallel_writes(schema: &ProcessSchema, blocks: &Blocks, rep: &mut VerificationReport) {
    let mut by_data: BTreeMap<DataId, Vec<NodeId>> = BTreeMap::new();
    for de in schema.data_edges() {
        if de.mode == AccessMode::Write {
            by_data.entry(de.data).or_default().push(de.node);
        }
    }
    for (d, writers) in by_data {
        for i in 0..writers.len() {
            for j in (i + 1)..writers.len() {
                let (a, b) = (writers[i], writers[j]);
                if blocks.parallel_separator(a, b).is_some()
                    && !graph::path_exists(schema, a, b, EdgeFilter::CONTROL_SYNC)
                    && !graph::path_exists(schema, b, a, EdgeFilter::CONTROL_SYNC)
                {
                    rep.push(
                        Issue::warning(
                            IssueKind::ParallelWriteConflict,
                            format!(
                                "nodes {a} and {b} write {d} concurrently; the final value is non-deterministic (add a sync edge to order them)"
                            ),
                        )
                        .with_nodes([a, b])
                        .with_data([d]),
                    );
                }
            }
        }
    }
}

fn check_unread_data(schema: &ProcessSchema, rep: &mut VerificationReport) {
    let mut guard_used: BTreeSet<DataId> = BTreeSet::new();
    for e in schema.edges() {
        if let Some(g) = &e.guard {
            guard_used.insert(g.data);
        }
        if let Some(LoopCond::While(g)) = &e.loop_cond {
            guard_used.insert(g.data);
        }
    }
    for d in schema.data_elements() {
        let has_writer = schema.writers_of(d.id).next().is_some();
        let has_reader = schema.readers_of(d.id).next().is_some() || guard_used.contains(&d.id);
        if has_writer && !has_reader {
            rep.push(
                Issue::warning(
                    IssueKind::UnreadData,
                    format!("data element \"{}\" is written but never read", d.name),
                )
                .with_data([d.id]),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_model::{SchemaBuilder, ValueType};

    #[test]
    fn straight_line_write_then_read_ok() {
        let mut b = SchemaBuilder::new("ok");
        let d = b.data("x", ValueType::Int);
        let w = b.activity("w");
        b.write(w, d);
        let r = b.activity("r");
        b.read(r, d);
        let s = b.build().unwrap();
        let rep = check_dataflow(&s);
        assert!(rep.is_correct(), "{rep}");
    }

    #[test]
    fn read_before_any_write_is_missing_input() {
        let mut b = SchemaBuilder::new("bad");
        let d = b.data("x", ValueType::Int);
        let r = b.activity("r");
        b.read(r, d);
        let w = b.activity("w");
        b.write(w, d);
        let s = b.build().unwrap();
        let rep = check_dataflow(&s);
        assert!(rep.has(IssueKind::MissingInputData));
    }

    #[test]
    fn write_on_one_xor_branch_only_is_missing_input() {
        let mut b = SchemaBuilder::new("bad");
        let d = b.data("x", ValueType::Int);
        b.xor_split();
        b.case();
        let w = b.activity("w");
        b.write(w, d);
        b.case();
        b.activity("other");
        b.xor_join();
        let r = b.activity("r");
        b.read(r, d);
        let s = b.build().unwrap();
        let rep = check_dataflow(&s);
        assert!(rep.has(IssueKind::MissingInputData));
    }

    #[test]
    fn write_on_both_xor_branches_is_ok() {
        let mut b = SchemaBuilder::new("ok");
        let d = b.data("x", ValueType::Int);
        b.xor_split();
        b.case();
        let w1 = b.activity("w1");
        b.write(w1, d);
        b.case();
        let w2 = b.activity("w2");
        b.write(w2, d);
        b.xor_join();
        let r = b.activity("r");
        b.read(r, d);
        let s = b.build().unwrap();
        assert!(check_dataflow(&s).is_correct());
    }

    #[test]
    fn concurrent_write_does_not_satisfy_read() {
        // Writer in one parallel branch, reader in the sibling branch:
        // without a sync edge the write is not guaranteed to precede.
        let mut b = SchemaBuilder::new("bad");
        let d = b.data("x", ValueType::Int);
        b.and_split();
        b.branch();
        let w = b.activity("w");
        b.write(w, d);
        b.branch();
        let r = b.activity("r");
        b.read(r, d);
        b.and_join();
        let s = b.build().unwrap();
        assert!(check_dataflow(&s).has(IssueKind::MissingInputData));
    }

    #[test]
    fn sync_edge_makes_concurrent_write_safe() {
        let mut b = SchemaBuilder::new("ok");
        let d = b.data("x", ValueType::Int);
        b.and_split();
        b.branch();
        let w = b.activity("w");
        b.write(w, d);
        b.branch();
        let r = b.activity("r");
        b.read(r, d);
        b.and_join();
        b.sync(w, r);
        let s = b.build().unwrap();
        let rep = check_dataflow(&s);
        assert!(rep.is_correct(), "{rep}");
    }

    #[test]
    fn sync_from_skippable_source_is_no_guarantee() {
        // The writer sits inside an XOR branch of a nested conditional in a
        // parallel branch; if the other case is taken it is skipped and the
        // sync edge fires FalseSignaled — the reader would see Null.
        let mut b = SchemaBuilder::new("bad");
        let d = b.data("x", ValueType::Int);
        b.and_split();
        b.branch();
        b.xor_split();
        b.case();
        let w = b.activity("w");
        b.write(w, d);
        b.case();
        b.activity("skip");
        b.xor_join();
        b.branch();
        let r = b.activity("r");
        b.read(r, d);
        b.and_join();
        b.sync(w, r);
        let s = b.build().unwrap();
        assert!(check_dataflow(&s).has(IssueKind::MissingInputData));
    }

    #[test]
    fn parallel_writers_warn() {
        let mut b = SchemaBuilder::new("warn");
        let d = b.data("x", ValueType::Int);
        b.and_split();
        b.branch();
        let w1 = b.activity("w1");
        b.write(w1, d);
        b.branch();
        let w2 = b.activity("w2");
        b.write(w2, d);
        b.and_join();
        let r = b.activity("r");
        b.read(r, d);
        let s = b.build().unwrap();
        let rep = check_dataflow(&s);
        assert!(rep.has(IssueKind::ParallelWriteConflict));
        assert!(rep.is_correct(), "conflict is a warning, not an error");
    }

    #[test]
    fn unread_data_warns() {
        let mut b = SchemaBuilder::new("warn");
        let d = b.data("x", ValueType::Int);
        let w = b.activity("w");
        b.write(w, d);
        let s = b.build().unwrap();
        assert!(check_dataflow(&s).has(IssueKind::UnreadData));
    }

    #[test]
    fn loop_body_cannot_rely_on_its_own_later_writes() {
        let mut b = SchemaBuilder::new("bad");
        let d = b.data("x", ValueType::Int);
        b.loop_start();
        let r = b.activity("r");
        b.read(r, d);
        let w = b.activity("w");
        b.write(w, d);
        b.loop_end(adept_model::LoopCond::Times(2));
        let s = b.build().unwrap();
        assert!(check_dataflow(&s).has(IssueKind::MissingInputData));
    }
}
