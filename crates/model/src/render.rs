//! Rendering schemas for humans: Graphviz DOT export and a compact text
//! listing (used by the monitoring component of `adept-engine`).

use crate::edge::EdgeKind;
use crate::ids::NodeId;
use crate::node::NodeKind;
use crate::schema::ProcessSchema;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the schema as a Graphviz DOT digraph.
///
/// `annotations` may supply an extra label line per node (the monitoring
/// component passes node states, e.g. `"Running"`).
pub fn to_dot(schema: &ProcessSchema, annotations: &BTreeMap<NodeId, String>) -> String {
    let mut out = String::with_capacity(1024);
    let _ = writeln!(
        out,
        "digraph \"{} v{}\" {{",
        escape(&schema.name),
        schema.version
    );
    let _ = writeln!(out, "  rankdir=LR;");
    for n in schema.nodes() {
        let shape = match n.kind {
            NodeKind::Start | NodeKind::End => "circle",
            NodeKind::Activity => "box",
            NodeKind::AndSplit | NodeKind::AndJoin => "diamond",
            NodeKind::XorSplit | NodeKind::XorJoin => "Mdiamond",
            NodeKind::LoopStart | NodeKind::LoopEnd => "house",
            NodeKind::Null => "box",
        };
        let mut label = format!("{}\\n{}", escape(&n.name), n.id);
        if let Some(extra) = annotations.get(&n.id) {
            let _ = write!(label, "\\n{}", escape(extra));
        }
        let style = if n.kind == NodeKind::Null {
            ", style=dashed"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  \"{}\" [shape={shape}, label=\"{label}\"{style}];",
            n.id
        );
    }
    for e in schema.edges() {
        let (style, color) = match e.kind {
            EdgeKind::Control => ("solid", "black"),
            EdgeKind::Sync => ("dashed", "blue"),
            EdgeKind::Loop => ("dotted", "red"),
        };
        let mut attrs = format!("style={style}, color={color}");
        if let Some(g) = &e.guard {
            let _ = write!(attrs, ", label=\"{}\"", escape(&g.to_string()));
        }
        if let Some(c) = &e.loop_cond {
            let _ = write!(attrs, ", label=\"{}\"", escape(&c.to_string()));
        }
        let _ = writeln!(out, "  \"{}\" -> \"{}\" [{attrs}];", e.from, e.to);
    }
    out.push_str("}\n");
    out
}

/// Renders a deterministic one-line-per-element text listing of the schema.
pub fn to_listing(schema: &ProcessSchema) -> String {
    let mut out = String::with_capacity(512);
    let _ = writeln!(
        out,
        "schema \"{}\" v{} ({} nodes, {} edges, {} data)",
        schema.name,
        schema.version,
        schema.node_count(),
        schema.edge_count(),
        schema.data_count()
    );
    for n in schema.nodes() {
        let _ = writeln!(out, "  {n}");
    }
    for e in schema.edges() {
        let _ = writeln!(out, "  {e}");
    }
    for d in schema.data_elements() {
        let _ = writeln!(out, "  {d}");
    }
    for de in schema.data_edges() {
        let _ = writeln!(out, "  {de}");
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;

    #[test]
    fn dot_contains_all_nodes_and_kinds() {
        let mut b = SchemaBuilder::new("dot test");
        b.activity("a");
        b.and_split();
        b.branch();
        b.activity("b");
        b.branch();
        b.activity("c");
        b.and_join();
        let s = b.build().unwrap();
        let dot = to_dot(&s, &BTreeMap::new());
        assert!(dot.starts_with("digraph"));
        for n in s.nodes() {
            assert!(dot.contains(&n.id.to_string()), "missing {}", n.id);
        }
        assert!(dot.contains("shape=diamond"));
    }

    #[test]
    fn annotations_are_included() {
        let mut b = SchemaBuilder::new("ann");
        let a = b.activity("a");
        let s = b.build().unwrap();
        let mut ann = BTreeMap::new();
        ann.insert(a, "Running".to_string());
        assert!(to_dot(&s, &ann).contains("Running"));
    }

    #[test]
    fn listing_mentions_counts() {
        let mut b = SchemaBuilder::new("list");
        b.activity("a");
        let s = b.build().unwrap();
        let l = to_listing(&s);
        assert!(l.contains("3 nodes"));
        assert!(l.contains("2 edges"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut b = SchemaBuilder::new("quote \"me\"");
        b.activity("a");
        let s = b.build().unwrap();
        let dot = to_dot(&s, &BTreeMap::new());
        assert!(dot.contains("quote \\\"me\\\""));
    }
}
