//! The central [`ProcessSchema`] structure: a block-structured process
//! graph with data flow.

use crate::data::{AccessMode, DataEdge, DataElement, ValueType};
use crate::edge::{Edge, EdgeKind, Guard, LoopCond};
use crate::error::ModelError;
use crate::ids::{DataId, EdgeId, IdAllocator, NodeId, SchemaId};
use crate::node::{Node, NodeKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A process schema (one concrete version of a process type).
///
/// The structure is deliberately mutation-friendly: the change-operation
/// layer (`adept-core`) applies inserts/deletes through the low-level
/// mutation API below while guaranteeing the pre-/post-conditions of the
/// paper. Consumers that only execute processes use the read API.
///
/// All containers are ordered (`BTreeMap`) so iteration — and therefore
/// verification output, migration reports and serialisation — is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessSchema {
    /// Schema identifier (assigned by the repository; 0 for free-standing).
    pub id: SchemaId,
    /// Process type name, e.g. `"online order"`.
    pub name: String,
    /// Version counter within the process type (1-based).
    pub version: u32,
    nodes: BTreeMap<NodeId, Node>,
    edges: BTreeMap<EdgeId, Edge>,
    data: BTreeMap<DataId, DataElement>,
    data_edges: Vec<DataEdge>,
    out: BTreeMap<NodeId, Vec<EdgeId>>,
    inc: BTreeMap<NodeId, Vec<EdgeId>>,
    node_ids: IdAllocator,
    edge_ids: IdAllocator,
    data_ids: IdAllocator,
}

impl ProcessSchema {
    /// Creates an empty schema. Most users should go through
    /// [`crate::SchemaBuilder`] instead.
    pub fn empty(name: impl Into<String>) -> Self {
        Self {
            id: SchemaId(0),
            name: name.into(),
            version: 1,
            nodes: BTreeMap::new(),
            edges: BTreeMap::new(),
            data: BTreeMap::new(),
            data_edges: Vec::new(),
            out: BTreeMap::new(),
            inc: BTreeMap::new(),
            node_ids: IdAllocator::new(),
            edge_ids: IdAllocator::new(),
            data_ids: IdAllocator::new(),
        }
    }

    // ------------------------------------------------------------------
    // Read API: nodes
    // ------------------------------------------------------------------

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Result<&Node, ModelError> {
        self.nodes.get(&id).ok_or(ModelError::UnknownNode(id))
    }

    /// Whether the node exists.
    pub fn has_node(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// All node ids in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All activity nodes (the user-visible work items).
    pub fn activities(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values().filter(|n| n.kind == NodeKind::Activity)
    }

    /// The unique `Start` node. Panics on malformed schemas that lack one —
    /// builder-produced and verifier-approved schemas always have it.
    pub fn start_node(&self) -> NodeId {
        self.nodes
            .values()
            .find(|n| n.kind == NodeKind::Start)
            .map(|n| n.id)
            .expect("schema has no start node")
    }

    /// The unique `End` node (see [`ProcessSchema::start_node`]).
    pub fn end_node(&self) -> NodeId {
        self.nodes
            .values()
            .find(|n| n.kind == NodeKind::End)
            .map(|n| n.id)
            .expect("schema has no end node")
    }

    /// Finds the first node with the given name (names need not be unique;
    /// scenario code uses unique names for convenience).
    pub fn node_by_name(&self, name: &str) -> Option<&Node> {
        self.nodes.values().find(|n| n.name == name)
    }

    // ------------------------------------------------------------------
    // Read API: edges
    // ------------------------------------------------------------------

    /// Looks up an edge.
    pub fn edge(&self, id: EdgeId) -> Result<&Edge, ModelError> {
        self.edges.get(&id).ok_or(ModelError::UnknownEdge(id))
    }

    /// All edges in id order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.values()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Outgoing edges of a node (all kinds), in id order.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.out
            .get(&n)
            .into_iter()
            .flatten()
            .map(move |e| &self.edges[e])
    }

    /// Incoming edges of a node (all kinds), in id order.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.inc
            .get(&n)
            .into_iter()
            .flatten()
            .map(move |e| &self.edges[e])
    }

    /// Outgoing edges of the given kind.
    pub fn out_edges_kind(&self, n: NodeId, kind: EdgeKind) -> impl Iterator<Item = &Edge> + '_ {
        self.out_edges(n).filter(move |e| e.kind == kind)
    }

    /// Incoming edges of the given kind.
    pub fn in_edges_kind(&self, n: NodeId, kind: EdgeKind) -> impl Iterator<Item = &Edge> + '_ {
        self.in_edges(n).filter(move |e| e.kind == kind)
    }

    /// Control-flow successors of a node.
    pub fn control_successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges_kind(n, EdgeKind::Control).map(|e| e.to)
    }

    /// Control-flow predecessors of a node.
    pub fn control_predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges_kind(n, EdgeKind::Control).map(|e| e.from)
    }

    /// The unique control successor of a node that has exactly one, if any.
    pub fn sole_control_successor(&self, n: NodeId) -> Option<NodeId> {
        let mut it = self.control_successors(n);
        let first = it.next()?;
        if it.next().is_some() {
            None
        } else {
            Some(first)
        }
    }

    /// The unique control predecessor of a node that has exactly one, if any.
    pub fn sole_control_predecessor(&self, n: NodeId) -> Option<NodeId> {
        let mut it = self.control_predecessors(n);
        let first = it.next()?;
        if it.next().is_some() {
            None
        } else {
            Some(first)
        }
    }

    /// Finds an edge of the given kind between two nodes.
    pub fn edge_between(&self, from: NodeId, to: NodeId, kind: EdgeKind) -> Option<&Edge> {
        self.out_edges(from).find(|e| e.to == to && e.kind == kind)
    }

    /// All loop edges of the schema.
    pub fn loop_edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.values().filter(|e| e.kind == EdgeKind::Loop)
    }

    /// All sync edges of the schema.
    pub fn sync_edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.values().filter(|e| e.kind == EdgeKind::Sync)
    }

    // ------------------------------------------------------------------
    // Read API: data
    // ------------------------------------------------------------------

    /// Looks up a data element.
    pub fn data_element(&self, id: DataId) -> Result<&DataElement, ModelError> {
        self.data.get(&id).ok_or(ModelError::UnknownData(id))
    }

    /// All data elements in id order.
    pub fn data_elements(&self) -> impl Iterator<Item = &DataElement> {
        self.data.values()
    }

    /// Number of data elements.
    pub fn data_count(&self) -> usize {
        self.data.len()
    }

    /// Finds a data element by name.
    pub fn data_by_name(&self, name: &str) -> Option<&DataElement> {
        self.data.values().find(|d| d.name == name)
    }

    /// All data edges.
    pub fn data_edges(&self) -> &[DataEdge] {
        &self.data_edges
    }

    /// Data edges of one node.
    pub fn data_edges_of(&self, n: NodeId) -> impl Iterator<Item = &DataEdge> {
        self.data_edges.iter().filter(move |de| de.node == n)
    }

    /// Data elements read by a node (mandatory and optional).
    pub fn reads_of(&self, n: NodeId) -> impl Iterator<Item = &DataEdge> {
        self.data_edges_of(n)
            .filter(|de| de.mode == AccessMode::Read)
    }

    /// Data elements written by a node.
    pub fn writes_of(&self, n: NodeId) -> impl Iterator<Item = &DataEdge> {
        self.data_edges_of(n)
            .filter(|de| de.mode == AccessMode::Write)
    }

    /// All nodes writing the given data element.
    pub fn writers_of(&self, d: DataId) -> impl Iterator<Item = NodeId> + '_ {
        self.data_edges
            .iter()
            .filter(move |de| de.data == d && de.mode == AccessMode::Write)
            .map(|de| de.node)
    }

    /// All nodes reading the given data element.
    pub fn readers_of(&self, d: DataId) -> impl Iterator<Item = NodeId> + '_ {
        self.data_edges
            .iter()
            .filter(move |de| de.data == d && de.mode == AccessMode::Read)
            .map(|de| de.node)
    }

    // ------------------------------------------------------------------
    // Mutation API (used by the builder and by `adept-core` change ops)
    // ------------------------------------------------------------------

    /// First raw id of the *private* (instance-level) id space.
    ///
    /// Ad-hoc changes of single instances allocate node/edge/data ids at or
    /// above this floor (see [`ProcessSchema::reserve_private_id_space`]),
    /// while process *type* evolution stays below it. This keeps a biased
    /// instance's recorded ids stable when its bias is re-applied on top of
    /// a new schema version during migration — ids can never collide with
    /// ids the type change allocated.
    pub const PRIVATE_ID_BASE: u32 = 1 << 24;

    /// Moves all id allocators to the private id space (no-op if already
    /// there). Called when a schema copy is materialised for an ad-hoc
    /// instance change.
    pub fn reserve_private_id_space(&mut self) {
        self.node_ids.reserve_through(Self::PRIVATE_ID_BASE - 1);
        self.edge_ids.reserve_through(Self::PRIVATE_ID_BASE - 1);
        self.data_ids.reserve_through(Self::PRIVATE_ID_BASE - 1);
    }

    /// Whether all allocated ids are below the private id space (true for
    /// schemas produced by buildtime modelling and type evolution only).
    pub fn ids_below_private_space(&self) -> bool {
        self.node_ids.peek() <= Self::PRIVATE_ID_BASE
            && self.edge_ids.peek() <= Self::PRIVATE_ID_BASE
            && self.data_ids.peek() <= Self::PRIVATE_ID_BASE
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId(self.node_ids.alloc());
        self.nodes.insert(id, Node::new(id, name, kind));
        self.out.insert(id, Vec::new());
        self.inc.insert(id, Vec::new());
        id
    }

    /// Adds a node with a caller-chosen id (used when re-applying recorded
    /// change operations so instance markings stay valid). Fails if the id
    /// is taken.
    pub fn add_node_at(
        &mut self,
        id: NodeId,
        name: impl Into<String>,
        kind: NodeKind,
    ) -> Result<NodeId, ModelError> {
        if self.nodes.contains_key(&id) {
            return Err(ModelError::BuilderState(format!(
                "node id {id} already in use"
            )));
        }
        self.node_ids.reserve_through(id.0);
        self.nodes.insert(id, Node::new(id, name, kind));
        self.out.insert(id, Vec::new());
        self.inc.insert(id, Vec::new());
        Ok(id)
    }

    /// Adds an edge with a caller-chosen id (see [`ProcessSchema::add_node_at`]).
    pub fn add_edge_at(&mut self, id: EdgeId, mut e: Edge) -> Result<EdgeId, ModelError> {
        if self.edges.contains_key(&id) {
            return Err(ModelError::BuilderState(format!(
                "edge id {id} already in use"
            )));
        }
        if !self.has_node(e.from) {
            return Err(ModelError::UnknownNode(e.from));
        }
        if !self.has_node(e.to) {
            return Err(ModelError::UnknownNode(e.to));
        }
        if self.edge_between(e.from, e.to, e.kind).is_some() {
            return Err(ModelError::DuplicateEdge(e.from, e.to));
        }
        self.edge_ids.reserve_through(id.0);
        e.id = id;
        Self::insert_sorted(self.out.get_mut(&e.from).expect("indexed"), id);
        Self::insert_sorted(self.inc.get_mut(&e.to).expect("indexed"), id);
        self.edges.insert(id, e);
        Ok(id)
    }

    /// Adds a data element with a caller-chosen id
    /// (see [`ProcessSchema::add_node_at`]).
    pub fn add_data_at(
        &mut self,
        id: DataId,
        name: impl Into<String>,
        ty: ValueType,
    ) -> Result<DataId, ModelError> {
        if self.data.contains_key(&id) {
            return Err(ModelError::BuilderState(format!(
                "data id {id} already in use"
            )));
        }
        self.data_ids.reserve_through(id.0);
        self.data.insert(id, DataElement::new(id, name, ty));
        Ok(id)
    }

    /// Adds a control edge.
    pub fn add_control_edge(&mut self, from: NodeId, to: NodeId) -> Result<EdgeId, ModelError> {
        self.add_edge_inner(Edge::control(EdgeId(0), from, to))
    }

    /// Adds a guarded control edge (for XOR branches).
    pub fn add_guarded_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        guard: Option<Guard>,
    ) -> Result<EdgeId, ModelError> {
        let mut e = Edge::control(EdgeId(0), from, to);
        e.guard = guard;
        self.add_edge_inner(e)
    }

    /// Adds a sync edge (paper: `insertSyncEdge`). Structural admissibility
    /// is checked by the change-operation layer, not here.
    pub fn add_sync_edge(&mut self, from: NodeId, to: NodeId) -> Result<EdgeId, ModelError> {
        self.add_edge_inner(Edge::sync(EdgeId(0), from, to))
    }

    /// Adds a loop-back edge with a continuation condition.
    pub fn add_loop_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        cond: LoopCond,
    ) -> Result<EdgeId, ModelError> {
        self.add_edge_inner(Edge::loop_back(EdgeId(0), from, to, cond))
    }

    fn add_edge_inner(&mut self, mut e: Edge) -> Result<EdgeId, ModelError> {
        if !self.has_node(e.from) {
            return Err(ModelError::UnknownNode(e.from));
        }
        if !self.has_node(e.to) {
            return Err(ModelError::UnknownNode(e.to));
        }
        if self.edge_between(e.from, e.to, e.kind).is_some() {
            return Err(ModelError::DuplicateEdge(e.from, e.to));
        }
        let id = EdgeId(self.edge_ids.alloc());
        e.id = id;
        Self::insert_sorted(self.out.get_mut(&e.from).expect("indexed"), id);
        Self::insert_sorted(self.inc.get_mut(&e.to).expect("indexed"), id);
        self.edges.insert(id, e);
        Ok(id)
    }

    fn insert_sorted(v: &mut Vec<EdgeId>, id: EdgeId) {
        match v.binary_search(&id) {
            Ok(_) => {}
            Err(pos) => v.insert(pos, id),
        }
    }

    /// Removes an edge.
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<Edge, ModelError> {
        let e = self.edges.remove(&id).ok_or(ModelError::UnknownEdge(id))?;
        if let Some(v) = self.out.get_mut(&e.from) {
            v.retain(|x| *x != id);
        }
        if let Some(v) = self.inc.get_mut(&e.to) {
            v.retain(|x| *x != id);
        }
        Ok(e)
    }

    /// Removes a node. The node must have no incident edges; data edges of
    /// the node are removed automatically.
    pub fn remove_node(&mut self, id: NodeId) -> Result<Node, ModelError> {
        if !self.has_node(id) {
            return Err(ModelError::UnknownNode(id));
        }
        let incident =
            self.out.get(&id).map_or(0, Vec::len) + self.inc.get(&id).map_or(0, Vec::len);
        if incident > 0 {
            return Err(ModelError::NodeHasEdges(id));
        }
        self.out.remove(&id);
        self.inc.remove(&id);
        self.data_edges.retain(|de| de.node != id);
        Ok(self.nodes.remove(&id).expect("checked"))
    }

    /// Mutable access to a node (for attribute changes).
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, ModelError> {
        self.nodes.get_mut(&id).ok_or(ModelError::UnknownNode(id))
    }

    /// Mutable access to an edge (for guard changes).
    pub fn edge_mut(&mut self, id: EdgeId) -> Result<&mut Edge, ModelError> {
        self.edges.get_mut(&id).ok_or(ModelError::UnknownEdge(id))
    }

    /// Adds a data element and returns its id.
    pub fn add_data(&mut self, name: impl Into<String>, ty: ValueType) -> DataId {
        let id = DataId(self.data_ids.alloc());
        self.data.insert(id, DataElement::new(id, name, ty));
        id
    }

    /// Removes a data element. All its data edges are removed too.
    pub fn remove_data(&mut self, id: DataId) -> Result<DataElement, ModelError> {
        let d = self.data.remove(&id).ok_or(ModelError::UnknownData(id))?;
        self.data_edges.retain(|de| de.data != id);
        Ok(d)
    }

    /// Adds a data edge.
    pub fn add_data_edge(&mut self, de: DataEdge) -> Result<(), ModelError> {
        if !self.has_node(de.node) {
            return Err(ModelError::UnknownNode(de.node));
        }
        if !self.data.contains_key(&de.data) {
            return Err(ModelError::UnknownData(de.data));
        }
        if self
            .data_edges
            .iter()
            .any(|x| x.node == de.node && x.data == de.data && x.mode == de.mode)
        {
            return Err(ModelError::DuplicateDataEdge(de.node, de.data));
        }
        self.data_edges.push(de);
        Ok(())
    }

    /// Removes a data edge (matched by node, data and mode).
    pub fn remove_data_edge(
        &mut self,
        node: NodeId,
        data: DataId,
        mode: AccessMode,
    ) -> Result<(), ModelError> {
        let before = self.data_edges.len();
        self.data_edges
            .retain(|x| !(x.node == node && x.data == data && x.mode == mode));
        if self.data_edges.len() == before {
            return Err(ModelError::UnknownData(data));
        }
        Ok(())
    }

    /// Approximate deep size in bytes of the schema representation, used by
    /// the Fig. 2 storage experiments.
    pub fn approx_size(&self) -> usize {
        use std::mem::size_of;
        let mut s = size_of::<Self>();
        s += self.name.capacity();
        for n in self.nodes.values() {
            s += size_of::<NodeId>() + size_of::<Node>() + n.name.capacity();
            s += n.attrs.role.as_ref().map_or(0, |x| x.capacity());
            s += n.attrs.application.as_ref().map_or(0, |x| x.capacity());
            s += n.attrs.description.as_ref().map_or(0, |x| x.capacity());
        }
        for _e in self.edges.values() {
            s += size_of::<EdgeId>() + size_of::<Edge>();
        }
        for d in self.data.values() {
            s += size_of::<DataId>() + size_of::<DataElement>() + d.name.capacity();
        }
        s += self.data_edges.capacity() * size_of::<DataEdge>();
        for (_, v) in self.out.iter().chain(self.inc.iter()) {
            s +=
                size_of::<NodeId>() + size_of::<Vec<EdgeId>>() + v.capacity() * size_of::<EdgeId>();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (ProcessSchema, NodeId, NodeId, NodeId) {
        let mut s = ProcessSchema::empty("t");
        let start = s.add_node("start", NodeKind::Start);
        let a = s.add_node("a", NodeKind::Activity);
        let end = s.add_node("end", NodeKind::End);
        s.add_control_edge(start, a).unwrap();
        s.add_control_edge(a, end).unwrap();
        (s, start, a, end)
    }

    #[test]
    fn build_and_query() {
        let (s, start, a, end) = tiny();
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.edge_count(), 2);
        assert_eq!(s.start_node(), start);
        assert_eq!(s.end_node(), end);
        assert_eq!(s.control_successors(start).collect::<Vec<_>>(), vec![a]);
        assert_eq!(s.control_predecessors(end).collect::<Vec<_>>(), vec![a]);
        assert_eq!(s.sole_control_successor(a), Some(end));
        assert_eq!(s.sole_control_predecessor(a), Some(start));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let (mut s, start, a, _) = tiny();
        assert_eq!(
            s.add_control_edge(start, a),
            Err(ModelError::DuplicateEdge(start, a))
        );
        // A sync edge between the same endpoints is a different kind: allowed.
        s.add_sync_edge(start, a).unwrap();
    }

    #[test]
    fn remove_node_requires_detached() {
        let (mut s, _, a, _) = tiny();
        assert_eq!(s.remove_node(a), Err(ModelError::NodeHasEdges(a)));
        let edges: Vec<EdgeId> = s
            .edges()
            .filter(|e| e.from == a || e.to == a)
            .map(|e| e.id)
            .collect();
        for e in edges {
            s.remove_edge(e).unwrap();
        }
        s.remove_node(a).unwrap();
        assert!(!s.has_node(a));
    }

    #[test]
    fn node_ids_are_not_reused() {
        let (mut s, _, a, _) = tiny();
        let edges: Vec<EdgeId> = s
            .edges()
            .filter(|e| e.from == a || e.to == a)
            .map(|e| e.id)
            .collect();
        for e in edges {
            s.remove_edge(e).unwrap();
        }
        s.remove_node(a).unwrap();
        let b = s.add_node("b", NodeKind::Activity);
        assert_ne!(a, b);
    }

    #[test]
    fn data_edges_roundtrip() {
        let (mut s, _, a, _) = tiny();
        let d = s.add_data("amount", ValueType::Int);
        s.add_data_edge(DataEdge::write(a, d)).unwrap();
        s.add_data_edge(DataEdge::read(a, d)).unwrap();
        assert_eq!(
            s.add_data_edge(DataEdge::read(a, d)),
            Err(ModelError::DuplicateDataEdge(a, d))
        );
        assert_eq!(s.writers_of(d).collect::<Vec<_>>(), vec![a]);
        assert_eq!(s.readers_of(d).collect::<Vec<_>>(), vec![a]);
        s.remove_data_edge(a, d, AccessMode::Read).unwrap();
        assert_eq!(s.readers_of(d).count(), 0);
    }

    #[test]
    fn serde_roundtrip_preserves_schema() {
        let (s, ..) = tiny();
        let json = serde_json_roundtrip(&s);
        assert_eq!(s, json);
    }

    fn serde_json_roundtrip(s: &ProcessSchema) -> ProcessSchema {
        // serde_json is not a dependency; use the self-describing bincode-free
        // round trip through serde's derive with a simple in-memory format:
        // we rely on `serde_test`-style equivalence via clone here instead.
        // (Integration tests exercise real serialisation through the storage
        // crate.)
        s.clone()
    }

    #[test]
    fn approx_size_grows_with_content() {
        let (s, ..) = tiny();
        let mut bigger = s.clone();
        for i in 0..32 {
            bigger.add_node(format!("x{i}"), NodeKind::Activity);
        }
        assert!(bigger.approx_size() > s.approx_size());
    }
}
