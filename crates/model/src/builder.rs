//! Fluent, stack-based construction of block-structured schemas.
//!
//! The builder mirrors how ADEPT2's buildtime client composes templates:
//! sequences, AND blocks, XOR blocks with guarded branches, loop blocks,
//! data elements and data edges, plus explicit sync edges. Every schema the
//! builder produces is block-structured by construction; `adept-verify`
//! re-checks the result (and everything later change operations produce).

use crate::data::{DataEdge, ValueType};
use crate::edge::{Guard, LoopCond};
use crate::error::ModelError;
use crate::ids::{DataId, NodeId};
use crate::node::{ActivityAttributes, NodeKind};
use crate::schema::ProcessSchema;

/// How an in-progress branch of a split block currently ends.
#[derive(Debug, Clone)]
enum BranchEnd {
    /// Branch has nodes; this is its current tail.
    Tail(NodeId),
    /// Branch is empty so far; an eventual guard for the split-side edge.
    Empty(Option<Guard>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SplitKind {
    And,
    Xor,
}

#[derive(Debug)]
enum Frame {
    /// The top-level sequence (or loop body / branch body is handled by the
    /// frames below). `last` is the node new elements attach to.
    Seq {
        last: NodeId,
    },
    Split {
        kind: SplitKind,
        split: NodeId,
        finished: Vec<BranchEnd>,
        current: Option<BranchEnd>,
        pending_guard: Option<Guard>,
    },
    Loop {
        start: NodeId,
        last: NodeId,
    },
}

/// Fluent builder for [`ProcessSchema`]s.
///
/// See the crate-level docs for a complete example.
#[derive(Debug)]
pub struct SchemaBuilder {
    schema: ProcessSchema,
    frames: Vec<Frame>,
    errors: Vec<ModelError>,
}

impl SchemaBuilder {
    /// Starts a new schema with the given process type name. A `Start` node
    /// is created implicitly.
    pub fn new(name: impl Into<String>) -> Self {
        let mut schema = ProcessSchema::empty(name);
        let start = schema.add_node("start", NodeKind::Start);
        Self {
            schema,
            frames: vec![Frame::Seq { last: start }],
            errors: Vec::new(),
        }
    }

    fn fail(&mut self, msg: impl Into<String>) {
        self.errors.push(ModelError::BuilderState(msg.into()));
    }

    /// Appends a node to the current sequence position and returns its id.
    fn append(&mut self, name: &str, kind: NodeKind) -> NodeId {
        let node = self.schema.add_node(name, kind);
        match self.frames.last_mut() {
            Some(Frame::Seq { last }) | Some(Frame::Loop { last, .. }) => {
                let from = *last;
                if let Err(e) = self.schema.add_control_edge(from, node) {
                    self.errors.push(e);
                }
                match self.frames.last_mut() {
                    Some(Frame::Seq { last }) | Some(Frame::Loop { last, .. }) => *last = node,
                    _ => unreachable!(),
                }
            }
            Some(Frame::Split {
                split,
                current,
                pending_guard,
                ..
            }) => match current {
                None => {
                    self.errors.push(ModelError::BuilderState(format!(
                        "node \"{name}\" added inside a split block before branch()/case()"
                    )));
                }
                Some(BranchEnd::Tail(t)) => {
                    let from = *t;
                    *current = Some(BranchEnd::Tail(node));
                    if let Err(e) = self.schema.add_control_edge(from, node) {
                        self.errors.push(e);
                    }
                }
                Some(BranchEnd::Empty(_)) => {
                    let from = *split;
                    let guard = pending_guard.take();
                    *current = Some(BranchEnd::Tail(node));
                    if let Err(e) = self.schema.add_guarded_edge(from, node, guard) {
                        self.errors.push(e);
                    }
                }
            },
            None => self.fail("builder already consumed"),
        }
        node
    }

    /// Sets the sequence position to an existing node without adding edges
    /// (used after closing a block: the join becomes the new tail).
    fn set_tail(&mut self, node: NodeId) {
        match self.frames.last_mut() {
            Some(Frame::Seq { last }) | Some(Frame::Loop { last, .. }) => *last = node,
            Some(Frame::Split { current, .. }) => match current {
                Some(_) => *current = Some(BranchEnd::Tail(node)),
                None => self.fail("block closed inside a split before branch()/case()"),
            },
            None => self.fail("builder already consumed"),
        }
    }

    // ------------------------------------------------------------------
    // Sequence elements
    // ------------------------------------------------------------------

    /// Appends an activity.
    pub fn activity(&mut self, name: &str) -> NodeId {
        self.append(name, NodeKind::Activity)
    }

    /// Appends an activity and configures its attributes.
    pub fn activity_with(
        &mut self,
        name: &str,
        configure: impl FnOnce(&mut ActivityAttributes),
    ) -> NodeId {
        let id = self.append(name, NodeKind::Activity);
        if let Ok(n) = self.schema.node_mut(id) {
            configure(&mut n.attrs);
        }
        id
    }

    /// Appends a silent `Null` node (completes automatically at runtime).
    pub fn null_activity(&mut self, name: &str) -> NodeId {
        self.append(name, NodeKind::Null)
    }

    // ------------------------------------------------------------------
    // Parallel (AND) blocks
    // ------------------------------------------------------------------

    /// Opens a parallel block. Call [`SchemaBuilder::branch`] before adding
    /// nodes, and close with [`SchemaBuilder::and_join`].
    pub fn and_split(&mut self) -> NodeId {
        let split = self.append("and-split", NodeKind::AndSplit);
        self.frames.push(Frame::Split {
            kind: SplitKind::And,
            split,
            finished: Vec::new(),
            current: None,
            pending_guard: None,
        });
        split
    }

    /// Starts the next branch of the innermost parallel block.
    pub fn branch(&mut self) {
        match self.frames.last_mut() {
            Some(Frame::Split {
                kind: SplitKind::And,
                finished,
                current,
                pending_guard,
                ..
            }) => {
                if let Some(b) = current.take() {
                    finished.push(b);
                }
                *pending_guard = None;
                *current = Some(BranchEnd::Empty(None));
            }
            _ => self.fail("branch() outside a parallel block (use case() in XOR blocks)"),
        }
    }

    /// Closes the innermost parallel block and returns the join node.
    pub fn and_join(&mut self) -> NodeId {
        self.close_split(SplitKind::And, NodeKind::AndJoin, "and-join")
    }

    // ------------------------------------------------------------------
    // Conditional (XOR) blocks
    // ------------------------------------------------------------------

    /// Opens a conditional block. Start branches with
    /// [`SchemaBuilder::case`] / [`SchemaBuilder::case_when`] and close with
    /// [`SchemaBuilder::xor_join`].
    pub fn xor_split(&mut self) -> NodeId {
        let split = self.append("xor-split", NodeKind::XorSplit);
        self.frames.push(Frame::Split {
            kind: SplitKind::Xor,
            split,
            finished: Vec::new(),
            current: None,
            pending_guard: None,
        });
        split
    }

    /// Starts an unguarded (else/default) case of the innermost XOR block.
    pub fn case(&mut self) {
        self.case_inner(None);
    }

    /// Starts a guarded case of the innermost XOR block.
    pub fn case_when(&mut self, guard: Guard) {
        self.case_inner(Some(guard));
    }

    fn case_inner(&mut self, guard: Option<Guard>) {
        match self.frames.last_mut() {
            Some(Frame::Split {
                kind: SplitKind::Xor,
                finished,
                current,
                pending_guard,
                ..
            }) => {
                if let Some(b) = current.take() {
                    finished.push(b);
                }
                *pending_guard = guard.clone();
                *current = Some(BranchEnd::Empty(guard));
            }
            _ => self.fail("case() outside a conditional block (use branch() in AND blocks)"),
        }
    }

    /// Closes the innermost conditional block and returns the join node.
    pub fn xor_join(&mut self) -> NodeId {
        self.close_split(SplitKind::Xor, NodeKind::XorJoin, "xor-join")
    }

    fn close_split(&mut self, kind: SplitKind, join_kind: NodeKind, join_name: &str) -> NodeId {
        let frame = self.frames.pop();
        match frame {
            Some(Frame::Split {
                kind: k,
                split,
                mut finished,
                current,
                ..
            }) if k == kind => {
                if let Some(b) = current {
                    finished.push(b);
                }
                let join = self.schema.add_node(join_name, join_kind);
                if finished.len() < 2 {
                    self.fail(format!(
                        "split block at {split} has {} branch(es); at least 2 required",
                        finished.len()
                    ));
                }
                let mut empty_seen = false;
                for b in finished {
                    let res = match b {
                        BranchEnd::Tail(t) => self.schema.add_control_edge(t, join),
                        BranchEnd::Empty(g) => {
                            if empty_seen {
                                self.fail(format!(
                                    "split block at {split} has more than one empty branch"
                                ));
                            }
                            empty_seen = true;
                            self.schema.add_guarded_edge(split, join, g)
                        }
                    };
                    if let Err(e) = res {
                        self.errors.push(e);
                    }
                }
                self.set_tail(join);
                join
            }
            other => {
                if let Some(f) = other {
                    self.frames.push(f);
                }
                self.fail(format!("{join_name} without matching split"));
                // Return a dangling node so callers can keep chaining; the
                // error surfaces at build().
                self.schema.add_node(join_name, join_kind)
            }
        }
    }

    // ------------------------------------------------------------------
    // Loop blocks
    // ------------------------------------------------------------------

    /// Opens a loop block; close with [`SchemaBuilder::loop_end`].
    pub fn loop_start(&mut self) -> NodeId {
        let start = self.append("loop-start", NodeKind::LoopStart);
        self.frames.push(Frame::Loop { start, last: start });
        start
    }

    /// Closes the innermost loop block with the given continuation
    /// condition and returns the `LoopEnd` node.
    pub fn loop_end(&mut self, cond: LoopCond) -> NodeId {
        match self.frames.pop() {
            Some(Frame::Loop { start, last }) => {
                let le = self.schema.add_node("loop-end", NodeKind::LoopEnd);
                if let Err(e) = self.schema.add_control_edge(last, le) {
                    self.errors.push(e);
                }
                if let Err(e) = self.schema.add_loop_edge(le, start, cond) {
                    self.errors.push(e);
                }
                self.set_tail(le);
                le
            }
            other => {
                if let Some(f) = other {
                    self.frames.push(f);
                }
                self.fail("loop_end() without matching loop_start()");
                self.schema.add_node("loop-end", NodeKind::LoopEnd)
            }
        }
    }

    // ------------------------------------------------------------------
    // Data flow and sync edges
    // ------------------------------------------------------------------

    /// Declares a data element.
    pub fn data(&mut self, name: &str, ty: ValueType) -> DataId {
        self.schema.add_data(name, ty)
    }

    /// Adds a mandatory read data edge.
    pub fn read(&mut self, node: NodeId, data: DataId) {
        if let Err(e) = self.schema.add_data_edge(DataEdge::read(node, data)) {
            self.errors.push(e);
        }
    }

    /// Adds an optional read data edge.
    pub fn optional_read(&mut self, node: NodeId, data: DataId) {
        if let Err(e) = self
            .schema
            .add_data_edge(DataEdge::optional_read(node, data))
        {
            self.errors.push(e);
        }
    }

    /// Adds a write data edge.
    pub fn write(&mut self, node: NodeId, data: DataId) {
        if let Err(e) = self.schema.add_data_edge(DataEdge::write(node, data)) {
            self.errors.push(e);
        }
    }

    /// Adds a sync edge between two nodes (validated by `adept-verify`).
    pub fn sync(&mut self, from: NodeId, to: NodeId) {
        if let Err(e) = self.schema.add_sync_edge(from, to) {
            self.errors.push(e);
        }
    }

    // ------------------------------------------------------------------
    // Finish
    // ------------------------------------------------------------------

    /// Finishes the schema: closes the top-level sequence with an `End`
    /// node and returns the schema, or the first construction error.
    pub fn build(mut self) -> Result<ProcessSchema, ModelError> {
        if self.frames.len() != 1 {
            self.fail(format!(
                "{} unclosed block(s) at build()",
                self.frames.len().saturating_sub(1)
            ));
        }
        if let Some(Frame::Seq { last }) = self.frames.last().copied_seq() {
            let end = self.schema.add_node("end", NodeKind::End);
            if let Err(e) = self.schema.add_control_edge(last, end) {
                self.errors.push(e);
            }
        } else {
            self.fail("top frame is not the root sequence");
        }
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        Ok(self.schema)
    }
}

/// Small helper to read a `Seq` frame without moving the enum (keeps the
/// borrow checker happy in `build`).
trait SeqPeek {
    fn copied_seq(&self) -> Option<Frame>;
}

impl SeqPeek for Option<&Frame> {
    fn copied_seq(&self) -> Option<Frame> {
        match self {
            Some(Frame::Seq { last }) => Some(Frame::Seq { last: *last }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Value;
    use crate::edge::{CmpOp, EdgeKind};

    #[test]
    fn sequence_only() {
        let mut b = SchemaBuilder::new("seq");
        let a = b.activity("a");
        let c = b.activity("c");
        let s = b.build().unwrap();
        assert_eq!(s.sole_control_successor(a), Some(c));
        assert_eq!(s.control_successors(s.start_node()).next(), Some(a));
        assert_eq!(s.sole_control_successor(c), Some(s.end_node()));
    }

    #[test]
    fn parallel_block_shape() {
        let mut b = SchemaBuilder::new("par");
        b.and_split();
        b.branch();
        b.activity("a");
        b.branch();
        b.activity("b");
        let join = b.and_join();
        let s = b.build().unwrap();
        let split = s.nodes().find(|n| n.kind == NodeKind::AndSplit).unwrap().id;
        assert_eq!(s.control_successors(split).count(), 2);
        assert_eq!(s.control_predecessors(join).count(), 2);
    }

    #[test]
    fn xor_with_guards_and_else() {
        let mut b = SchemaBuilder::new("xor");
        let amount = b.data("amount", ValueType::Int);
        let g = Guard::new(amount, CmpOp::Ge, Value::Int(1000));
        b.xor_split();
        b.case_when(g.clone());
        b.activity("manual approval");
        b.case();
        b.activity("auto approval");
        b.xor_join();
        let s = b.build().unwrap();
        let split = s.nodes().find(|n| n.kind == NodeKind::XorSplit).unwrap().id;
        let guards: Vec<Option<Guard>> = s
            .out_edges_kind(split, EdgeKind::Control)
            .map(|e| e.guard.clone())
            .collect();
        assert_eq!(guards.len(), 2);
        assert!(guards.contains(&Some(g)));
        assert!(guards.contains(&None));
    }

    #[test]
    fn empty_branch_connects_split_to_join() {
        let mut b = SchemaBuilder::new("skip");
        b.xor_split();
        b.case();
        b.activity("extra step");
        b.case();
        // empty else branch
        let join = b.xor_join();
        let s = b.build().unwrap();
        let split = s.nodes().find(|n| n.kind == NodeKind::XorSplit).unwrap().id;
        assert!(s.edge_between(split, join, EdgeKind::Control).is_some());
    }

    #[test]
    fn loop_block_wiring() {
        let mut b = SchemaBuilder::new("loop");
        b.loop_start();
        b.activity("retry");
        let le = b.loop_end(LoopCond::Times(3));
        let s = b.build().unwrap();
        let ls = s
            .nodes()
            .find(|n| n.kind == NodeKind::LoopStart)
            .unwrap()
            .id;
        let loop_edge = s.edge_between(le, ls, EdgeKind::Loop).unwrap();
        assert_eq!(loop_edge.loop_cond, Some(LoopCond::Times(3)));
    }

    #[test]
    fn unbalanced_blocks_error() {
        let mut b = SchemaBuilder::new("bad");
        b.and_split();
        b.branch();
        b.activity("a");
        assert!(matches!(b.build(), Err(ModelError::BuilderState(_))));
    }

    #[test]
    fn join_without_split_errors() {
        let mut b = SchemaBuilder::new("bad");
        b.and_join();
        assert!(matches!(b.build(), Err(ModelError::BuilderState(_))));
    }

    #[test]
    fn node_outside_branch_errors() {
        let mut b = SchemaBuilder::new("bad");
        b.and_split();
        b.activity("a"); // no branch() yet
        assert!(matches!(b.build(), Err(ModelError::BuilderState(_))));
    }

    #[test]
    fn single_branch_block_errors() {
        let mut b = SchemaBuilder::new("bad");
        b.and_split();
        b.branch();
        b.activity("a");
        b.and_join();
        assert!(matches!(b.build(), Err(ModelError::BuilderState(_))));
    }

    #[test]
    fn nested_blocks() {
        let mut b = SchemaBuilder::new("nested");
        b.and_split();
        b.branch();
        b.xor_split();
        b.case();
        b.activity("x");
        b.case();
        b.activity("y");
        b.xor_join();
        b.branch();
        b.loop_start();
        b.activity("z");
        b.loop_end(LoopCond::External);
        b.and_join();
        let s = b.build().unwrap();
        assert!(s.nodes().any(|n| n.kind == NodeKind::XorSplit));
        assert!(s.nodes().any(|n| n.kind == NodeKind::LoopStart));
    }
}
