//! Block-structure analysis: recovering the nesting of AND/XOR/loop blocks
//! from the control backbone of a schema.
//!
//! The builder guarantees block structure at construction time, but ad-hoc
//! and type changes repeatedly *re-derive* structure (e.g. to validate a new
//! sync edge or to find the minimal block around an insertion point), so the
//! analysis works on any schema whose control backbone is a DAG with
//! matching splits and joins — exactly what `adept-verify` certifies.

use crate::edge::EdgeKind;
use crate::graph::{self, EdgeFilter};
use crate::ids::NodeId;
use crate::node::NodeKind;
use crate::schema::ProcessSchema;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The kind of a structural block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// AND block (parallel branching).
    Parallel,
    /// XOR block (conditional branching).
    Conditional,
    /// Loop block.
    Loop,
}

/// One recovered block: the region between a split and its matching join.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInfo {
    /// Block kind.
    pub kind: BlockKind,
    /// The opening node (`AndSplit`, `XorSplit` or `LoopStart`).
    pub split: NodeId,
    /// The closing node (`AndJoin`, `XorJoin` or `LoopEnd`).
    pub join: NodeId,
    /// Interior nodes of each branch, in branch order (branch order follows
    /// the id order of the edges leaving the split). Loop blocks have one
    /// "branch": the loop body.
    pub branches: Vec<BTreeSet<NodeId>>,
}

impl BlockInfo {
    /// All interior nodes (union of branches), excluding split and join.
    pub fn interior(&self) -> BTreeSet<NodeId> {
        let mut s = BTreeSet::new();
        for b in &self.branches {
            s.extend(b.iter().copied());
        }
        s
    }

    /// The branch index containing `n`, if any.
    pub fn branch_of(&self, n: NodeId) -> Option<usize> {
        self.branches.iter().position(|b| b.contains(&n))
    }
}

/// Errors from block analysis on malformed schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// The control backbone contains a cycle.
    CyclicBackbone,
    /// A split has no matching join of the required kind.
    UnmatchedSplit(NodeId),
    /// A loop edge does not connect a `LoopEnd` to a `LoopStart`.
    MalformedLoopEdge(NodeId, NodeId),
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockError::CyclicBackbone => f.write_str("control backbone is cyclic"),
            BlockError::UnmatchedSplit(n) => write!(f, "split {n} has no matching join"),
            BlockError::MalformedLoopEdge(a, b) => {
                write!(
                    f,
                    "loop edge {a} -> {b} does not connect LoopEnd to LoopStart"
                )
            }
        }
    }
}

impl std::error::Error for BlockError {}

/// The block structure of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Blocks {
    /// All blocks, indexed by their split node.
    pub by_split: BTreeMap<NodeId, BlockInfo>,
    /// Enclosing blocks per node, outermost first: `(split, branch_index)`.
    enclosing: BTreeMap<NodeId, Vec<(NodeId, usize)>>,
}

impl Blocks {
    /// Analyses the block structure of a schema.
    pub fn analyze(schema: &ProcessSchema) -> Result<Blocks, BlockError> {
        if !graph::is_acyclic(schema, EdgeFilter::CONTROL) {
            return Err(BlockError::CyclicBackbone);
        }
        let end = schema
            .nodes()
            .find(|n| n.kind == NodeKind::End)
            .map(|n| n.id);
        let ipdom = match end {
            Some(e) => graph::immediate_postdominators(schema, e),
            None => BTreeMap::new(),
        };

        let mut by_split: BTreeMap<NodeId, BlockInfo> = BTreeMap::new();

        // Loop blocks are matched by their loop edge.
        for e in schema.loop_edges() {
            let (le, ls) = (e.from, e.to);
            let ok = schema.node(ls).map(|n| n.kind) == Ok(NodeKind::LoopStart)
                && schema.node(le).map(|n| n.kind) == Ok(NodeKind::LoopEnd);
            if !ok {
                return Err(BlockError::MalformedLoopEdge(le, ls));
            }
            let body = region_between(schema, ls, le);
            by_split.insert(
                ls,
                BlockInfo {
                    kind: BlockKind::Loop,
                    split: ls,
                    join: le,
                    branches: vec![body],
                },
            );
        }

        // AND/XOR blocks are matched via immediate postdominators.
        for node in schema.nodes() {
            let kind = match node.kind {
                NodeKind::AndSplit => BlockKind::Parallel,
                NodeKind::XorSplit => BlockKind::Conditional,
                _ => continue,
            };
            let join = *ipdom
                .get(&node.id)
                .ok_or(BlockError::UnmatchedSplit(node.id))?;
            let expect = match kind {
                BlockKind::Parallel => NodeKind::AndJoin,
                BlockKind::Conditional => NodeKind::XorJoin,
                BlockKind::Loop => unreachable!(),
            };
            if schema.node(join).map(|n| n.kind) != Ok(expect) {
                return Err(BlockError::UnmatchedSplit(node.id));
            }
            let mut branches = Vec::new();
            for e in schema.out_edges_kind(node.id, EdgeKind::Control) {
                branches.push(branch_region(schema, e.to, join));
            }
            by_split.insert(
                node.id,
                BlockInfo {
                    kind,
                    split: node.id,
                    join,
                    branches,
                },
            );
        }

        // Enclosing-block stacks, outermost first. A block B1 encloses B2
        // iff B2's split lies in B1's interior. Sort by interior size
        // (larger = outer).
        let mut enclosing: BTreeMap<NodeId, Vec<(NodeId, usize)>> = BTreeMap::new();
        for n in schema.node_ids() {
            let mut stack: Vec<(usize, NodeId, usize)> = Vec::new();
            for (split, info) in &by_split {
                if let Some(bi) = info.branch_of(n) {
                    stack.push((info.interior().len(), *split, bi));
                }
            }
            stack.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            enclosing.insert(n, stack.into_iter().map(|(_, s, b)| (s, b)).collect());
        }

        Ok(Blocks {
            by_split,
            enclosing,
        })
    }

    /// The blocks enclosing `n`, outermost first, as `(split, branch_index)`.
    pub fn enclosing(&self, n: NodeId) -> &[(NodeId, usize)] {
        self.enclosing.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The innermost block enclosing `n`, if any.
    pub fn innermost(&self, n: NodeId) -> Option<&BlockInfo> {
        self.enclosing(n)
            .last()
            .map(|(split, _)| &self.by_split[split])
    }

    /// The innermost *loop* block enclosing `n`, if any.
    pub fn innermost_loop(&self, n: NodeId) -> Option<&BlockInfo> {
        self.enclosing(n)
            .iter()
            .rev()
            .map(|(split, _)| &self.by_split[split])
            .find(|b| b.kind == BlockKind::Loop)
    }

    /// If `a` and `b` lie in *different branches of the same parallel
    /// block*, returns that block's split node. This is the structural
    /// precondition for sync edges: only then are the nodes truly
    /// concurrent and a sync edge meaningful (and deadlock-free by
    /// construction when directed consistently).
    pub fn parallel_separator(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        let ea = self.enclosing(a);
        let eb = self.enclosing(b);
        // Walk from innermost to outermost common block.
        for (split_a, branch_a) in ea.iter().rev() {
            if self.by_split[split_a].kind != BlockKind::Parallel {
                continue;
            }
            for (split_b, branch_b) in eb.iter().rev() {
                if split_a == split_b && branch_a != branch_b {
                    return Some(*split_a);
                }
            }
        }
        None
    }

    /// Whether `a` and `b` lie inside the same set of loop blocks (sync
    /// edges must not cross loop boundaries).
    pub fn same_loop_context(&self, a: NodeId, b: NodeId) -> bool {
        let la: Vec<NodeId> = self
            .enclosing(a)
            .iter()
            .filter(|(s, _)| self.by_split[s].kind == BlockKind::Loop)
            .map(|(s, _)| *s)
            .collect();
        let lb: Vec<NodeId> = self
            .enclosing(b)
            .iter()
            .filter(|(s, _)| self.by_split[s].kind == BlockKind::Loop)
            .map(|(s, _)| *s)
            .collect();
        la == lb
    }
}

/// Interior nodes strictly between `from` and `to` along control edges:
/// reachable from `from` without passing through `to`, intersected with
/// nodes that reach `to`.
fn region_between(schema: &ProcessSchema, from: NodeId, to: NodeId) -> BTreeSet<NodeId> {
    let fwd = bounded_reach(schema, from, to);
    let back = graph::reaching_to(schema, to, EdgeFilter::CONTROL);
    fwd.intersection(&back)
        .copied()
        .filter(|n| *n != from && *n != to)
        .collect()
}

/// The branch region rooted at `head` (inclusive) up to but excluding `join`.
fn branch_region(schema: &ProcessSchema, head: NodeId, join: NodeId) -> BTreeSet<NodeId> {
    if head == join {
        return BTreeSet::new(); // empty branch: split connects directly to join
    }
    let mut r = bounded_reach(schema, head, join);
    r.remove(&join);
    r
}

/// Forward reach over control edges from `from` (inclusive), not expanding
/// through `stop`.
fn bounded_reach(schema: &ProcessSchema, from: NodeId, stop: NodeId) -> BTreeSet<NodeId> {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    seen.insert(from);
    while let Some(n) = stack.pop() {
        if n == stop {
            continue;
        }
        for e in schema.out_edges_kind(n, EdgeKind::Control) {
            if seen.insert(e.to) {
                stack.push(e.to);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;

    /// start -> a -> AND( b | c -> d ) -> e -> end, plus a XOR inside branch 2.
    fn nested() -> (ProcessSchema, BTreeMap<String, NodeId>) {
        let mut b = SchemaBuilder::new("nested");
        let mut names = BTreeMap::new();
        names.insert("a".to_string(), b.activity("a"));
        b.and_split();
        b.branch();
        names.insert("b".to_string(), b.activity("b"));
        b.branch();
        names.insert("c".to_string(), b.activity("c"));
        b.xor_split();
        b.case();
        names.insert("x1".to_string(), b.activity("x1"));
        b.case();
        names.insert("x2".to_string(), b.activity("x2"));
        b.xor_join();
        names.insert("d".to_string(), b.activity("d"));
        b.and_join();
        names.insert("e".to_string(), b.activity("e"));
        let s = b.build().unwrap();
        (s, names)
    }

    #[test]
    fn recovers_parallel_block() {
        let (s, n) = nested();
        let blocks = Blocks::analyze(&s).unwrap();
        let and_split = s.nodes().find(|x| x.kind == NodeKind::AndSplit).unwrap().id;
        let info = &blocks.by_split[&and_split];
        assert_eq!(info.kind, BlockKind::Parallel);
        assert_eq!(info.branches.len(), 2);
        assert_eq!(info.branch_of(n["b"]), Some(0));
        assert!(info.branch_of(n["c"]).is_some());
        assert_ne!(info.branch_of(n["b"]), info.branch_of(n["c"]));
        assert_eq!(info.branch_of(n["a"]), None);
        assert_eq!(info.branch_of(n["e"]), None);
    }

    #[test]
    fn parallel_separator_identifies_concurrency() {
        let (s, n) = nested();
        let blocks = Blocks::analyze(&s).unwrap();
        assert!(blocks.parallel_separator(n["b"], n["c"]).is_some());
        assert!(blocks.parallel_separator(n["b"], n["x1"]).is_some());
        assert!(blocks.parallel_separator(n["c"], n["d"]).is_none());
        assert!(blocks.parallel_separator(n["a"], n["b"]).is_none());
        assert!(blocks.parallel_separator(n["x1"], n["x2"]).is_none());
    }

    #[test]
    fn nesting_order_is_outermost_first() {
        let (s, n) = nested();
        let blocks = Blocks::analyze(&s).unwrap();
        let stack = blocks.enclosing(n["x1"]);
        assert_eq!(stack.len(), 2);
        let outer = &blocks.by_split[&stack[0].0];
        let inner = &blocks.by_split[&stack[1].0];
        assert_eq!(outer.kind, BlockKind::Parallel);
        assert_eq!(inner.kind, BlockKind::Conditional);
    }

    #[test]
    fn loop_block_membership() {
        let mut b = SchemaBuilder::new("loop");
        let a = b.activity("a");
        b.loop_start();
        let body = b.activity("body");
        b.loop_end(crate::edge::LoopCond::Times(2));
        let after = b.activity("after");
        let s = b.build().unwrap();
        let blocks = Blocks::analyze(&s).unwrap();
        let lb = blocks.innermost_loop(body).expect("body is inside loop");
        assert_eq!(lb.kind, BlockKind::Loop);
        assert!(lb.branches[0].contains(&body));
        assert!(blocks.innermost_loop(a).is_none());
        assert!(blocks.innermost_loop(after).is_none());
        assert!(!blocks.same_loop_context(a, body));
        assert!(blocks.same_loop_context(a, after));
    }
}
