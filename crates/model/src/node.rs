//! Node types of the ADEPT2 process meta model.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The structural role a node plays in the block-structured schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Unique source of the schema; completed implicitly on instance start.
    Start,
    /// Unique sink of the schema; completing it terminates the instance.
    End,
    /// A work item that is offered to users/applications for execution.
    Activity,
    /// Opens a parallel (AND) block; all outgoing branches execute.
    AndSplit,
    /// Closes a parallel block; waits for all incoming branches.
    AndJoin,
    /// Opens a conditional (XOR) block; exactly one branch executes.
    XorSplit,
    /// Closes a conditional block; fires when the chosen branch arrives.
    XorJoin,
    /// Opens a loop block.
    LoopStart,
    /// Closes a loop block and decides whether to iterate again.
    LoopEnd,
    /// A silent no-op node. Deleting an activity that cannot be removed
    /// without breaking the block structure replaces it with a `Null` node
    /// (the ADEPT "empty" activity); `Null` nodes complete automatically.
    Null,
}

impl NodeKind {
    /// Whether this node represents actual work (offered to a worklist).
    pub fn is_work(self) -> bool {
        matches!(self, NodeKind::Activity)
    }

    /// Whether the node is a block-opening split (`AndSplit`, `XorSplit`,
    /// `LoopStart`).
    pub fn is_split(self) -> bool {
        matches!(
            self,
            NodeKind::AndSplit | NodeKind::XorSplit | NodeKind::LoopStart
        )
    }

    /// Whether the node is a block-closing join (`AndJoin`, `XorJoin`,
    /// `LoopEnd`).
    pub fn is_join(self) -> bool {
        matches!(
            self,
            NodeKind::AndJoin | NodeKind::XorJoin | NodeKind::LoopEnd
        )
    }

    /// Whether the node executes silently (no user interaction): everything
    /// except [`NodeKind::Activity`].
    pub fn is_silent(self) -> bool {
        !self.is_work()
    }

    /// The join kind that must close a block opened by this split kind.
    pub fn matching_join(self) -> Option<NodeKind> {
        match self {
            NodeKind::AndSplit => Some(NodeKind::AndJoin),
            NodeKind::XorSplit => Some(NodeKind::XorJoin),
            NodeKind::LoopStart => Some(NodeKind::LoopEnd),
            _ => None,
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Start => "Start",
            NodeKind::End => "End",
            NodeKind::Activity => "Activity",
            NodeKind::AndSplit => "AndSplit",
            NodeKind::AndJoin => "AndJoin",
            NodeKind::XorSplit => "XorSplit",
            NodeKind::XorJoin => "XorJoin",
            NodeKind::LoopStart => "LoopStart",
            NodeKind::LoopEnd => "LoopEnd",
            NodeKind::Null => "Null",
        };
        f.write_str(s)
    }
}

/// Organisational and operational attributes of an activity.
///
/// ADEPT2 templates carry staff assignment rules, expected durations and the
/// application component bound to the activity. These attributes do not
/// influence control flow, but ad-hoc changes may update them
/// (`changeActivityAttributes`), so they are part of the model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityAttributes {
    /// Staff assignment rule, e.g. a role name ("physician", "clerk").
    pub role: Option<String>,
    /// Expected duration in minutes, used for monitoring/escalation.
    pub expected_duration_min: Option<u32>,
    /// Identifier of the application component executing the activity.
    pub application: Option<String>,
    /// Human-readable description.
    pub description: Option<String>,
    /// Whether the activity may be skipped by an authorised user.
    pub skippable: bool,
}

/// A node of a process schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier, unique within the owning schema.
    pub id: NodeId,
    /// Display name; activities should have meaningful names.
    pub name: String,
    /// Structural role.
    pub kind: NodeKind,
    /// Operational attributes (meaningful for activities).
    pub attrs: ActivityAttributes,
}

impl Node {
    /// Creates a node with default attributes.
    pub fn new(id: NodeId, name: impl Into<String>, kind: NodeKind) -> Self {
        Self {
            id,
            name: name.into(),
            kind,
            attrs: ActivityAttributes::default(),
        }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} \"{}\"]", self.id, self.kind, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_join_matching() {
        assert_eq!(NodeKind::AndSplit.matching_join(), Some(NodeKind::AndJoin));
        assert_eq!(NodeKind::XorSplit.matching_join(), Some(NodeKind::XorJoin));
        assert_eq!(NodeKind::LoopStart.matching_join(), Some(NodeKind::LoopEnd));
        assert_eq!(NodeKind::Activity.matching_join(), None);
    }

    #[test]
    fn work_and_silent() {
        assert!(NodeKind::Activity.is_work());
        assert!(!NodeKind::Activity.is_silent());
        for k in [
            NodeKind::Start,
            NodeKind::End,
            NodeKind::AndSplit,
            NodeKind::AndJoin,
            NodeKind::XorSplit,
            NodeKind::XorJoin,
            NodeKind::LoopStart,
            NodeKind::LoopEnd,
            NodeKind::Null,
        ] {
            assert!(k.is_silent(), "{k} should be silent");
        }
    }

    #[test]
    fn node_display() {
        let n = Node::new(NodeId(4), "pack goods", NodeKind::Activity);
        assert_eq!(n.to_string(), "n4[Activity \"pack goods\"]");
    }
}
