//! Data-flow model: data elements, values and read/write data edges.

use crate::ids::{DataId, NodeId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The type of a data element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
        })
    }
}

/// A runtime value of a data element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Absence of a value (unwritten data element).
    Null,
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value.
    Str(String),
}

impl Value {
    /// The [`ValueType`] this value conforms to, or `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
        }
    }

    /// Whether this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Partial comparison between values of the same kind; `None` across
    /// kinds or when either side is `Null`.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Int(b)) => a.partial_cmp(b),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.partial_cmp(b),
            _ => None,
        }
    }

    /// Approximate heap + inline size in bytes, used by the storage layer's
    /// memory accounting (paper Fig. 2 experiments).
    pub fn approx_size(&self) -> usize {
        std::mem::size_of::<Value>()
            + match self {
                Value::Str(s) => s.capacity(),
                _ => 0,
            }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A process data element (a typed variable of the schema).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataElement {
    /// Identifier, unique within the owning schema.
    pub id: DataId,
    /// Display name.
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
}

impl DataElement {
    /// Creates a data element.
    pub fn new(id: DataId, name: impl Into<String>, ty: ValueType) -> Self {
        Self {
            id,
            name: name.into(),
            ty,
        }
    }
}

impl fmt::Display for DataElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}: {}]", self.id, self.name, self.ty)
    }
}

/// Read or write access of an activity to a data element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    /// The activity reads the element when it starts.
    Read,
    /// The activity writes the element when it completes.
    Write,
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessMode::Read => "read",
            AccessMode::Write => "write",
        })
    }
}

/// A data edge connecting a node to a data element.
///
/// Mandatory read edges are input parameters that *must* be supplied —
/// the data-flow verifier proves that a write precedes them on every path.
/// Optional reads tolerate `Null`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataEdge {
    /// The accessing node.
    pub node: NodeId,
    /// The accessed data element.
    pub data: DataId,
    /// Read or write.
    pub mode: AccessMode,
    /// For reads: whether the parameter may be unsupplied (`Null`).
    pub optional: bool,
}

impl DataEdge {
    /// Creates a mandatory read edge.
    pub fn read(node: NodeId, data: DataId) -> Self {
        Self {
            node,
            data,
            mode: AccessMode::Read,
            optional: false,
        }
    }

    /// Creates an optional read edge.
    pub fn optional_read(node: NodeId, data: DataId) -> Self {
        Self {
            node,
            data,
            mode: AccessMode::Read,
            optional: true,
        }
    }

    /// Creates a write edge.
    pub fn write(node: NodeId, data: DataId) -> Self {
        Self {
            node,
            data,
            mode: AccessMode::Write,
            optional: false,
        }
    }
}

impl fmt::Display for DataEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}s {}", self.node, self.mode, self.data)?;
        if self.optional {
            f.write_str(" (optional)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types() {
        assert_eq!(Value::Bool(true).value_type(), Some(ValueType::Bool));
        assert_eq!(Value::Int(1).value_type(), Some(ValueType::Int));
        assert_eq!(Value::Float(1.0).value_type(), Some(ValueType::Float));
        assert_eq!(Value::from("x").value_type(), Some(ValueType::Str));
        assert_eq!(Value::Null.value_type(), None);
    }

    #[test]
    fn value_comparison_same_kind_only() {
        assert_eq!(
            Value::Int(1).partial_cmp_value(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Int(1).partial_cmp_value(&Value::Float(2.0)), None);
        assert_eq!(Value::Null.partial_cmp_value(&Value::Null), None);
    }

    #[test]
    fn string_values_account_for_heap() {
        let v = Value::Str("hello world".into());
        assert!(v.approx_size() >= std::mem::size_of::<Value>() + 11);
        assert_eq!(Value::Int(1).approx_size(), std::mem::size_of::<Value>());
    }

    #[test]
    fn data_edge_constructors() {
        let r = DataEdge::read(NodeId(1), DataId(2));
        assert_eq!(r.mode, AccessMode::Read);
        assert!(!r.optional);
        let o = DataEdge::optional_read(NodeId(1), DataId(2));
        assert!(o.optional);
        let w = DataEdge::write(NodeId(1), DataId(2));
        assert_eq!(w.mode, AccessMode::Write);
    }
}
