//! Error type for model-level operations.

use crate::ids::{DataId, EdgeId, NodeId};
use std::fmt;

/// Errors raised by schema construction and low-level mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A referenced node does not exist in the schema.
    UnknownNode(NodeId),
    /// A referenced edge does not exist in the schema.
    UnknownEdge(EdgeId),
    /// A referenced data element does not exist in the schema.
    UnknownData(DataId),
    /// An identical edge (same endpoints and kind) already exists.
    DuplicateEdge(NodeId, NodeId),
    /// An identical data edge already exists.
    DuplicateDataEdge(NodeId, DataId),
    /// A node still has incident edges and cannot be removed.
    NodeHasEdges(NodeId),
    /// The builder was used in an illegal state (e.g. `and_join` without a
    /// matching `and_split`). The message describes the violation.
    BuilderState(String),
    /// A value of the wrong type was supplied for a data element.
    TypeMismatch {
        /// The data element written to.
        data: DataId,
        /// Its declared type, as a display string.
        expected: String,
        /// The supplied value, as a display string.
        got: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ModelError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            ModelError::UnknownData(d) => write!(f, "unknown data element {d}"),
            ModelError::DuplicateEdge(a, b) => write!(f, "edge {a} -> {b} already exists"),
            ModelError::DuplicateDataEdge(n, d) => {
                write!(f, "data edge between {n} and {d} already exists")
            }
            ModelError::NodeHasEdges(n) => {
                write!(f, "node {n} still has incident edges and cannot be removed")
            }
            ModelError::BuilderState(msg) => write!(f, "builder misuse: {msg}"),
            ModelError::TypeMismatch {
                data,
                expected,
                got,
            } => write!(f, "type mismatch on {data}: expected {expected}, got {got}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ModelError::UnknownNode(NodeId(3)).to_string(),
            "unknown node n3"
        );
        assert!(ModelError::BuilderState("oops".into())
            .to_string()
            .contains("oops"));
        let e = ModelError::TypeMismatch {
            data: DataId(1),
            expected: "int".into(),
            got: "\"x\"".into(),
        };
        assert!(e.to_string().contains("expected int"));
    }
}
