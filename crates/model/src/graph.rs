//! Graph algorithms over process schemas: topological order, reachability,
//! cycle detection and postdominators.
//!
//! All algorithms operate on a caller-selected subset of edge kinds. The
//! *control backbone* (control edges only, loop edges excluded) of a correct
//! ADEPT2 schema is a DAG; sync edges must keep the combined
//! control+sync graph acyclic — a cycle there is exactly the
//! "deadlock-causing cycle" the paper's verifier rejects (Fig. 1, instance
//! I2).

use crate::edge::EdgeKind;
use crate::ids::NodeId;
use crate::schema::ProcessSchema;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Which edge kinds an algorithm should traverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeFilter {
    /// Traverse control edges.
    pub control: bool,
    /// Traverse sync edges.
    pub sync: bool,
    /// Traverse loop edges.
    pub loops: bool,
}

impl EdgeFilter {
    /// Control edges only — the block-structured backbone.
    pub const CONTROL: EdgeFilter = EdgeFilter {
        control: true,
        sync: false,
        loops: false,
    };
    /// Control + sync edges — the graph that must stay acyclic.
    pub const CONTROL_SYNC: EdgeFilter = EdgeFilter {
        control: true,
        sync: true,
        loops: false,
    };
    /// Everything including loop edges.
    pub const ALL: EdgeFilter = EdgeFilter {
        control: true,
        sync: true,
        loops: true,
    };

    /// Whether this filter admits the given edge kind.
    pub fn admits(self, kind: EdgeKind) -> bool {
        match kind {
            EdgeKind::Control => self.control,
            EdgeKind::Sync => self.sync,
            EdgeKind::Loop => self.loops,
        }
    }
}

/// Result of a failed topological sort: the nodes involved in (or reachable
/// only through) a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// Nodes that could not be ordered (the union of all cycles and their
    /// downstream-only dependents).
    pub nodes: Vec<NodeId>,
}

/// Topologically sorts the nodes of the schema over the admitted edges
/// (Kahn's algorithm). Deterministic: ready nodes are processed in id order.
pub fn topo_order(schema: &ProcessSchema, filter: EdgeFilter) -> Result<Vec<NodeId>, Cycle> {
    let mut indeg: BTreeMap<NodeId, usize> = schema.node_ids().map(|n| (n, 0)).collect();
    for e in schema.edges().filter(|e| filter.admits(e.kind)) {
        *indeg.get_mut(&e.to).expect("edge target exists") += 1;
    }
    // BTreeSet keeps the frontier sorted -> deterministic order.
    let mut ready: BTreeSet<NodeId> = indeg
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(n, _)| *n)
        .collect();
    let mut order = Vec::with_capacity(indeg.len());
    while let Some(&n) = ready.iter().next() {
        ready.remove(&n);
        order.push(n);
        for e in schema.out_edges(n).filter(|e| filter.admits(e.kind)) {
            let d = indeg.get_mut(&e.to).expect("edge target exists");
            *d -= 1;
            if *d == 0 {
                ready.insert(e.to);
            }
        }
    }
    if order.len() == indeg.len() {
        Ok(order)
    } else {
        let placed: BTreeSet<NodeId> = order.iter().copied().collect();
        Err(Cycle {
            nodes: schema.node_ids().filter(|n| !placed.contains(n)).collect(),
        })
    }
}

/// Whether the schema is acyclic over the admitted edges.
pub fn is_acyclic(schema: &ProcessSchema, filter: EdgeFilter) -> bool {
    topo_order(schema, filter).is_ok()
}

/// Forward-reachable set from `from` (inclusive) over the admitted edges.
pub fn reachable_from(
    schema: &ProcessSchema,
    from: NodeId,
    filter: EdgeFilter,
) -> BTreeSet<NodeId> {
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::new();
    if schema.has_node(from) {
        seen.insert(from);
        queue.push_back(from);
    }
    while let Some(n) = queue.pop_front() {
        for e in schema.out_edges(n).filter(|e| filter.admits(e.kind)) {
            if seen.insert(e.to) {
                queue.push_back(e.to);
            }
        }
    }
    seen
}

/// Backward-reachable set from `from` (inclusive) over the admitted edges.
pub fn reaching_to(schema: &ProcessSchema, to: NodeId, filter: EdgeFilter) -> BTreeSet<NodeId> {
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::new();
    if schema.has_node(to) {
        seen.insert(to);
        queue.push_back(to);
    }
    while let Some(n) = queue.pop_front() {
        for e in schema.in_edges(n).filter(|e| filter.admits(e.kind)) {
            if seen.insert(e.from) {
                queue.push_back(e.from);
            }
        }
    }
    seen
}

/// Whether a path from `a` to `b` exists over the admitted edges.
pub fn path_exists(schema: &ProcessSchema, a: NodeId, b: NodeId, filter: EdgeFilter) -> bool {
    if a == b {
        return true;
    }
    reachable_from(schema, a, filter).contains(&b)
}

/// Computes the immediate postdominator of every node over the control
/// backbone, with `exit` as the sink (normally the `End` node).
///
/// In a block-structured schema the immediate postdominator of a split node
/// is exactly its matching join, which is how [`crate::Blocks`] recovers the
/// block structure of arbitrarily changed schemas.
///
/// Uses the classic iterative set-intersection formulation; schemas are
/// small (tens to a few hundred nodes), so the simple O(N²) data-flow
/// iteration is more than fast enough and easy to audit.
pub fn immediate_postdominators(schema: &ProcessSchema, exit: NodeId) -> BTreeMap<NodeId, NodeId> {
    let order = match topo_order(schema, EdgeFilter::CONTROL) {
        Ok(o) => o,
        Err(_) => return BTreeMap::new(), // cyclic control backbone: malformed
    };
    let all: BTreeSet<NodeId> = schema.node_ids().collect();
    let mut pdom: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for &n in &all {
        if n == exit {
            pdom.insert(n, std::iter::once(n).collect());
        } else {
            pdom.insert(n, all.clone());
        }
    }
    // Process in reverse topological order; one extra sweep confirms the
    // fixpoint (on a DAG a single reverse-topo pass suffices, but the loop
    // is cheap and robust).
    let mut changed = true;
    while changed {
        changed = false;
        for &n in order.iter().rev() {
            if n == exit {
                continue;
            }
            let mut acc: Option<BTreeSet<NodeId>> = None;
            for succ in schema.control_successors(n) {
                let s = &pdom[&succ];
                acc = Some(match acc {
                    None => s.clone(),
                    Some(a) => a.intersection(s).copied().collect(),
                });
            }
            let mut new = acc.unwrap_or_default();
            new.insert(n);
            if new != pdom[&n] {
                pdom.insert(n, new);
                changed = true;
            }
        }
    }
    // The immediate postdominator of n is the unique m in pdom(n)\{n} that is
    // postdominated by every other member of pdom(n)\{n}.
    let mut ipdom = BTreeMap::new();
    for &n in &all {
        if n == exit {
            continue;
        }
        let cands: Vec<NodeId> = pdom[&n].iter().copied().filter(|m| *m != n).collect();
        for &m in &cands {
            if cands.iter().all(|&p| p == m || pdom[&m].contains(&p)) {
                ipdom.insert(n, m);
                break;
            }
        }
    }
    ipdom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    /// start -> split -> (a | b) -> join -> end
    fn diamond() -> (ProcessSchema, [NodeId; 6]) {
        let mut s = ProcessSchema::empty("d");
        let start = s.add_node("start", NodeKind::Start);
        let split = s.add_node("split", NodeKind::AndSplit);
        let a = s.add_node("a", NodeKind::Activity);
        let b = s.add_node("b", NodeKind::Activity);
        let join = s.add_node("join", NodeKind::AndJoin);
        let end = s.add_node("end", NodeKind::End);
        s.add_control_edge(start, split).unwrap();
        s.add_control_edge(split, a).unwrap();
        s.add_control_edge(split, b).unwrap();
        s.add_control_edge(a, join).unwrap();
        s.add_control_edge(b, join).unwrap();
        s.add_control_edge(join, end).unwrap();
        (s, [start, split, a, b, join, end])
    }

    #[test]
    fn topo_order_is_deterministic_and_valid() {
        let (s, [start, split, a, b, join, end]) = diamond();
        let order = topo_order(&s, EdgeFilter::CONTROL).unwrap();
        let pos = |n: NodeId| order.iter().position(|x| *x == n).unwrap();
        assert!(pos(start) < pos(split));
        assert!(pos(split) < pos(a));
        assert!(pos(split) < pos(b));
        assert!(pos(a) < pos(join));
        assert!(pos(b) < pos(join));
        assert!(pos(join) < pos(end));
        assert_eq!(order, topo_order(&s, EdgeFilter::CONTROL).unwrap());
    }

    #[test]
    fn sync_cycle_is_detected() {
        let (mut s, [_, _, a, b, _, _]) = diamond();
        s.add_sync_edge(a, b).unwrap();
        assert!(is_acyclic(&s, EdgeFilter::CONTROL_SYNC));
        s.add_sync_edge(b, a).unwrap();
        assert!(!is_acyclic(&s, EdgeFilter::CONTROL_SYNC));
        let cyc = topo_order(&s, EdgeFilter::CONTROL_SYNC).unwrap_err();
        assert!(cyc.nodes.contains(&a) && cyc.nodes.contains(&b));
    }

    #[test]
    fn reachability() {
        let (s, [start, _, a, b, _, end]) = diamond();
        assert!(path_exists(&s, start, end, EdgeFilter::CONTROL));
        assert!(!path_exists(&s, a, b, EdgeFilter::CONTROL));
        assert!(!path_exists(&s, end, start, EdgeFilter::CONTROL));
        let back = reaching_to(&s, a, EdgeFilter::CONTROL);
        assert!(back.contains(&start) && !back.contains(&b));
    }

    #[test]
    fn ipdom_of_split_is_join() {
        let (s, [start, split, a, b, join, end]) = diamond();
        let ipdom = immediate_postdominators(&s, end);
        assert_eq!(ipdom[&split], join);
        assert_eq!(ipdom[&a], join);
        assert_eq!(ipdom[&b], join);
        assert_eq!(ipdom[&start], split);
        assert_eq!(ipdom[&join], end);
        assert!(!ipdom.contains_key(&end));
    }

    #[test]
    fn loop_edges_ignored_by_control_filter() {
        let mut s = ProcessSchema::empty("l");
        let start = s.add_node("start", NodeKind::Start);
        let ls = s.add_node("ls", NodeKind::LoopStart);
        let a = s.add_node("a", NodeKind::Activity);
        let le = s.add_node("le", NodeKind::LoopEnd);
        let end = s.add_node("end", NodeKind::End);
        s.add_control_edge(start, ls).unwrap();
        s.add_control_edge(ls, a).unwrap();
        s.add_control_edge(a, le).unwrap();
        s.add_control_edge(le, end).unwrap();
        s.add_loop_edge(le, ls, crate::edge::LoopCond::Times(3))
            .unwrap();
        assert!(is_acyclic(&s, EdgeFilter::CONTROL_SYNC));
        assert!(!is_acyclic(&s, EdgeFilter::ALL));
    }
}
