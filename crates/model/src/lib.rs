//! # adept-model — the ADEPT2 process meta model
//!
//! This crate implements the block-structured process meta model (often
//! called *WSM-nets* in the ADEPT literature) that the ADEPT2 system from
//! *"Adaptive Process Management with ADEPT2"* (Reichert, Rinderle, Kreher,
//! Dadam — ICDE 2005) builds on.
//!
//! A [`ProcessSchema`] is a directed graph of typed [`Node`]s connected by
//! typed [`Edge`]s:
//!
//! * **control edges** form a block-structured backbone: every `AndSplit`
//!   has a matching `AndJoin`, every `XorSplit` a matching `XorJoin`, and
//!   every `LoopStart` a matching `LoopEnd`; blocks are properly nested,
//! * **sync edges** cross between branches of parallel blocks and order
//!   otherwise-concurrent activities (paper Fig. 1: `ET=Sync`),
//! * **loop edges** jump from a `LoopEnd` back to its `LoopStart`.
//!
//! Data flow is modelled by [`DataElement`]s and read/write [`DataEdge`]s.
//!
//! Schemas are usually produced with the fluent [`SchemaBuilder`], which can
//! only produce structurally sound schemas. The low-level mutation API on
//! [`ProcessSchema`] exists for the change-operation layer (`adept-core`),
//! which guards every mutation with the pre-/post-conditions the paper
//! describes.
//!
//! ```
//! use adept_model::{SchemaBuilder, ValueType};
//!
//! let mut b = SchemaBuilder::new("online order");
//! let amount = b.data("amount", ValueType::Int);
//! let get = b.activity("get order");
//! b.write(get, amount);
//! b.and_split();
//! b.branch();
//! let confirm = b.activity("confirm order");
//! b.read(confirm, amount);
//! b.branch();
//! b.activity("compose order");
//! b.activity("pack goods");
//! b.and_join();
//! b.activity("deliver goods");
//! let schema = b.build().unwrap();
//! assert_eq!(schema.activities().count(), 5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blocks;
pub mod builder;
pub mod compiled;
pub mod data;
pub mod edge;
pub mod error;
pub mod graph;
pub mod ids;
pub mod node;
pub mod render;
pub mod schema;

pub use blocks::{BlockInfo, BlockKind, Blocks};
pub use builder::SchemaBuilder;
pub use compiled::{CEdge, CNode, CompiledSchema};
pub use data::{AccessMode, DataEdge, DataElement, Value, ValueType};
pub use edge::{CmpOp, Edge, EdgeKind, Guard, LoopCond};
pub use error::ModelError;
pub use ids::{DataId, EdgeId, InstanceId, NodeId, SchemaId};
pub use node::{ActivityAttributes, Node, NodeKind};
pub use schema::ProcessSchema;
