//! Edge types of the ADEPT2 process meta model: control, sync and loop
//! edges, branch guards and loop conditions.

use crate::data::Value;
use crate::ids::{DataId, EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a schema edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Normal precedence edge of the block-structured backbone.
    Control,
    /// Synchronisation edge between branches of a parallel block
    /// (`ET=Sync` in paper Fig. 1). The target may only start once the
    /// source is completed or can no longer be executed.
    Sync,
    /// Back edge from a `LoopEnd` to its `LoopStart`.
    Loop,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EdgeKind::Control => "control",
            EdgeKind::Sync => "sync",
            EdgeKind::Loop => "loop",
        })
    }
}

/// Comparison operator used in [`Guard`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the operator on two values. Comparisons between
    /// incompatible value kinds yield `false` (and are reported by the
    /// data-flow verifier at buildtime).
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        use std::cmp::Ordering;
        let ord = lhs.partial_cmp_value(rhs);
        match (self, ord) {
            (CmpOp::Eq, Some(Ordering::Equal)) => true,
            (CmpOp::Ne, Some(o)) => o != Ordering::Equal,
            (CmpOp::Lt, Some(Ordering::Less)) => true,
            (CmpOp::Le, Some(Ordering::Less | Ordering::Equal)) => true,
            (CmpOp::Gt, Some(Ordering::Greater)) => true,
            (CmpOp::Ge, Some(Ordering::Greater | Ordering::Equal)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A branch guard on an edge leaving an `XorSplit`: the branch is selected
/// when `data <op> value` holds. At most one branch of an XOR split may be
/// guard-free; it acts as the *else* branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Guard {
    /// The data element inspected by the guard.
    pub data: DataId,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant the data value is compared against.
    pub value: Value,
}

impl Guard {
    /// Creates a guard `data <op> value`.
    pub fn new(data: DataId, op: CmpOp, value: Value) -> Self {
        Self { data, op, value }
    }

    /// Evaluates the guard against a concrete data value.
    pub fn eval(&self, actual: &Value) -> bool {
        self.op.eval(actual, &self.value)
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.data, self.op, self.value)
    }
}

/// Loop continuation condition carried by a [`EdgeKind::Loop`] edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoopCond {
    /// Iterate while the guard holds (evaluated at the `LoopEnd`).
    While(Guard),
    /// Iterate a fixed number of times in total (at least 1).
    Times(u32),
    /// The runtime (user or simulation driver) decides each iteration.
    External,
}

impl fmt::Display for LoopCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopCond::While(g) => write!(f, "while {g}"),
            LoopCond::Times(n) => write!(f, "times {n}"),
            LoopCond::External => f.write_str("external"),
        }
    }
}

/// An edge of a process schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Identifier, unique within the owning schema.
    pub id: EdgeId,
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Edge kind.
    pub kind: EdgeKind,
    /// Branch guard; only meaningful on control edges leaving an `XorSplit`.
    pub guard: Option<Guard>,
    /// Loop condition; only meaningful on loop edges.
    pub loop_cond: Option<LoopCond>,
}

impl Edge {
    /// Creates a plain control edge.
    pub fn control(id: EdgeId, from: NodeId, to: NodeId) -> Self {
        Self {
            id,
            from,
            to,
            kind: EdgeKind::Control,
            guard: None,
            loop_cond: None,
        }
    }

    /// Creates a sync edge.
    pub fn sync(id: EdgeId, from: NodeId, to: NodeId) -> Self {
        Self {
            id,
            from,
            to,
            kind: EdgeKind::Sync,
            guard: None,
            loop_cond: None,
        }
    }

    /// Creates a loop-back edge with the given continuation condition.
    pub fn loop_back(id: EdgeId, from: NodeId, to: NodeId, cond: LoopCond) -> Self {
        Self {
            id,
            from,
            to,
            kind: EdgeKind::Loop,
            guard: None,
            loop_cond: Some(cond),
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -[{}]-> {}",
            self.id, self.from, self.kind, self.to
        )?;
        if let Some(g) = &self.guard {
            write!(f, " if {g}")?;
        }
        if let Some(c) = &self.loop_cond {
            write!(f, " ({c})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_on_ints() {
        let a = Value::Int(3);
        let b = Value::Int(5);
        assert!(CmpOp::Lt.eval(&a, &b));
        assert!(CmpOp::Le.eval(&a, &b));
        assert!(CmpOp::Ne.eval(&a, &b));
        assert!(!CmpOp::Eq.eval(&a, &b));
        assert!(!CmpOp::Gt.eval(&a, &b));
        assert!(CmpOp::Ge.eval(&b, &a));
    }

    #[test]
    fn cmp_op_incompatible_kinds_is_false() {
        let a = Value::Int(3);
        let s = Value::Str("three".into());
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert!(!op.eval(&a, &s), "{op} must be false across kinds");
        }
    }

    #[test]
    fn guard_eval() {
        let g = Guard::new(DataId(0), CmpOp::Ge, Value::Int(100));
        assert!(g.eval(&Value::Int(100)));
        assert!(g.eval(&Value::Int(150)));
        assert!(!g.eval(&Value::Int(99)));
    }

    #[test]
    fn edge_display_mentions_kind_and_guard() {
        let e = Edge {
            id: EdgeId(1),
            from: NodeId(0),
            to: NodeId(2),
            kind: EdgeKind::Control,
            guard: Some(Guard::new(DataId(3), CmpOp::Eq, Value::Bool(true))),
            loop_cond: None,
        };
        let s = e.to_string();
        assert!(s.contains("control"));
        assert!(s.contains("d3 == true"));
    }
}
