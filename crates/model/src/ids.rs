//! Strongly-typed identifiers for schema and instance objects.
//!
//! All identifiers are small copyable newtypes over `u32`. Identifiers are
//! allocated by their owning container (e.g. [`crate::ProcessSchema`]
//! allocates [`NodeId`]s) and are never reused within one container, so a
//! deleted node's id stays dangling rather than silently aliasing a new node.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw numeric value of this identifier.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }

            /// Returns the identifier as a `usize`, e.g. for indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// Identifier of a [`crate::Node`] within one [`crate::ProcessSchema`].
    NodeId,
    "n"
);
id_type!(
    /// Identifier of an [`crate::Edge`] within one [`crate::ProcessSchema`].
    EdgeId,
    "e"
);
id_type!(
    /// Identifier of a [`crate::DataElement`] within one schema.
    DataId,
    "d"
);
id_type!(
    /// Identifier of a process schema (a concrete version of a process type).
    SchemaId,
    "S"
);

/// Identifier of a process instance.
///
/// Unlike the schema-local ids above, instance ids are allocated for the
/// lifetime of a whole engine — a production deployment serving millions
/// of users burns through them continuously — so they are 64-bit: the id
/// space cannot realistically wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

impl InstanceId {
    /// Returns the raw numeric value of this identifier.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns the identifier as a `usize`, e.g. for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A well-mixed 64-bit hash of this id (splitmix64 finaliser).
    /// Sharded containers (the instance store, the worklist index) use
    /// this to spread sequentially allocated ids uniformly across shards;
    /// sharing one function keeps an instance on the "same" shard index
    /// everywhere, which makes lock behaviour easy to reason about.
    #[inline]
    pub fn hash64(self) -> u64 {
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

impl From<u32> for InstanceId {
    fn from(v: u32) -> Self {
        Self(v as u64)
    }
}

impl From<u64> for InstanceId {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

/// A monotonically increasing id allocator used by containers that own ids.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdAllocator {
    next: u32,
}

impl IdAllocator {
    /// Creates an allocator that starts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an allocator that will hand out ids starting at `next`.
    pub fn starting_at(next: u32) -> Self {
        Self { next }
    }

    /// Allocates the next raw id.
    pub fn alloc(&mut self) -> u32 {
        let v = self.next;
        self.next = self
            .next
            .checked_add(1)
            .expect("id space exhausted (more than u32::MAX allocations)");
        v
    }

    /// Ensures that ids up to and including `used` are never handed out again.
    pub fn reserve_through(&mut self, used: u32) {
        if used >= self.next {
            self.next = used + 1;
        }
    }

    /// The value the next call to [`IdAllocator::alloc`] would return.
    pub fn peek(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(EdgeId(0).to_string(), "e0");
        assert_eq!(DataId(7).to_string(), "d7");
        assert_eq!(SchemaId(1).to_string(), "S1");
        assert_eq!(InstanceId(42).to_string(), "I42");
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut a = IdAllocator::new();
        assert_eq!(a.alloc(), 0);
        assert_eq!(a.alloc(), 1);
        a.reserve_through(10);
        assert_eq!(a.alloc(), 11);
        a.reserve_through(5); // no-op, already past
        assert_eq!(a.alloc(), 12);
    }

    #[test]
    fn id_conversions() {
        let n: NodeId = 9u32.into();
        assert_eq!(n.raw(), 9);
        assert_eq!(n.index(), 9usize);
    }

    #[test]
    fn instance_ids_are_64_bit() {
        let wide = InstanceId(u32::MAX as u64 + 1);
        assert_eq!(wide.raw(), 4_294_967_296);
        assert_eq!(wide.to_string(), "I4294967296");
        let from_small: InstanceId = 7u32.into();
        let from_wide: InstanceId = 7u64.into();
        assert_eq!(from_small, from_wide);
    }

    #[test]
    fn instance_id_hash_spreads_sequential_ids() {
        // Sequential allocation must not pile onto one shard: check the
        // low bits of the mixed hash distribute over a 16-way split.
        let mut buckets = [0usize; 16];
        for i in 1..=1600u64 {
            buckets[(InstanceId(i).hash64() & 15) as usize] += 1;
        }
        for (shard, count) in buckets.iter().enumerate() {
            assert!(
                (50..=200).contains(count),
                "shard {shard} got {count} of 1600 sequential ids"
            );
        }
    }
}
