//! Strongly-typed identifiers for schema and instance objects.
//!
//! All identifiers are small copyable newtypes over `u32`. Identifiers are
//! allocated by their owning container (e.g. [`crate::ProcessSchema`]
//! allocates [`NodeId`]s) and are never reused within one container, so a
//! deleted node's id stays dangling rather than silently aliasing a new node.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw numeric value of this identifier.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }

            /// Returns the identifier as a `usize`, e.g. for indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// Identifier of a [`crate::Node`] within one [`crate::ProcessSchema`].
    NodeId,
    "n"
);
id_type!(
    /// Identifier of an [`crate::Edge`] within one [`crate::ProcessSchema`].
    EdgeId,
    "e"
);
id_type!(
    /// Identifier of a [`crate::DataElement`] within one schema.
    DataId,
    "d"
);
id_type!(
    /// Identifier of a process schema (a concrete version of a process type).
    SchemaId,
    "S"
);
id_type!(
    /// Identifier of a process instance.
    InstanceId,
    "I"
);

/// A monotonically increasing id allocator used by containers that own ids.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdAllocator {
    next: u32,
}

impl IdAllocator {
    /// Creates an allocator that starts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an allocator that will hand out ids starting at `next`.
    pub fn starting_at(next: u32) -> Self {
        Self { next }
    }

    /// Allocates the next raw id.
    pub fn alloc(&mut self) -> u32 {
        let v = self.next;
        self.next = self
            .next
            .checked_add(1)
            .expect("id space exhausted (more than u32::MAX allocations)");
        v
    }

    /// Ensures that ids up to and including `used` are never handed out again.
    pub fn reserve_through(&mut self, used: u32) {
        if used >= self.next {
            self.next = used + 1;
        }
    }

    /// The value the next call to [`IdAllocator::alloc`] would return.
    pub fn peek(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(EdgeId(0).to_string(), "e0");
        assert_eq!(DataId(7).to_string(), "d7");
        assert_eq!(SchemaId(1).to_string(), "S1");
        assert_eq!(InstanceId(42).to_string(), "I42");
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut a = IdAllocator::new();
        assert_eq!(a.alloc(), 0);
        assert_eq!(a.alloc(), 1);
        a.reserve_through(10);
        assert_eq!(a.alloc(), 11);
        a.reserve_through(5); // no-op, already past
        assert_eq!(a.alloc(), 12);
    }

    #[test]
    fn id_conversions() {
        let n: NodeId = 9u32.into();
        assert_eq!(n.raw(), 9);
        assert_eq!(n.index(), 9usize);
    }
}
