//! Compiled schema arenas: the flat, immutable execution core.
//!
//! A committed `(type, version)` never changes — thousands of instances
//! share it, and only *biased* (ad-hoc-changed) instances deviate through
//! an overlay. [`CompiledSchema`] exploits that: it compiles a
//! [`ProcessSchema`] + [`Blocks`] pair into index-based node/edge arrays
//! with every per-command lookup the interpreter performs precomputed:
//!
//! * **id interning** — node and edge ids are mapped to dense *slots*
//!   (`u32` indices into sorted id tables); a slot lookup is one binary
//!   search, a reverse lookup one array read;
//! * **activation tables** — per node: incoming control/sync edge slots
//!   (the inputs of the activation rule), outgoing non-loop edge slots
//!   (what completion signals), outgoing control edges in adjacency order
//!   (guard evaluation and branch choice are order-sensitive);
//! * **fixpoint metadata** — silent-node flags, XOR guard presence, loop
//!   conditions, and the full loop-body reset set (body node slots +
//!   intra-body edge slots) per loop end;
//! * **data signatures** — mandatory read parameters (schema declaration
//!   order, for error parity), the sorted read signature recorded in
//!   `Started` events, and declared writes in declaration order.
//!
//! The arena is plain data: build it once per committed version, wrap it
//! in an `Arc`, and share it across every unbiased instance of that
//! version. The compact execution layer in `adept-state` runs the
//! ADEPT2 semantics directly on these slots; biased instances keep using
//! the interpreted path, whose overlaid schemas the arena cannot
//! describe.

use crate::blocks::Blocks;
use crate::edge::{EdgeKind, Guard, LoopCond};
use crate::ids::{DataId, EdgeId, NodeId};
use crate::node::NodeKind;
use crate::schema::ProcessSchema;

/// One node of a compiled schema, with every adjacency and data lookup
/// the execution semantics need resolved to dense slots.
#[derive(Debug, Clone)]
pub struct CNode {
    /// The schema-level node id this slot interns.
    pub id: NodeId,
    /// Node kind.
    pub kind: NodeKind,
    /// Whether the node auto-completes (splits, joins, null tasks).
    pub silent: bool,
    /// Incoming control-edge slots.
    pub in_control: Box<[u32]>,
    /// Incoming sync-edge slots.
    pub in_sync: Box<[u32]>,
    /// Outgoing non-loop edge slots (control + sync), adjacency order —
    /// exactly what completing or skipping this node signals.
    pub out_nonloop: Box<[u32]>,
    /// Outgoing control-edge slots in adjacency order (first-match guard
    /// evaluation and XOR branch targets depend on this order).
    pub out_control: Box<[u32]>,
    /// Whether any outgoing control edge carries a guard (XOR splits with
    /// guards decide automatically; unguarded ones await a decision).
    pub has_guards: bool,
    /// Mandatory (non-optional) read parameters, in schema declaration
    /// order — the order `MissingInput` errors surface in.
    pub mandatory_reads: Box<[DataId]>,
    /// The sorted mandatory read signature recorded in `Started` events.
    pub read_signature: Box<[DataId]>,
    /// Declared write parameters, in schema declaration order.
    pub declared_writes: Box<[DataId]>,
    /// Loop continuation condition (loop ends only).
    pub loop_cond: Option<LoopCond>,
    /// Slot of the loop start this loop end jumps back to.
    pub loop_start: Option<u32>,
    /// Loop-body node slots (including loop start and end) reset on
    /// iteration. Empty when the node is no loop end or the block
    /// structure carries no body for it.
    pub loop_body_nodes: Box<[u32]>,
    /// Intra-body edge slots (all kinds) reset on iteration.
    pub loop_body_edges: Box<[u32]>,
}

/// One edge of a compiled schema.
#[derive(Debug, Clone)]
pub struct CEdge {
    /// The schema-level edge id this slot interns.
    pub id: EdgeId,
    /// Source node slot.
    pub from: u32,
    /// Target node slot.
    pub to: u32,
    /// Edge kind.
    pub kind: EdgeKind,
    /// Branch guard (control edges leaving a guarded XOR split).
    pub guard: Option<Guard>,
}

/// A committed schema version compiled to flat arrays — the immutable
/// execution core shared (`Arc`-wrapped) by every unbiased instance of
/// that version. See the module docs for what is precomputed.
#[derive(Debug, Clone)]
pub struct CompiledSchema {
    /// Interned node ids, ascending — slot `i` is `node_ids[i]`.
    pub node_ids: Vec<NodeId>,
    /// Interned edge ids, ascending — slot `i` is `edge_ids[i]`.
    pub edge_ids: Vec<EdgeId>,
    /// Per-slot node tables, parallel to `node_ids`.
    pub nodes: Vec<CNode>,
    /// Per-slot edge tables, parallel to `edge_ids`.
    pub edges: Vec<CEdge>,
    /// Slot of the unique start node.
    pub start: u32,
    /// Slot of the unique end node.
    pub end: u32,
}

impl CompiledSchema {
    /// Compiles a schema and its block structure into an arena.
    ///
    /// The schema must be structurally sound (builder-produced /
    /// verifier-approved) — in particular it must have start and end
    /// nodes and no dangling edge endpoints.
    pub fn compile(schema: &ProcessSchema, blocks: &Blocks) -> Self {
        let node_ids: Vec<NodeId> = schema.node_ids().collect();
        let edge_ids: Vec<EdgeId> = schema.edges().map(|e| e.id).collect();
        let nslot = |n: NodeId| -> u32 {
            node_ids
                .binary_search(&n)
                .map(|i| i as u32)
                .expect("invariant: edge endpoints and block members exist in the schema")
        };
        let eslot = |e: EdgeId| -> u32 {
            edge_ids
                .binary_search(&e)
                .map(|i| i as u32)
                .expect("invariant: adjacency lists only reference existing edges")
        };

        let edges: Vec<CEdge> = schema
            .edges()
            .map(|e| CEdge {
                id: e.id,
                from: nslot(e.from),
                to: nslot(e.to),
                kind: e.kind,
                guard: e.guard.clone(),
            })
            .collect();

        let nodes: Vec<CNode> = node_ids
            .iter()
            .map(|&id| {
                let node = schema
                    .node(id)
                    .expect("invariant: node table iterates existing ids");
                let in_control: Vec<u32> = schema
                    .in_edges_kind(id, EdgeKind::Control)
                    .map(|e| eslot(e.id))
                    .collect();
                let in_sync: Vec<u32> = schema
                    .in_edges_kind(id, EdgeKind::Sync)
                    .map(|e| eslot(e.id))
                    .collect();
                let out_nonloop: Vec<u32> = schema
                    .out_edges(id)
                    .filter(|e| e.kind != EdgeKind::Loop)
                    .map(|e| eslot(e.id))
                    .collect();
                let out_control: Vec<u32> = schema
                    .out_edges_kind(id, EdgeKind::Control)
                    .map(|e| eslot(e.id))
                    .collect();
                let has_guards = schema
                    .out_edges_kind(id, EdgeKind::Control)
                    .any(|e| e.guard.is_some());
                let mandatory_reads: Vec<DataId> = schema
                    .reads_of(id)
                    .filter(|de| !de.optional)
                    .map(|de| de.data)
                    .collect();
                let mut read_signature = mandatory_reads.clone();
                read_signature.sort_unstable();
                let declared_writes: Vec<DataId> = schema.writes_of(id).map(|de| de.data).collect();

                // Loop-end metadata: the back edge names the loop start,
                // the block structure names the body to reset.
                let back_edge = schema.out_edges_kind(id, EdgeKind::Loop).next();
                let loop_cond = back_edge.and_then(|e| e.loop_cond.clone());
                let loop_start_id = back_edge.map(|e| e.to);
                let loop_start = loop_start_id.map(nslot);
                let (loop_body_nodes, loop_body_edges) =
                    match loop_start_id.and_then(|ls| blocks.by_split.get(&ls)) {
                        Some(info) => {
                            let ls = loop_start_id
                                .expect("invariant: block info was looked up by the loop start id");
                            let mut body = info.interior();
                            body.insert(ls);
                            body.insert(id);
                            let body_nodes: Vec<u32> = body.iter().map(|&n| nslot(n)).collect();
                            let body_edges: Vec<u32> = schema
                                .edges()
                                .filter(|e| body.contains(&e.from) && body.contains(&e.to))
                                .map(|e| eslot(e.id))
                                .collect();
                            (body_nodes, body_edges)
                        }
                        None => (Vec::new(), Vec::new()),
                    };

                CNode {
                    id,
                    kind: node.kind,
                    silent: node.kind.is_silent(),
                    in_control: in_control.into(),
                    in_sync: in_sync.into(),
                    out_nonloop: out_nonloop.into(),
                    out_control: out_control.into(),
                    has_guards,
                    mandatory_reads: mandatory_reads.into(),
                    read_signature: read_signature.into(),
                    declared_writes: declared_writes.into(),
                    loop_cond,
                    loop_start,
                    loop_body_nodes: loop_body_nodes.into(),
                    loop_body_edges: loop_body_edges.into(),
                }
            })
            .collect();

        let start = nslot(schema.start_node());
        let end = nslot(schema.end_node());
        Self {
            node_ids,
            edge_ids,
            nodes,
            edges,
            start,
            end,
        }
    }

    /// Number of node slots.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edge slots.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Interns a node id (binary search over the sorted id table).
    #[inline]
    pub fn node_slot(&self, n: NodeId) -> Option<u32> {
        self.node_ids.binary_search(&n).ok().map(|i| i as u32)
    }

    /// Interns an edge id.
    #[inline]
    pub fn edge_slot(&self, e: EdgeId) -> Option<u32> {
        self.edge_ids.binary_search(&e).ok().map(|i| i as u32)
    }

    /// The schema-level node id of a slot.
    #[inline]
    pub fn node_id(&self, slot: u32) -> NodeId {
        self.node_ids[slot as usize]
    }

    /// The schema-level edge id of a slot.
    #[inline]
    pub fn edge_id(&self, slot: u32) -> EdgeId {
        self.edge_ids[slot as usize]
    }

    /// Approximate deep size in bytes (for memory accounting).
    pub fn approx_size(&self) -> usize {
        use std::mem::size_of;
        let mut s = size_of::<Self>();
        s += self.node_ids.capacity() * size_of::<NodeId>();
        s += self.edge_ids.capacity() * size_of::<EdgeId>();
        s += self.edges.capacity() * size_of::<CEdge>();
        s += self.nodes.capacity() * size_of::<CNode>();
        for n in &self.nodes {
            s += (n.in_control.len() + n.in_sync.len() + n.out_nonloop.len() + n.out_control.len())
                * size_of::<u32>();
            s += (n.mandatory_reads.len() + n.read_signature.len() + n.declared_writes.len())
                * size_of::<DataId>();
            s += (n.loop_body_nodes.len() + n.loop_body_edges.len()) * size_of::<u32>();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;

    #[test]
    fn slots_round_trip_and_tables_match() {
        let mut b = SchemaBuilder::new("arena");
        let d = b.data("x", crate::data::ValueType::Int);
        let a = b.activity("a");
        b.write(a, d);
        b.and_split();
        b.branch();
        let p = b.activity("p");
        b.read(p, d);
        b.branch();
        b.activity("q");
        b.and_join();
        let s = b.build().unwrap();
        let blocks = Blocks::analyze(&s).unwrap();
        let c = CompiledSchema::compile(&s, &blocks);

        assert_eq!(c.node_count(), s.node_count());
        assert_eq!(c.edge_count(), s.edge_count());
        for (slot, &id) in c.node_ids.iter().enumerate() {
            assert_eq!(c.node_slot(id), Some(slot as u32));
            assert_eq!(c.node_id(slot as u32), id);
            assert_eq!(c.nodes[slot].kind, s.node(id).unwrap().kind);
        }
        let a_slot = c.node_slot(a).unwrap() as usize;
        assert_eq!(&*c.nodes[a_slot].declared_writes, &[d]);
        let p_slot = c.node_slot(p).unwrap() as usize;
        assert_eq!(&*c.nodes[p_slot].mandatory_reads, &[d]);
        assert_eq!(c.node_id(c.start), s.start_node());
        assert_eq!(c.node_id(c.end), s.end_node());
    }

    #[test]
    fn adjacency_order_is_preserved() {
        let mut b = SchemaBuilder::new("xor");
        b.xor_split();
        b.case();
        b.activity("first");
        b.case();
        b.activity("second");
        b.xor_join();
        let s = b.build().unwrap();
        let blocks = Blocks::analyze(&s).unwrap();
        let c = CompiledSchema::compile(&s, &blocks);
        let split = s.nodes().find(|n| n.kind == NodeKind::XorSplit).unwrap().id;
        let slot = c.node_slot(split).unwrap() as usize;
        let compiled_targets: Vec<NodeId> = c.nodes[slot]
            .out_control
            .iter()
            .map(|&e| c.node_id(c.edges[e as usize].to))
            .collect();
        let schema_targets: Vec<NodeId> = s
            .out_edges_kind(split, EdgeKind::Control)
            .map(|e| e.to)
            .collect();
        assert_eq!(compiled_targets, schema_targets);
    }

    #[test]
    fn loop_body_reset_tables() {
        let mut b = SchemaBuilder::new("loop");
        b.loop_start();
        let body = b.activity("body");
        b.loop_end(LoopCond::Times(2));
        let s = b.build().unwrap();
        let blocks = Blocks::analyze(&s).unwrap();
        let c = CompiledSchema::compile(&s, &blocks);
        let le = s.nodes().find(|n| n.kind == NodeKind::LoopEnd).unwrap().id;
        let slot = c.node_slot(le).unwrap() as usize;
        let n = &c.nodes[slot];
        assert_eq!(n.loop_cond, Some(LoopCond::Times(2)));
        assert!(n.loop_start.is_some());
        let body_ids: Vec<NodeId> = n.loop_body_nodes.iter().map(|&s| c.node_id(s)).collect();
        assert!(body_ids.contains(&body));
        assert!(body_ids.contains(&le));
        assert!(!n.loop_body_edges.is_empty());
    }
}
