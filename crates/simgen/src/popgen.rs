//! Instance population generation: random drivers and partial executions.

use adept_model::{DataId, NodeId, ProcessSchema, Value, ValueType};
use adept_state::{Driver, Execution, InstanceState};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A randomised [`Driver`]: random XOR branches, bounded random loop
/// iterations, random activity interleavings and random typed output
/// values. Deterministic per seed.
#[derive(Debug)]
pub struct RandomDriver {
    rng: SmallRng,
    /// Probability of another loop iteration at an external loop end.
    pub p_iterate: f64,
    /// Hard cap on iterations of externally decided loops.
    pub max_iterations: u32,
}

impl RandomDriver {
    /// Creates a driver from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            p_iterate: 0.4,
            max_iterations: 3,
        }
    }
}

impl Driver for RandomDriver {
    fn choose_branch(&mut self, _: &ProcessSchema, _: NodeId, targets: &[NodeId]) -> usize {
        self.rng.gen_range(0..targets.len().max(1))
    }

    fn decide_loop(&mut self, _: &ProcessSchema, _: NodeId, completed: u32) -> bool {
        completed < self.max_iterations && self.rng.gen_bool(self.p_iterate)
    }

    fn choose_activity(&mut self, _: &ProcessSchema, enabled: &[NodeId]) -> usize {
        self.rng.gen_range(0..enabled.len().max(1))
    }

    fn output_value(&mut self, schema: &ProcessSchema, _: NodeId, data: DataId) -> Value {
        match schema.data_element(data).map(|d| d.ty) {
            Ok(ValueType::Bool) => Value::Bool(self.rng.gen_bool(0.5)),
            Ok(ValueType::Int) => Value::Int(self.rng.gen_range(0..1000)),
            Ok(ValueType::Float) => Value::Float(self.rng.gen_range(0.0..100.0)),
            Ok(ValueType::Str) => Value::Str(format!("v{}", self.rng.gen_range(0..100))),
            Err(_) => Value::Null,
        }
    }
}

/// Generates `n` instances of a schema at random progress points: instance
/// `k` executes a random number of activities between 0 and roughly the
/// schema's activity count. Deterministic per seed.
pub fn generate_population(ex: &Execution<'_>, n: usize, seed: u64) -> Vec<InstanceState> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let activities = ex.schema.activities().count();
    (0..n)
        .map(|k| {
            let mut driver = RandomDriver::new(seed.wrapping_add(k as u64));
            let mut st = ex.init().expect("init");
            let steps = rng.gen_range(0..=activities.saturating_mul(2));
            ex.run(&mut st, &mut driver, Some(steps)).expect("run");
            st
        })
        .collect()
}

/// Generates `n` *finished* instances (ran to completion).
pub fn generate_finished_population(ex: &Execution<'_>, n: usize, seed: u64) -> Vec<InstanceState> {
    (0..n)
        .map(|k| {
            let mut driver = RandomDriver::new(seed.wrapping_add(k as u64));
            let mut st = ex.init().expect("init");
            ex.run(&mut st, &mut driver, None).expect("run");
            st
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemagen::{generate_schema, GenParams};

    #[test]
    fn population_is_deterministic_and_varied() {
        let s = generate_schema(&GenParams::default(), 3);
        let ex = Execution::new(&s).unwrap();
        let p1 = generate_population(&ex, 20, 99);
        let p2 = generate_population(&ex, 20, 99);
        assert_eq!(p1, p2, "same seed, same population");
        let progressed: usize = p1.iter().filter(|st| !st.history.is_empty()).count();
        assert!(progressed > 5, "population should show progress variety");
    }

    #[test]
    fn finished_population_finishes() {
        let s = generate_schema(&GenParams::sized(10), 5);
        let ex = Execution::new(&s).unwrap();
        for st in generate_finished_population(&ex, 10, 7) {
            assert!(ex.is_finished(&st));
        }
    }

    #[test]
    fn random_driver_handles_all_scenarios() {
        // Drive the clinical pathway (loops + guards) to completion with
        // many seeds; the while-loop is guard-driven and must terminate
        // because lab results are random booleans.
        let s = crate::scenarios::clinical_pathway();
        let ex = Execution::new(&s).unwrap();
        let mut finished = 0;
        for seed in 0..20 {
            let mut driver = RandomDriver::new(seed);
            let mut st = ex.init().unwrap();
            // Bound the run to avoid pathological 1e6-iteration flukes.
            ex.run(&mut st, &mut driver, Some(500)).unwrap();
            if ex.is_finished(&st) {
                finished += 1;
            }
        }
        assert!(
            finished >= 15,
            "most random runs should finish: {finished}/20"
        );
    }
}
