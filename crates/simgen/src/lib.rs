//! # adept-simgen — synthetic workloads for the ADEPT2 experiments
//!
//! The paper evaluates on production-scale instance populations
//! ("migration of thousands of instances on-the-fly"). This crate supplies
//! the workloads that substitute for the authors' deployments:
//!
//! * [`schemagen`] — a seeded generator of *correct* block-structured
//!   schemas (parallel/conditional/loop blocks, data flow, sync edges);
//!   every output passes `adept-verify` by construction;
//! * [`popgen`] — instance populations at random progress points, driven
//!   by a deterministic [`RandomDriver`];
//! * [`changegen`] — random valid change operations for equivalence
//!   property tests and migration benchmarks;
//! * [`exceptiongen`] — exception-heavy populations: schemas whose
//!   activities are annotated flaky (with failure budgets) or
//!   deadline-bound, the raw material of the `adept-adapt` stress tests;
//! * [`scenarios`] — the paper's literal processes: the Fig. 1 / Fig. 3
//!   order process (plus ΔT and the I2 bias), an e-health clinical pathway
//!   and a container-logistics process (the deployment domains reported in
//!   Sec. 3).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod changegen;
pub mod exceptiongen;
pub mod popgen;
pub mod scenarios;
pub mod schemagen;

pub use changegen::{random_change, try_random_change, OpKind, ALL_OP_KINDS};
pub use exceptiongen::{
    exception_scenario, exception_schema, flaky_budget, flaky_nodes, ExceptionParams, FLAKY_PREFIX,
};
pub use popgen::{generate_finished_population, generate_population, RandomDriver};
pub use schemagen::{generate_schema, GenParams};
