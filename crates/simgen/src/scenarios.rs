//! The paper's literal scenarios plus the application domains it cites.

use adept_core::{ChangeOp, NewActivity};
use adept_model::{CmpOp, Guard, LoopCond, NodeId, ProcessSchema, SchemaBuilder, Value, ValueType};

/// The order process of paper Fig. 1 / Fig. 3 (version V1):
/// `get order -> collect data -> AND(confirm order | compose order -> pack
/// goods) -> deliver goods`, with an `amount` data element.
pub fn order_process() -> ProcessSchema {
    let mut b = SchemaBuilder::new("online order");
    let amount = b.data("amount", ValueType::Int);
    let get = b.activity_with("get order", |a| a.role = Some("sales".into()));
    b.write(get, amount);
    b.activity("collect data");
    b.and_split();
    b.branch();
    let confirm = b.activity_with("confirm order", |a| a.role = Some("sales".into()));
    b.read(confirm, amount);
    b.branch();
    b.activity_with("compose order", |a| a.role = Some("warehouse".into()));
    b.activity_with("pack goods", |a| a.role = Some("warehouse".into()));
    b.and_join();
    b.activity_with("deliver goods", |a| a.role = Some("logistics".into()));
    b.build().expect("order process is well-formed")
}

/// The type change ΔT of paper Fig. 1 as change operations against
/// [`order_process`]: `addActivity(send questions, compose order, pack
/// goods)`. The accompanying `insertSyncEdge(send questions, confirm
/// order)` needs the id of the inserted activity, so it is produced by
/// [`fig1_sync_op`] after the first operation was applied.
pub fn fig1_insert_op(schema: &ProcessSchema) -> ChangeOp {
    let compose = schema
        .node_by_name("compose order")
        .expect("compose order")
        .id;
    let pack = schema.node_by_name("pack goods").expect("pack goods").id;
    ChangeOp::SerialInsert {
        activity: NewActivity::named("send questions"),
        pred: compose,
        succ: pack,
    }
}

/// The second operation of ΔT: `insertSyncEdge(send questions, confirm
/// order)`. `send_questions` is the node the first operation inserted.
pub fn fig1_sync_op(schema: &ProcessSchema, send_questions: NodeId) -> ChangeOp {
    let confirm = schema
        .node_by_name("confirm order")
        .expect("confirm order")
        .id;
    ChangeOp::InsertSyncEdge {
        from: send_questions,
        to: confirm,
    }
}

/// The complete ΔT of paper Fig. 1 as a single composite change (both
/// operations committed together, as the paper's type change is atomic).
/// The inserted activity's id is learned from a dry run, which is sound
/// because id allocation is deterministic for a fixed base schema.
pub fn fig1_delta_ops(schema: &ProcessSchema) -> Vec<ChangeOp> {
    let insert = fig1_insert_op(schema);
    let mut probe = schema.clone();
    let rec = adept_core::apply_op(&mut probe, &insert).expect("fig1 insert applies");
    let sq = rec.inserted_activity().expect("activity inserted");
    vec![insert, fig1_sync_op(schema, sq)]
}

/// The ad-hoc modification of instance I2 in Fig. 1: a sync edge
/// `confirm order -> compose order`, which later conflicts with ΔT
/// (deadlock-causing cycle).
pub fn fig1_i2_bias_op(schema: &ProcessSchema) -> ChangeOp {
    let confirm = schema
        .node_by_name("confirm order")
        .expect("confirm order")
        .id;
    let compose = schema
        .node_by_name("compose order")
        .expect("compose order")
        .id;
    ChangeOp::InsertSyncEdge {
        from: confirm,
        to: compose,
    }
}

/// An e-health clinical pathway (the paper reports deployments in
/// e-health): admission, anamnesis, a loop of examination/lab cycles, a
/// guarded surgery branch, therapy and discharge.
pub fn clinical_pathway() -> ProcessSchema {
    let mut b = SchemaBuilder::new("clinical pathway");
    let severity = b.data("severity", ValueType::Int);
    let lab_ok = b.data("lab ok", ValueType::Bool);
    let admit = b.activity_with("admit patient", |a| a.role = Some("nurse".into()));
    b.write(admit, severity);
    let anam = b.activity_with("anamnesis", |a| a.role = Some("physician".into()));
    b.read(anam, severity);
    b.loop_start();
    let exam = b.activity_with("examination", |a| a.role = Some("physician".into()));
    let lab = b.activity_with("lab tests", |a| a.role = Some("lab".into()));
    b.write(lab, lab_ok);
    let _ = exam;
    b.loop_end(LoopCond::While(Guard::new(
        lab_ok,
        CmpOp::Eq,
        Value::Bool(false),
    )));
    b.xor_split();
    b.case_when(Guard::new(severity, CmpOp::Ge, Value::Int(7)));
    b.activity_with("surgery", |a| a.role = Some("surgeon".into()));
    b.activity_with("post-op care", |a| a.role = Some("nurse".into()));
    b.case();
    b.activity_with("medication", |a| a.role = Some("physician".into()));
    b.xor_join();
    b.activity_with("therapy plan", |a| a.role = Some("physician".into()));
    b.activity_with("discharge", |a| a.role = Some("nurse".into()));
    b.build().expect("clinical pathway is well-formed")
}

/// A container-transport process modelled after the paper's reference [3]
/// (Bassil/Keller/Kropf: workflow-oriented container transportation):
/// booking, parallel customs/vessel handling with a sync dependency, and
/// delivery.
pub fn container_logistics() -> ProcessSchema {
    let mut b = SchemaBuilder::new("container transport");
    let weight = b.data("weight", ValueType::Float);
    let cleared = b.data("customs cleared", ValueType::Bool);
    let book = b.activity_with("book transport", |a| a.role = Some("dispatcher".into()));
    b.write(book, weight);
    b.activity("assign container");
    b.and_split();
    b.branch();
    let docs = b.activity_with("prepare customs docs", |a| a.role = Some("customs".into()));
    let clear = b.activity_with("customs clearance", |a| a.role = Some("customs".into()));
    b.write(clear, cleared);
    b.branch();
    let load = b.activity_with("load on vessel", |a| a.role = Some("port".into()));
    b.read(load, weight);
    let stow = b.activity("stow & secure");
    b.and_join();
    b.activity("sea transport");
    b.activity_with("deliver container", |a| a.role = Some("dispatcher".into()));
    // Loading may only start once customs clearance is through.
    b.sync(clear, load);
    let _ = (docs, stow);
    b.build().expect("container transport is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_core::apply_op;
    use adept_verify::is_correct;

    #[test]
    fn all_scenarios_verify() {
        assert!(is_correct(&order_process()));
        assert!(is_correct(&clinical_pathway()));
        assert!(is_correct(&container_logistics()));
    }

    #[test]
    fn fig1_delta_applies_to_order_process() {
        let mut s = order_process();
        let op1 = fig1_insert_op(&s);
        let rec = apply_op(&mut s, &op1).unwrap();
        let sq = rec.inserted_activity().unwrap();
        let op2 = fig1_sync_op(&s, sq);
        apply_op(&mut s, &op2).unwrap();
        assert!(is_correct(&s));
        assert!(s.node_by_name("send questions").is_some());
        assert_eq!(s.sync_edges().count(), 1);
    }

    #[test]
    fn i2_bias_conflicts_with_fig1_delta() {
        let mut s = order_process();
        let bias_op = fig1_i2_bias_op(&s);
        apply_op(&mut s, &bias_op).unwrap();
        let op1 = fig1_insert_op(&s);
        let rec = apply_op(&mut s, &op1).unwrap();
        let sq = rec.inserted_activity().unwrap();
        let op2 = fig1_sync_op(&s, sq);
        let err = apply_op(&mut s, &op2);
        assert!(err.is_err(), "the combination must deadlock");
    }

    #[test]
    fn scenarios_have_roles_for_worklists() {
        let s = order_process();
        assert!(s
            .activities()
            .any(|n| n.attrs.role.as_deref() == Some("warehouse")));
        let c = clinical_pathway();
        assert!(c
            .activities()
            .any(|n| n.attrs.role.as_deref() == Some("physician")));
    }
}
