//! Seeded random generation of correct block-structured schemas.
//!
//! The generator builds schemas the same way a modeller would — through the
//! [`SchemaBuilder`] — and tracks which data elements are *definitely
//! written* at every sequence position, so generated reads can never
//! violate the data-flow verifier. Every generated schema passes
//! `adept_verify::verify_schema` (property-tested).

use adept_model::{DataId, LoopCond, NodeId, ProcessSchema, SchemaBuilder, ValueType};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Parameters of the schema generator.
#[derive(Debug, Clone)]
pub struct GenParams {
    /// Rough number of activities to generate (the budget).
    pub target_activities: usize,
    /// Maximum block nesting depth.
    pub max_depth: usize,
    /// Probability of opening a parallel block at a sequence position.
    pub p_parallel: f64,
    /// Probability of opening a conditional block.
    pub p_xor: f64,
    /// Probability of opening a loop block.
    pub p_loop: f64,
    /// Maximum branches per parallel/conditional block.
    pub max_branches: usize,
    /// Number of data elements to declare.
    pub data_elements: usize,
    /// Probability that an activity reads an available data element.
    pub p_read: f64,
    /// Probability that an activity writes a data element.
    pub p_write: f64,
    /// Probability of adding a sync edge inside a parallel block.
    pub p_sync: f64,
}

impl Default for GenParams {
    fn default() -> Self {
        Self {
            target_activities: 20,
            max_depth: 3,
            p_parallel: 0.18,
            p_xor: 0.15,
            p_loop: 0.08,
            max_branches: 3,
            data_elements: 6,
            p_read: 0.35,
            p_write: 0.4,
            p_sync: 0.3,
        }
    }
}

impl GenParams {
    /// A parameter set scaled to roughly `n` activities.
    pub fn sized(n: usize) -> Self {
        Self {
            target_activities: n,
            ..Self::default()
        }
    }
}

/// Generates a random, verification-clean schema from a seed.
pub fn generate_schema(params: &GenParams, seed: u64) -> ProcessSchema {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = SchemaBuilder::new(format!("generated-{seed}"));
    let data: Vec<DataId> = (0..params.data_elements)
        .map(|i| {
            let ty = match i % 3 {
                0 => ValueType::Int,
                1 => ValueType::Bool,
                _ => ValueType::Str,
            };
            b.data(&format!("d{i}"), ty)
        })
        .collect();
    let mut budget = params.target_activities.max(1);
    let mut counter = 0usize;
    let mut written: BTreeSet<DataId> = BTreeSet::new();
    gen_sequence(
        &mut b,
        params,
        &mut rng,
        &data,
        &mut budget,
        0,
        &mut written,
        &mut counter,
        true,
    );
    let schema = b.build().expect("generator produces balanced blocks");
    debug_assert!(
        adept_verify::is_correct(&schema),
        "generator invariant violated:\n{}",
        adept_verify::verify_schema(&schema)
    );
    schema
}

/// Generates a sequence of elements. Returns the set of data elements
/// definitely written by the generated sequence, and collects the surface
/// activities (directly in this sequence, outside nested blocks) for sync
/// edge placement.
#[allow(clippy::too_many_arguments)]
fn gen_sequence(
    b: &mut SchemaBuilder,
    params: &GenParams,
    rng: &mut SmallRng,
    data: &[DataId],
    budget: &mut usize,
    depth: usize,
    written: &mut BTreeSet<DataId>,
    counter: &mut usize,
    force_nonempty: bool,
) -> Vec<NodeId> {
    let mut surface = Vec::new();
    let min_here = usize::from(force_nonempty);
    let mut produced = 0usize;
    // A forced sequence (block branch, loop body) emits at least one
    // element even with an exhausted budget — two empty branches of one
    // block would be structurally illegal. The top-level sequence keeps
    // emitting while budget remains, so the generated size reliably
    // scales with `target_activities` for every seed; nested sequences
    // end on a coin flip so block sizes stay varied.
    while produced < min_here || (*budget > 0 && (depth == 0 || rng.gen_bool(0.72))) {
        let roll: f64 = rng.gen();
        if depth < params.max_depth && *budget >= 4 && roll < params.p_parallel {
            gen_parallel(
                b,
                params,
                rng,
                data,
                budget,
                depth,
                written,
                counter,
                &mut surface,
            );
        } else if depth < params.max_depth
            && *budget >= 4
            && roll < params.p_parallel + params.p_xor
        {
            gen_xor(b, params, rng, data, budget, depth, written, counter);
        } else if depth < params.max_depth
            && *budget >= 2
            && roll < params.p_parallel + params.p_xor + params.p_loop
        {
            b.loop_start();
            let mut body_written = written.clone();
            gen_sequence(
                b,
                params,
                rng,
                data,
                budget,
                depth + 1,
                &mut body_written,
                counter,
                true,
            );
            b.loop_end(LoopCond::Times(rng.gen_range(1..=3)));
            // The body runs at least once (ADEPT loops are do-while), so
            // its writes are definite after the block.
            *written = body_written;
        } else {
            let n = gen_activity(b, params, rng, data, written, counter);
            surface.push(n);
            *budget = budget.saturating_sub(1);
        }
        produced += 1;
    }
    surface
}

fn gen_activity(
    b: &mut SchemaBuilder,
    params: &GenParams,
    rng: &mut SmallRng,
    data: &[DataId],
    written: &mut BTreeSet<DataId>,
    counter: &mut usize,
) -> NodeId {
    *counter += 1;
    let name = format!("act{}", *counter);
    let n = b.activity(&name);
    if !data.is_empty() {
        // Reads are satisfied at activity *start*, writes happen at
        // *completion*: an activity may only read what earlier activities
        // definitely wrote, never its own outputs.
        let avail: Vec<DataId> = written.iter().copied().collect();
        if rng.gen_bool(params.p_read) && !avail.is_empty() {
            let d = avail[rng.gen_range(0..avail.len())];
            b.read(n, d);
        }
        if rng.gen_bool(params.p_write) {
            let d = data[rng.gen_range(0..data.len())];
            b.write(n, d);
            written.insert(d);
        }
    }
    n
}

#[allow(clippy::too_many_arguments)]
fn gen_parallel(
    b: &mut SchemaBuilder,
    params: &GenParams,
    rng: &mut SmallRng,
    data: &[DataId],
    budget: &mut usize,
    depth: usize,
    written: &mut BTreeSet<DataId>,
    counter: &mut usize,
    surface: &mut Vec<NodeId>,
) {
    let branches = rng.gen_range(2..=params.max_branches.max(2));
    b.and_split();
    let mut branch_surfaces: Vec<Vec<NodeId>> = Vec::with_capacity(branches);
    let mut union: BTreeSet<DataId> = written.clone();
    for _ in 0..branches {
        b.branch();
        let mut bw = written.clone();
        let s = gen_sequence(
            b,
            params,
            rng,
            data,
            budget,
            depth + 1,
            &mut bw,
            counter,
            true,
        );
        branch_surfaces.push(s);
        union.extend(bw);
    }
    b.and_join();
    // All branches complete before the join: their writes accumulate.
    *written = union;
    // Sync edges between distinct branches, always oriented from a
    // lower-indexed branch to a higher-indexed one — a consistent
    // orientation can never close a cycle.
    if branch_surfaces.len() >= 2 && rng.gen_bool(params.p_sync) {
        let i = rng.gen_range(0..branch_surfaces.len() - 1);
        let j = rng.gen_range(i + 1..branch_surfaces.len());
        if let (Some(&from), Some(&to)) = (
            pick(rng, &branch_surfaces[i]),
            pick(rng, &branch_surfaces[j]),
        ) {
            b.sync(from, to);
        }
    }
    surface.extend(branch_surfaces.into_iter().flatten().take(0)); // nested nodes are not surface nodes
}

#[allow(clippy::too_many_arguments)]
fn gen_xor(
    b: &mut SchemaBuilder,
    params: &GenParams,
    rng: &mut SmallRng,
    data: &[DataId],
    budget: &mut usize,
    depth: usize,
    written: &mut BTreeSet<DataId>,
    counter: &mut usize,
) {
    let branches = rng.gen_range(2..=params.max_branches.max(2));
    b.xor_split();
    let mut intersection: Option<BTreeSet<DataId>> = None;
    for _ in 0..branches {
        b.case();
        let mut bw = written.clone();
        gen_sequence(
            b,
            params,
            rng,
            data,
            budget,
            depth + 1,
            &mut bw,
            counter,
            true,
        );
        intersection = Some(match intersection {
            None => bw,
            Some(acc) => acc.intersection(&bw).copied().collect(),
        });
    }
    b.xor_join();
    // Only one branch executes: keep the guaranteed intersection.
    if let Some(i) = intersection {
        *written = i;
    }
}

fn pick<'a, T>(rng: &mut SmallRng, v: &'a [T]) -> Option<&'a T> {
    if v.is_empty() {
        None
    } else {
        Some(&v[rng.gen_range(0..v.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_verify::is_correct;

    #[test]
    fn generated_schemas_verify_across_seeds() {
        for seed in 0..50 {
            let s = generate_schema(&GenParams::default(), seed);
            assert!(is_correct(&s), "seed {seed} produced an incorrect schema");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_schema(&GenParams::default(), 42);
        let b = generate_schema(&GenParams::default(), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn size_scales_with_target() {
        let small = generate_schema(&GenParams::sized(5), 7);
        let large = generate_schema(&GenParams::sized(80), 7);
        assert!(large.activities().count() > small.activities().count());
        assert!(large.activities().count() >= 40, "large schema too small");
    }

    #[test]
    fn generator_produces_variety() {
        let mut kinds = BTreeSet::new();
        for seed in 0..30 {
            let s = generate_schema(&GenParams::default(), seed);
            for n in s.nodes() {
                kinds.insert(n.kind);
            }
        }
        use adept_model::NodeKind;
        assert!(
            kinds.contains(&NodeKind::AndSplit),
            "no parallel blocks generated"
        );
        assert!(
            kinds.contains(&NodeKind::XorSplit),
            "no conditional blocks generated"
        );
        assert!(kinds.contains(&NodeKind::LoopStart), "no loops generated");
    }
}
