//! Exception-heavy workload generation for adaptation-loop stress tests.
//!
//! [`exception_schema`] wraps [`generate_schema`](crate::generate_schema)
//! and post-marks a fraction of the activities as *flaky*: their
//! `application` attribute carries a failure budget
//! (`"flaky:<budget>"`), which a test injector reads to decide how often
//! to fail the activity before letting it complete. Deadline-sensitive
//! activities get an `expected_duration_min`, so the adaptation loop's
//! logical-clock deadline scan has breaches to find. The generator stays
//! engine-free — it only annotates schemas; injecting the failures is
//! the harness's job.

use crate::schemagen::{generate_schema, GenParams};
use adept_model::{Node, NodeId, ProcessSchema};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `application` attribute prefix marking a flaky activity; the suffix is
/// the failure budget.
pub const FLAKY_PREFIX: &str = "flaky:";

/// Parameters of the exception-heavy generator.
#[derive(Debug, Clone)]
pub struct ExceptionParams {
    /// The underlying structural generator parameters.
    pub base: GenParams,
    /// Probability that an activity is marked flaky.
    pub p_flaky: f64,
    /// Maximum failure budget of a flaky activity (uniform in
    /// `1..=max_failures`).
    pub max_failures: u32,
    /// Probability that a flaky activity is additionally *unskippable* —
    /// the give-up path (escalation) exists because of these.
    pub p_unskippable: f64,
    /// Probability that an activity carries a deadline.
    pub p_deadline: f64,
    /// The deadline value, in logical-clock ticks.
    pub deadline_ticks: u32,
}

impl Default for ExceptionParams {
    fn default() -> Self {
        Self {
            base: GenParams::sized(8),
            p_flaky: 0.35,
            max_failures: 3,
            p_unskippable: 0.15,
            p_deadline: 0.2,
            deadline_ticks: 6,
        }
    }
}

/// Generates a verification-clean schema and marks a fraction of its
/// activities flaky / deadline-bound. Deterministic in `seed`.
pub fn exception_schema(params: &ExceptionParams, seed: u64) -> ProcessSchema {
    let mut schema = generate_schema(&params.base, seed);
    // A distinct stream from the structural generator's, so annotation
    // rolls don't depend on how many rolls the builder consumed.
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_f1a6);
    let ids: Vec<NodeId> = schema.activities().map(|n| n.id).collect();
    for id in ids {
        let flaky = rng.gen_bool(params.p_flaky);
        let unskippable = flaky && rng.gen_bool(params.p_unskippable);
        let deadline = rng.gen_bool(params.p_deadline);
        let budget = rng.gen_range(1..=params.max_failures.max(1));
        if let Ok(node) = schema.node_mut(id) {
            if flaky {
                node.attrs.application = Some(format!("{FLAKY_PREFIX}{budget}"));
                node.attrs.skippable = !unskippable;
            }
            if deadline {
                node.attrs.expected_duration_min = Some(params.deadline_ticks);
            }
        }
    }
    schema
}

/// The failure budget of a flaky activity, parsed from its `application`
/// attribute; `None` for reliable activities.
pub fn flaky_budget(node: &Node) -> Option<u32> {
    node.attrs
        .application
        .as_deref()
        .and_then(|a| a.strip_prefix(FLAKY_PREFIX))
        .and_then(|b| b.parse().ok())
}

/// All flaky activities of a schema with their failure budgets.
pub fn flaky_nodes(schema: &ProcessSchema) -> Vec<(NodeId, u32)> {
    schema
        .activities()
        .filter_map(|n| flaky_budget(n).map(|b| (n.id, b)))
        .collect()
}

/// A small deterministic exception scenario for tests and the
/// `adaptation` example: `intake → process → ship`, where `process` is
/// flaky (budget 2) but skippable and `ship` carries a deadline.
pub fn exception_scenario() -> ProcessSchema {
    let mut b = adept_model::SchemaBuilder::new("flaky order");
    let _intake = b.activity("intake");
    let process = b.activity("process");
    let ship = b.activity("ship");
    let mut schema = b.build().expect("scenario is a plain sequence");
    let p = schema.node_mut(process).expect("process exists");
    p.attrs.application = Some(format!("{FLAKY_PREFIX}2"));
    p.attrs.skippable = true;
    let s = schema.node_mut(ship).expect("ship exists");
    s.attrs.expected_duration_min = Some(4);
    schema
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_annotated() {
        let params = ExceptionParams::default();
        let a = exception_schema(&params, 7);
        let b = exception_schema(&params, 7);
        assert_eq!(a, b, "same seed, same schema");
        assert!(adept_verify::is_correct(&a));
        // Over a few seeds the generator must produce at least one flaky
        // activity (p_flaky = 0.35 over dozens of activities).
        let any_flaky = (0..8).any(|s| !flaky_nodes(&exception_schema(&params, s)).is_empty());
        assert!(any_flaky);
    }

    #[test]
    fn scenario_shape() {
        let s = exception_scenario();
        assert!(adept_verify::is_correct(&s));
        let process = s.node_by_name("process").unwrap();
        assert_eq!(flaky_budget(process), Some(2));
        assert!(process.attrs.skippable);
        let ship = s.node_by_name("ship").unwrap();
        assert_eq!(ship.attrs.expected_duration_min, Some(4));
        assert_eq!(flaky_nodes(&s).len(), 1);
    }
}
