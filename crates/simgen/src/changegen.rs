//! Random generation of valid change operations against a schema.
//!
//! Used by the equivalence property tests (fast compliance vs. trace
//! criterion) and by the migration benchmarks: each generated operation is
//! guaranteed to apply successfully (pre-/post-conditions included), so
//! benchmark loops never measure failed attempts.

use adept_core::{apply_op, ChangeOp, Delta, NewActivity};
use adept_model::{Blocks, EdgeKind, NodeKind, ProcessSchema};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which operation kinds the generator may produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `serialInsert`
    SerialInsert,
    /// `branchInsert`
    BranchInsert,
    /// `deleteActivity`
    Delete,
    /// `moveActivity`
    Move,
    /// `insertSyncEdge`
    SyncEdge,
}

/// All operation kinds.
pub const ALL_OP_KINDS: [OpKind; 5] = [
    OpKind::SerialInsert,
    OpKind::BranchInsert,
    OpKind::Delete,
    OpKind::Move,
    OpKind::SyncEdge,
];

/// Tries to generate and apply one random change of the given kind.
/// Returns the evolved schema and the delta on success.
pub fn try_random_change(
    schema: &ProcessSchema,
    kind: OpKind,
    rng: &mut SmallRng,
    name_hint: &str,
) -> Option<(ProcessSchema, Delta)> {
    let op = propose(schema, kind, rng, name_hint)?;
    let mut evolved = schema.clone();
    let rec = apply_op(&mut evolved, &op).ok()?;
    Some((evolved, std::iter::once(rec).collect()))
}

/// Generates a random valid change, retrying across kinds and anchors.
/// Returns `None` only for degenerate schemas where nothing applies.
pub fn random_change(
    schema: &ProcessSchema,
    seed: u64,
    name_hint: &str,
) -> Option<(ProcessSchema, Delta)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..64 {
        let kind = ALL_OP_KINDS[rng.gen_range(0..ALL_OP_KINDS.len())];
        if let Some(result) = try_random_change(schema, kind, &mut rng, name_hint) {
            return Some(result);
        }
    }
    None
}

/// Proposes (without applying) a random operation of the given kind.
pub fn propose(
    schema: &ProcessSchema,
    kind: OpKind,
    rng: &mut SmallRng,
    name_hint: &str,
) -> Option<ChangeOp> {
    match kind {
        OpKind::SerialInsert => {
            let e = random_control_edge(schema, rng)?;
            Some(ChangeOp::SerialInsert {
                activity: NewActivity::named(format!("{name_hint}-ins")),
                pred: e.0,
                succ: e.1,
            })
        }
        OpKind::BranchInsert => {
            let e = random_control_edge(schema, rng)?;
            Some(ChangeOp::BranchInsert {
                activity: NewActivity::named(format!("{name_hint}-cond")),
                pred: e.0,
                succ: e.1,
                guard: None,
            })
        }
        OpKind::Delete => {
            let candidates: Vec<_> = schema
                .activities()
                .filter(|n| is_serial(schema, n.id))
                .map(|n| n.id)
                .collect();
            let node = *pick(rng, &candidates)?;
            Some(ChangeOp::DeleteActivity { node })
        }
        OpKind::Move => {
            let candidates: Vec<_> = schema
                .activities()
                .filter(|n| is_serial(schema, n.id))
                .map(|n| n.id)
                .collect();
            let node = *pick(rng, &candidates)?;
            let edges: Vec<_> = schema
                .edges()
                .filter(|e| e.kind == EdgeKind::Control && e.from != node && e.to != node)
                .map(|e| (e.from, e.to))
                .collect();
            let (pred, succ) = *pick(rng, &edges)?;
            Some(ChangeOp::MoveActivity { node, pred, succ })
        }
        OpKind::SyncEdge => {
            let blocks = Blocks::analyze(schema).ok()?;
            let acts: Vec<_> = schema.activities().map(|n| n.id).collect();
            for _ in 0..16 {
                let a = *pick(rng, &acts)?;
                let b = *pick(rng, &acts)?;
                if a != b
                    && blocks.parallel_separator(a, b).is_some()
                    && blocks.same_loop_context(a, b)
                    && schema.edge_between(a, b, EdgeKind::Sync).is_none()
                {
                    return Some(ChangeOp::InsertSyncEdge { from: a, to: b });
                }
            }
            None
        }
    }
}

fn is_serial(schema: &ProcessSchema, n: adept_model::NodeId) -> bool {
    schema.in_edges_kind(n, EdgeKind::Control).count() == 1
        && schema.out_edges_kind(n, EdgeKind::Control).count() == 1
        && schema.in_edges_kind(n, EdgeKind::Sync).next().is_none()
        && schema.out_edges_kind(n, EdgeKind::Sync).next().is_none()
}

fn random_control_edge(
    schema: &ProcessSchema,
    rng: &mut SmallRng,
) -> Option<(adept_model::NodeId, adept_model::NodeId)> {
    let edges: Vec<_> = schema
        .edges()
        .filter(|e| e.kind == EdgeKind::Control)
        // Inserting right before the end node or after start is fine, but
        // keep away from loop-structure nodes to maximise applicability.
        .filter(|e| {
            let from_kind = schema
                .node(e.from)
                .map(|n| n.kind)
                .unwrap_or(NodeKind::Null);
            from_kind != NodeKind::LoopEnd
        })
        .map(|e| (e.from, e.to))
        .collect();
    pick(rng, &edges).copied()
}

fn pick<'a, T>(rng: &mut SmallRng, v: &'a [T]) -> Option<&'a T> {
    if v.is_empty() {
        None
    } else {
        Some(&v[rng.gen_range(0..v.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemagen::{generate_schema, GenParams};
    use adept_verify::is_correct;

    #[test]
    fn random_changes_preserve_correctness() {
        for seed in 0..30 {
            let s = generate_schema(&GenParams::default(), seed);
            if let Some((evolved, delta)) = random_change(&s, seed * 31 + 7, "rc") {
                assert!(is_correct(&evolved), "seed {seed}");
                assert_eq!(delta.len(), 1);
            }
        }
    }

    #[test]
    fn each_kind_is_produced_somewhere() {
        let mut produced = std::collections::BTreeSet::new();
        for seed in 0..60u64 {
            let s = generate_schema(&GenParams::sized(25), seed);
            let mut rng = SmallRng::seed_from_u64(seed);
            for kind in ALL_OP_KINDS {
                if try_random_change(&s, kind, &mut rng, "k").is_some() {
                    produced.insert(format!("{kind:?}"));
                }
            }
        }
        assert!(produced.len() >= 4, "got only {produced:?}");
    }

    #[test]
    fn chained_changes_stay_correct() {
        let mut s = generate_schema(&GenParams::sized(15), 11);
        let mut applied = 0;
        for i in 0..10u64 {
            if let Some((next, _)) = random_change(&s, 1000 + i, &format!("c{i}")) {
                s = next;
                applied += 1;
            }
        }
        assert!(applied >= 5, "only {applied} of 10 changes applied");
        assert!(is_correct(&s));
    }
}
