//! Persistence: snapshotting the repository and instance store to a
//! self-describing JSON document and restoring them.
//!
//! The original system keeps schemas and instance data in a relational
//! store so the PAIS survives restarts. This module is the
//! dependency-light equivalent: a [`Snapshot`] captures every process
//! type (all versions + deltas) and every instance (version, bias,
//! substitution block, runtime state); [`restore`] rebuilds a working
//! repository + store, re-deriving the caches (block structures,
//! overlays) that are deliberately not persisted.

use crate::instances::{InstanceStore, Representation, StoredInstance};
use crate::repo::SchemaRepository;
use crate::subst::SubstitutionBlock;
use crate::txnlog::{TxnLog, TxnRecord};
use adept_core::{ChangeError, Delta, ProcessType};
use adept_model::InstanceId;
use adept_state::InstanceState;
use serde::{Deserialize, Serialize};

/// Serialised form of one stored instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// Instance id.
    pub id: InstanceId,
    /// Process type name.
    pub type_name: String,
    /// Schema version the instance runs on.
    pub version: u32,
    /// Ad-hoc changes.
    pub bias: Delta,
    /// Substitution block (persisted so restore needs no re-application).
    pub subst: SubstitutionBlock,
    /// Runtime state.
    pub state: InstanceState,
}

/// A complete engine snapshot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Snapshot {
    /// Snapshot format version (for forward evolution).
    pub format: u32,
    /// Storage strategy of the instance store.
    pub strategy: Representation,
    /// All process types with their version chains and deltas.
    pub types: Vec<ProcessType>,
    /// All instances.
    pub instances: Vec<InstanceRecord>,
    /// The committed change-transaction log. Defaults to empty so
    /// format-1 snapshots (written before the log existed) still parse.
    pub txns: Vec<TxnRecord>,
}

// Hand-written so the `txns` field can default: format-1 snapshots were
// written before the transaction log existed and must stay restorable.
// The default is gated on the format — a format-2 document *missing* the
// field is corrupt (truncated write), not historic, and must not be
// silently restored with an empty audit log.
impl serde::Deserialize for Snapshot {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = serde::as_map(v, "Snapshot")?;
        let format: u32 = serde::Deserialize::deserialize(serde::field(m, "format")?)?;
        Ok(Snapshot {
            format,
            strategy: serde::Deserialize::deserialize(serde::field(m, "strategy")?)?,
            types: serde::Deserialize::deserialize(serde::field(m, "types")?)?,
            instances: serde::Deserialize::deserialize(serde::field(m, "instances")?)?,
            txns: match serde::field(m, "txns") {
                Ok(v) => serde::Deserialize::deserialize(v)?,
                Err(_) if format <= 1 => Vec::new(),
                Err(e) => return Err(e),
            },
        })
    }
}

/// Current snapshot format version. Version 2 added the change-transaction
/// log (`txns`).
pub const SNAPSHOT_FORMAT: u32 = 2;

/// Captures a snapshot including the change-transaction log.
pub fn snapshot_with_txns(
    repo: &SchemaRepository,
    store: &InstanceStore,
    txn_log: &TxnLog,
) -> Snapshot {
    let mut s = snapshot(repo, store);
    s.txns = txn_log.records();
    s
}

/// Captures a snapshot of a repository + store pair (with an empty txn
/// log; see [`snapshot_with_txns`]).
///
/// Instances are collected per shard via [`InstanceStore::all`] — one
/// shard lock at a time, no global barrier — and recorded in id order.
/// Instances whose type is unknown to the repository are skipped (they
/// could not be restored; the worklist surfaces them as corruption at
/// run time).
pub fn snapshot(repo: &SchemaRepository, store: &InstanceStore) -> Snapshot {
    let mut types = Vec::new();
    for name in repo.type_names() {
        if let Some(pt) = repo.process_type(&name) {
            types.push(pt);
        }
    }
    let known: std::collections::BTreeSet<String> = repo.type_names().into_iter().collect();
    let instances = store
        .all()
        .into_iter()
        .filter(|inst| known.contains(&inst.type_name))
        .map(|inst| InstanceRecord {
            id: inst.id,
            type_name: inst.type_name,
            version: inst.version,
            bias: inst.bias,
            subst: inst.subst,
            state: inst.state,
        })
        .collect();
    Snapshot {
        format: SNAPSHOT_FORMAT,
        strategy: store.strategy(),
        types,
        instances,
        txns: Vec::new(),
    }
}

/// Serialises a snapshot to pretty JSON.
pub fn to_json(s: &Snapshot) -> Result<String, ChangeError> {
    serde_json::to_string_pretty(s)
        .map_err(|e| ChangeError::Precondition(format!("snapshot serialisation failed: {e}")))
}

/// Deserialises a snapshot from JSON.
pub fn from_json(json: &str) -> Result<Snapshot, ChangeError> {
    let s: Snapshot = serde_json::from_str(json)
        .map_err(|e| ChangeError::Precondition(format!("snapshot parse failed: {e}")))?;
    if s.format == 0 || s.format > SNAPSHOT_FORMAT {
        return Err(ChangeError::Precondition(format!(
            "unsupported snapshot format {} (expected 1..={SNAPSHOT_FORMAT})",
            s.format
        )));
    }
    Ok(s)
}

/// Restores repository, store *and* transaction log from a snapshot.
pub fn restore_with_txns(
    s: &Snapshot,
) -> Result<(SchemaRepository, InstanceStore, TxnLog), ChangeError> {
    let (repo, store) = restore(s)?;
    Ok((repo, store, TxnLog::from_records(s.txns.clone())))
}

/// Restores a repository + store pair from a snapshot. Caches (deployed
/// block structures, overlay materialisations) are re-derived; instance
/// ids are preserved.
pub fn restore(s: &Snapshot) -> Result<(SchemaRepository, InstanceStore), ChangeError> {
    let repo = SchemaRepository::new();
    for pt in &s.types {
        // Re-deploy version 1, then re-play the recorded deltas so the
        // repository rebuilds its deployment caches and keeps the exact
        // version chain (ids included, since application is id-stable
        // relative to the same base schema).
        let base = pt
            .versions
            .first()
            .ok_or_else(|| ChangeError::Precondition("type without versions".into()))?;
        let name = repo.deploy(base.clone())?;
        for (i, _delta) in pt.deltas.iter().enumerate() {
            // Prefer exactness: push the recorded evolved schema directly
            // by applying the recorded ops; equality is asserted below.
            let ops: Vec<adept_core::ChangeOp> =
                pt.deltas[i].ops.iter().map(|r| r.op.clone()).collect();
            let (v, _) = repo.evolve(&name, &ops)?;
            let rebuilt = repo
                .deployed(&name, v)
                .ok_or_else(|| ChangeError::Precondition("evolve lost version".into()))?;
            let recorded = &pt.versions[i + 1];
            if rebuilt.schema.node_count() != recorded.node_count()
                || rebuilt.schema.edge_count() != recorded.edge_count()
            {
                return Err(ChangeError::Precondition(format!(
                    "snapshot replay diverged for {name} V{v}"
                )));
            }
        }
    }
    let store = InstanceStore::new(s.strategy);
    for rec in &s.instances {
        store.insert_restored(StoredInstance {
            id: rec.id,
            type_name: rec.type_name.clone(),
            version: rec.version,
            bias: rec.bias.clone(),
            subst: rec.subst.clone(),
            state: rec.state.clone(),
            full_copy: None,
            cached_overlay: None,
        });
    }
    Ok((repo, store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_core::apply_op;
    use adept_core::{ChangeOp, NewActivity};
    use adept_model::SchemaBuilder;

    fn world() -> (SchemaRepository, InstanceStore, String) {
        let mut b = SchemaBuilder::new("p");
        b.activity("a");
        b.activity("b");
        let repo = SchemaRepository::new();
        let name = repo.deploy(b.build().unwrap()).unwrap();
        let store = InstanceStore::new(Representation::Hybrid);
        let dep = repo.deployed(&name, 1).unwrap();
        let st = dep.execution().init().unwrap();
        let id = store.create(&name, 1, st.clone());
        // Bias the instance.
        let mut materialized = (*dep.schema).clone();
        materialized.reserve_private_id_space();
        let a = materialized.node_by_name("a").unwrap().id;
        let bb = materialized.node_by_name("b").unwrap().id;
        let mut bias = Delta::new();
        bias.push(
            apply_op(
                &mut materialized,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("x"),
                    pred: a,
                    succ: bb,
                },
            )
            .unwrap(),
        );
        store.set_bias(id, bias, &materialized, st);
        (repo, store, name)
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let (repo, store, _name) = world();
        let snap = snapshot(&repo, &store);
        let json = to_json(&snap).unwrap();
        let parsed = from_json(&json).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn restore_rebuilds_repo_and_store() {
        let (repo, store, name) = world();
        let snap = snapshot(&repo, &store);
        let (repo2, store2) = restore(&snap).unwrap();
        assert_eq!(repo2.latest_version(&name), Some(1));
        assert_eq!(store2.len(), 1);
        let id = store2.instances_of(&name)[0];
        assert!(store2.get(id).unwrap().is_biased());
        let overlay = store2.schema_of(&repo2, id).unwrap();
        assert!(overlay.node_by_name("x").is_some());
    }

    #[test]
    fn restored_store_allocates_fresh_ids() {
        let (repo, store, name) = world();
        let snap = snapshot(&repo, &store);
        let (repo2, store2) = restore(&snap).unwrap();
        let old_id = store2.instances_of(&name)[0];
        let dep = repo2.deployed(&name, 1).unwrap();
        let new_id = store2.create(&name, 1, dep.execution().init().unwrap());
        assert!(new_id.raw() > old_id.raw(), "ids must not collide");
    }

    #[test]
    fn format_1_snapshot_without_txns_still_parses() {
        let (repo, store, _) = world();
        let mut snap = snapshot(&repo, &store);
        snap.format = 1;
        // A format-1 writer never emitted the `txns` field.
        let json = serde_json::to_string(&snap)
            .unwrap()
            .replace(",\"txns\":[]", "");
        assert!(!json.contains("txns"), "field must be absent: {json}");
        let parsed = from_json(&json).unwrap();
        assert_eq!(parsed.format, 1);
        assert!(parsed.txns.is_empty());
        assert!(restore_with_txns(&parsed).is_ok());
    }

    #[test]
    fn unsupported_format_rejected() {
        let (repo, store, _) = world();
        let mut snap = snapshot(&repo, &store);
        snap.format = 99;
        let json = serde_json::to_string(&snap).unwrap();
        assert!(from_json(&json).is_err());
    }

    #[test]
    fn format_2_snapshot_missing_txns_is_corrupt() {
        let (repo, store, _) = world();
        let snap = snapshot(&repo, &store);
        // Same truncation as the format-1 test, but claiming format 2:
        // the field is mandatory there, so the document must be rejected
        // rather than restored with a silently empty audit log.
        let json = serde_json::to_string(&snap)
            .unwrap()
            .replace(",\"txns\":[]", "");
        assert!(from_json(&json).is_err());
    }

    #[test]
    fn evolved_world_replays_deltas() {
        let (repo, store, name) = world();
        let dep = repo.deployed(&name, 1).unwrap();
        let a = dep.schema.node_by_name("a").unwrap().id;
        let bb = dep.schema.node_by_name("b").unwrap().id;
        repo.evolve(
            &name,
            &[ChangeOp::SerialInsert {
                activity: NewActivity::named("typestep"),
                pred: a,
                succ: bb,
            }],
        )
        .unwrap();
        let snap = snapshot(&repo, &store);
        let (repo2, _) = restore(&snap).unwrap();
        assert_eq!(repo2.latest_version(&name), Some(2));
        assert!(repo2
            .deployed(&name, 2)
            .unwrap()
            .schema
            .node_by_name("typestep")
            .is_some());
    }
}
