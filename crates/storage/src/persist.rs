//! Persistence: snapshotting the repository and instance store to a
//! self-describing JSON document and restoring them.
//!
//! The original system keeps schemas and instance data in a relational
//! store so the PAIS survives restarts. This module is the
//! dependency-light equivalent: a [`Snapshot`] captures every process
//! type (all versions + deltas) and every instance (version, bias,
//! substitution block, runtime state); [`restore`] rebuilds a working
//! repository + store, re-deriving the caches (block structures,
//! overlays) that are deliberately not persisted.

use crate::error::StorageError;
use crate::instances::{InstanceStore, Representation, StoredInstance};
use crate::repo::SchemaRepository;
use crate::subst::SubstitutionBlock;
use crate::txnlog::{TxnLog, TxnRecord};
use adept_core::{Delta, ProcessType};
use adept_model::InstanceId;
use adept_state::InstanceState;
use serde::{Deserialize, Serialize};

/// Serialised form of one stored instance — also the post-image payload
/// of write-ahead-log records ([`crate::WalRecord::ChangeCommitted`],
/// [`crate::WalRecord::Migrated`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// Instance id.
    pub id: InstanceId,
    /// Process type name.
    pub type_name: String,
    /// Schema version the instance runs on.
    pub version: u32,
    /// Ad-hoc changes.
    pub bias: Delta,
    /// Substitution block (persisted so restore needs no re-application).
    pub subst: SubstitutionBlock,
    /// Runtime state.
    pub state: InstanceState,
}

impl InstanceRecord {
    /// The serialised form of a stored instance (caches dropped — they
    /// are re-derived on restore).
    pub fn of(inst: &StoredInstance) -> Self {
        InstanceRecord {
            id: inst.id,
            type_name: inst.type_name.clone(),
            version: inst.version,
            bias: inst.bias.clone(),
            subst: inst.subst.clone(),
            state: inst.state.clone(),
        }
    }

    /// Rebuilds the stored instance (caches empty, to be re-derived).
    pub fn into_stored(self) -> StoredInstance {
        StoredInstance {
            id: self.id,
            type_name: self.type_name,
            version: self.version,
            bias: self.bias,
            subst: self.subst,
            state: self.state,
            full_copy: None,
            cached_overlay: None,
        }
    }
}

/// A complete engine snapshot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Snapshot {
    /// Snapshot format version (for forward evolution).
    pub format: u32,
    /// Storage strategy of the instance store.
    pub strategy: Representation,
    /// All process types with their version chains and deltas.
    pub types: Vec<ProcessType>,
    /// All instances.
    pub instances: Vec<InstanceRecord>,
    /// The committed change-transaction log. Defaults to empty so
    /// format-1 snapshots (written before the log existed) still parse.
    pub txns: Vec<TxnRecord>,
    /// The write-ahead-log watermark this snapshot covers: recovery
    /// replays WAL entries with `seq > wal_seq` on top of it. 0 for
    /// snapshots taken without a durable WAL (nothing to replay).
    pub wal_seq: u64,
}

// Hand-written so historic fields can default: format-1 snapshots were
// written before the transaction log existed, format-2 snapshots before
// the write-ahead log, and both must stay restorable. Each default is
// gated on the format — a format-2 document *missing* `txns` (or a
// format-3 document missing `wal_seq`) is corrupt (truncated write), not
// historic, and must not be silently restored with defaults.
impl serde::Deserialize for Snapshot {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = serde::as_map(v, "Snapshot")?;
        let format: u32 = serde::Deserialize::deserialize(serde::field(m, "format")?)?;
        Ok(Snapshot {
            format,
            strategy: serde::Deserialize::deserialize(serde::field(m, "strategy")?)?,
            types: serde::Deserialize::deserialize(serde::field(m, "types")?)?,
            instances: serde::Deserialize::deserialize(serde::field(m, "instances")?)?,
            txns: match serde::field(m, "txns") {
                Ok(v) => serde::Deserialize::deserialize(v)?,
                Err(_) if format <= 1 => Vec::new(),
                Err(e) => return Err(e),
            },
            wal_seq: match serde::field(m, "wal_seq") {
                Ok(v) => serde::Deserialize::deserialize(v)?,
                Err(_) if format <= 2 => 0,
                Err(e) => return Err(e),
            },
        })
    }
}

/// Current snapshot format version. Version 2 added the change-transaction
/// log (`txns`); version 3 the write-ahead-log watermark (`wal_seq`).
pub const SNAPSHOT_FORMAT: u32 = 3;

/// Captures a snapshot including the change-transaction log.
pub fn snapshot_with_txns(
    repo: &SchemaRepository,
    store: &InstanceStore,
    txn_log: &TxnLog,
) -> Snapshot {
    let mut s = snapshot(repo, store);
    s.txns = txn_log.records();
    s
}

/// Captures a snapshot of a repository + store pair (with an empty txn
/// log; see [`snapshot_with_txns`]).
///
/// Instances are collected per shard via [`InstanceStore::all`] — one
/// shard lock at a time, no global barrier — and recorded in id order.
/// Instances whose type is unknown to the repository are skipped (they
/// could not be restored; the worklist surfaces them as corruption at
/// run time).
pub fn snapshot(repo: &SchemaRepository, store: &InstanceStore) -> Snapshot {
    let mut types = Vec::new();
    for name in repo.type_names() {
        if let Some(pt) = repo.process_type(&name) {
            types.push(pt);
        }
    }
    let known: std::collections::BTreeSet<String> = repo.type_names().into_iter().collect();
    let instances = store
        .all()
        .into_iter()
        .filter(|inst| known.contains(&inst.type_name))
        .map(|inst| InstanceRecord::of(&inst))
        .collect();
    Snapshot {
        format: SNAPSHOT_FORMAT,
        strategy: store.strategy(),
        types,
        instances,
        txns: Vec::new(),
        wal_seq: 0,
    }
}

/// Serialises a snapshot to compact JSON — the same codec the WAL uses,
/// so every persisted artefact of the engine reads identically.
pub fn to_json(s: &Snapshot) -> Result<String, StorageError> {
    serde_json::to_string(s).map_err(|e| StorageError::Encode {
        detail: format!("snapshot: {e}"),
    })
}

/// Deserialises a snapshot from JSON.
pub fn from_json(json: &str) -> Result<Snapshot, StorageError> {
    let s: Snapshot = serde_json::from_str(json)
        .map_err(|e| StorageError::corrupt(format!("snapshot parse failed: {e}")))?;
    if s.format == 0 || s.format > SNAPSHOT_FORMAT {
        return Err(StorageError::corrupt(format!(
            "unsupported snapshot format {} (expected 1..={SNAPSHOT_FORMAT})",
            s.format
        )));
    }
    Ok(s)
}

/// Restores repository, store *and* transaction log from a snapshot.
pub fn restore_with_txns(
    s: &Snapshot,
) -> Result<(SchemaRepository, InstanceStore, TxnLog), StorageError> {
    let (repo, store) = restore(s)?;
    Ok((repo, store, TxnLog::from_records(s.txns.clone())))
}

/// Restores a repository + store pair from a snapshot. Caches (deployed
/// block structures, overlay materialisations) are re-derived; instance
/// ids are preserved. Every failure — an empty version chain, a delta
/// that no longer applies, a replay that diverges from the recorded
/// schema — surfaces as a [`StorageError::Corrupt`]; nothing on this
/// path unwraps or swallows.
pub fn restore(s: &Snapshot) -> Result<(SchemaRepository, InstanceStore), StorageError> {
    let repo = SchemaRepository::new();
    for pt in &s.types {
        // Re-deploy version 1 (keeping the recorded schema id), then
        // re-play the recorded deltas so the repository rebuilds its
        // deployment caches and keeps the exact version chain (ids
        // included, since application is id-stable relative to the same
        // base schema).
        let base = pt
            .versions
            .first()
            .ok_or_else(|| StorageError::corrupt("type without versions"))?;
        let name = repo.deploy_recorded(base.clone())?;
        for (i, _delta) in pt.deltas.iter().enumerate() {
            // Prefer exactness: push the recorded evolved schema directly
            // by applying the recorded ops; equality is asserted below.
            let ops: Vec<adept_core::ChangeOp> =
                pt.deltas[i].ops.iter().map(|r| r.op.clone()).collect();
            let (v, _) = repo.evolve(&name, &ops)?;
            let rebuilt = repo
                .deployed(&name, v)
                .ok_or_else(|| StorageError::corrupt("evolve lost version"))?;
            let recorded = &pt.versions[i + 1];
            if rebuilt.schema.node_count() != recorded.node_count()
                || rebuilt.schema.edge_count() != recorded.edge_count()
            {
                return Err(StorageError::corrupt(format!(
                    "snapshot replay diverged for {name} V{v}"
                )));
            }
        }
    }
    let store = InstanceStore::new(s.strategy);
    for rec in &s.instances {
        store.insert_restored(rec.clone().into_stored());
    }
    Ok((repo, store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_core::apply_op;
    use adept_core::{ChangeOp, NewActivity};
    use adept_model::SchemaBuilder;

    fn world() -> (SchemaRepository, InstanceStore, String) {
        let mut b = SchemaBuilder::new("p");
        b.activity("a");
        b.activity("b");
        let repo = SchemaRepository::new();
        let name = repo.deploy(b.build().unwrap()).unwrap();
        let store = InstanceStore::new(Representation::Hybrid);
        let dep = repo.deployed(&name, 1).unwrap();
        let st = dep.execution().init().unwrap();
        let id = store.create(&name, 1, st.clone());
        // Bias the instance.
        let mut materialized = (*dep.schema).clone();
        materialized.reserve_private_id_space();
        let a = materialized.node_by_name("a").unwrap().id;
        let bb = materialized.node_by_name("b").unwrap().id;
        let mut bias = Delta::new();
        bias.push(
            apply_op(
                &mut materialized,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("x"),
                    pred: a,
                    succ: bb,
                },
            )
            .unwrap(),
        );
        store.set_bias(id, bias, &materialized, st);
        (repo, store, name)
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let (repo, store, _name) = world();
        let snap = snapshot(&repo, &store);
        let json = to_json(&snap).unwrap();
        let parsed = from_json(&json).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn restore_rebuilds_repo_and_store() {
        let (repo, store, name) = world();
        let snap = snapshot(&repo, &store);
        let (repo2, store2) = restore(&snap).unwrap();
        assert_eq!(repo2.latest_version(&name), Some(1));
        assert_eq!(store2.len(), 1);
        let id = store2.instances_of(&name)[0];
        assert!(store2.get(id).unwrap().is_biased());
        let overlay = store2.schema_of(&repo2, id).unwrap();
        assert!(overlay.node_by_name("x").is_some());
    }

    #[test]
    fn restored_store_allocates_fresh_ids() {
        let (repo, store, name) = world();
        let snap = snapshot(&repo, &store);
        let (repo2, store2) = restore(&snap).unwrap();
        let old_id = store2.instances_of(&name)[0];
        let dep = repo2.deployed(&name, 1).unwrap();
        let new_id = store2.create(&name, 1, dep.execution().init().unwrap());
        assert!(new_id.raw() > old_id.raw(), "ids must not collide");
    }

    #[test]
    fn format_1_snapshot_without_txns_still_parses() {
        let (repo, store, _) = world();
        let mut snap = snapshot(&repo, &store);
        snap.format = 1;
        // A format-1 writer emitted neither `txns` nor `wal_seq`.
        let json = serde_json::to_string(&snap)
            .unwrap()
            .replace(",\"txns\":[]", "")
            .replace(",\"wal_seq\":0", "");
        assert!(!json.contains("txns"), "field must be absent: {json}");
        let parsed = from_json(&json).unwrap();
        assert_eq!(parsed.format, 1);
        assert!(parsed.txns.is_empty());
        assert_eq!(parsed.wal_seq, 0);
        assert!(restore_with_txns(&parsed).is_ok());
    }

    #[test]
    fn format_2_snapshot_without_wal_seq_still_parses() {
        let (repo, store, _) = world();
        let mut snap = snapshot(&repo, &store);
        snap.format = 2;
        // A format-2 writer emitted `txns` but never `wal_seq`.
        let json = serde_json::to_string(&snap)
            .unwrap()
            .replace(",\"wal_seq\":0", "");
        assert!(!json.contains("wal_seq"), "field must be absent: {json}");
        let parsed = from_json(&json).unwrap();
        assert_eq!(parsed.format, 2);
        assert_eq!(parsed.wal_seq, 0);
        assert!(restore_with_txns(&parsed).is_ok());
    }

    #[test]
    fn unsupported_format_rejected() {
        let (repo, store, _) = world();
        let mut snap = snapshot(&repo, &store);
        snap.format = 99;
        let json = serde_json::to_string(&snap).unwrap();
        assert!(from_json(&json).is_err());
    }

    #[test]
    fn format_2_snapshot_missing_txns_is_corrupt() {
        let (repo, store, _) = world();
        let mut snap = snapshot(&repo, &store);
        snap.format = 2;
        // Same truncation as the format-1 test, but claiming format 2:
        // the field is mandatory there, so the document must be rejected
        // rather than restored with a silently empty audit log.
        let json = serde_json::to_string(&snap)
            .unwrap()
            .replace(",\"txns\":[]", "")
            .replace(",\"wal_seq\":0", "");
        assert!(from_json(&json).is_err());
    }

    #[test]
    fn format_3_snapshot_missing_wal_seq_is_corrupt() {
        let (repo, store, _) = world();
        let snap = snapshot(&repo, &store);
        assert_eq!(snap.format, 3);
        // A format-3 document without the watermark is a truncated write:
        // restoring it with wal_seq = 0 would re-replay the whole WAL on
        // top of a newer snapshot. Refuse instead.
        let json = serde_json::to_string(&snap)
            .unwrap()
            .replace(",\"wal_seq\":0", "");
        let err = from_json(&json).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn snapshot_json_is_compact() {
        let (repo, store, _) = world();
        let snap = snapshot(&repo, &store);
        let json = to_json(&snap).unwrap();
        assert_eq!(json.lines().count(), 1, "compact: one document, one line");
    }

    #[test]
    fn evolved_world_replays_deltas() {
        let (repo, store, name) = world();
        let dep = repo.deployed(&name, 1).unwrap();
        let a = dep.schema.node_by_name("a").unwrap().id;
        let bb = dep.schema.node_by_name("b").unwrap().id;
        repo.evolve(
            &name,
            &[ChangeOp::SerialInsert {
                activity: NewActivity::named("typestep"),
                pred: a,
                succ: bb,
            }],
        )
        .unwrap();
        let snap = snapshot(&repo, &store);
        let (repo2, _) = restore(&snap).unwrap();
        assert_eq!(repo2.latest_version(&name), Some(2));
        assert!(repo2
            .deployed(&name, 2)
            .unwrap()
            .schema
            .node_by_name("typestep")
            .is_some());
    }
}
