//! The sharded instance store and the three representation strategies of
//! paper Fig. 2.
//!
//! * [`Representation::RedundantFree`] — unbiased instances reference their
//!   schema; biased instances re-materialise their schema **on every
//!   access** ("another [alternative] to materialize instance-specific
//!   schemes on the fly").
//! * [`Representation::FullCopy`] — every biased instance keeps a
//!   **complete schema copy** ("one alternative would be to maintain a
//!   complete schema for each biased instance").
//! * [`Representation::Hybrid`] — ADEPT2's approach: biased instances keep
//!   a *minimal substitution block* which overlays the original schema on
//!   access, with the materialisation cached until the next change.
//!
//! # Sharding
//!
//! The store is split into `N` shards (a power of two, default
//! [`DEFAULT_SHARD_COUNT`]), each holding an independent
//! `RwLock<BTreeMap<InstanceId, StoredInstance>>` plus a per-shard
//! secondary index from type name to the instance ids living on that
//! shard. An instance's shard is `InstanceId::hash64() & (N - 1)` —
//! sequentially allocated ids spread uniformly, so concurrent commands on
//! different instances almost never contend on the same lock. Id
//! allocation is a single `AtomicU64` (no lock at all), and the
//! [`AccessStats`] counters are atomics, so **the schema read path takes
//! no write lock anywhere** — cache-hit reads are one shard read lock plus
//! one relaxed atomic increment.
//!
//! ## Lock order
//!
//! Machine-checked: shard locks are [`crate::ordered::OrderedRwLock`]s of
//! class `store.shard` — the root of every mutation path in the global
//! acquisition order (see `docs/LOCK_ORDER.md` for the authoritative
//! class DAG). Cross-shard operations ([`InstanceStore::ids`],
//! [`InstanceStore::len`], [`InstanceStore::memory`],
//! [`InstanceStore::all`], [`InstanceStore::instances_of`]) visit shards
//! sequentially, releasing each lock before taking the next — they
//! compose per-shard snapshots instead of stopping the world, so they
//! are cheap but not linearisable against concurrent writers (the same
//! was true of the old single-lock store across *calls*). The stats
//! counters and the id allocator are atomics and participate in no lock
//! order.

use crate::ordered::{classes, OrderedRwLock};
use crate::repo::SchemaRepository;
use crate::shards::Shards;
use crate::subst::SubstitutionBlock;
use adept_core::Delta;
use adept_model::{InstanceId, ProcessSchema};
use adept_state::InstanceState;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Storage strategy for instance-specific schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Representation {
    /// Reference + on-the-fly materialisation for biased instances.
    RedundantFree,
    /// Complete schema copy per biased instance.
    FullCopy,
    /// Reference + substitution block + cached overlay (ADEPT2).
    Hybrid,
}

/// One stored process instance.
#[derive(Debug, Clone)]
pub struct StoredInstance {
    /// Instance id.
    pub id: InstanceId,
    /// Process type name.
    pub type_name: String,
    /// Schema version the instance runs on.
    pub version: u32,
    /// The instance's ad-hoc changes (empty = unbiased).
    pub bias: Delta,
    /// Substitution block derived from the bias (Hybrid strategy).
    pub subst: SubstitutionBlock,
    /// Runtime state (marking + history + data).
    pub state: InstanceState,
    /// FullCopy strategy: the complete instance-specific schema.
    pub full_copy: Option<Arc<ProcessSchema>>,
    /// Hybrid strategy: cached overlay materialisation.
    pub cached_overlay: Option<Arc<ProcessSchema>>,
}

impl StoredInstance {
    /// Whether the instance deviates from its type schema.
    pub fn is_biased(&self) -> bool {
        !self.bias.is_empty()
    }
}

/// Access statistics of the store (cache behaviour of the Fig. 2 bench).
/// A point-in-time snapshot of the store's atomic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Schema accesses answered from a shared deployed schema.
    pub shared_hits: u64,
    /// Schema accesses answered from the per-instance overlay cache.
    pub cache_hits: u64,
    /// Schema accesses that had to materialise (overlay or replay).
    pub materializations: u64,
}

/// The live counters behind [`AccessStats`]: plain atomics, so the schema
/// **read** path (shared hits, cache hits) increments without taking any
/// lock — the old store took `stats.write()` on every cache-hit read,
/// *while holding the instances read lock*, which both serialised readers
/// and created a nested lock order. Relaxed ordering is sufficient:
/// the counters are monotonic tallies, not synchronisation.
#[derive(Debug, Default)]
struct StatCounters {
    shared_hits: AtomicU64,
    cache_hits: AtomicU64,
    materializations: AtomicU64,
}

impl StatCounters {
    fn snapshot(&self) -> AccessStats {
        AccessStats {
            shared_hits: self.shared_hits.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            materializations: self.materializations.load(Ordering::Relaxed),
        }
    }
}

/// Byte-level breakdown of the store's memory usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Shared deployed schemas (stored once per version).
    pub schema_bytes: usize,
    /// Markings, histories and data contexts.
    pub state_bytes: usize,
    /// Bias deltas + substitution blocks.
    pub bias_bytes: usize,
    /// Per-instance full copies (FullCopy strategy).
    pub full_copy_bytes: usize,
    /// Cached overlays (Hybrid strategy).
    pub cache_bytes: usize,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.schema_bytes
            + self.state_bytes
            + self.bias_bytes
            + self.full_copy_bytes
            + self.cache_bytes
    }
}

/// Default shard count: enough to make contention between a handful of
/// worker threads statistically rare, small enough that cross-shard
/// operations stay cheap.
pub const DEFAULT_SHARD_COUNT: usize = 16;

/// One shard: the instance map plus the per-type secondary index over the
/// ids living on this shard. Both live under **one** lock so they can
/// never be observed out of sync.
#[derive(Debug, Default)]
struct ShardState {
    instances: BTreeMap<InstanceId, StoredInstance>,
    by_type: BTreeMap<String, BTreeSet<InstanceId>>,
}

impl ShardState {
    fn insert(&mut self, inst: StoredInstance) {
        self.by_type
            .entry(inst.type_name.clone())
            .or_default()
            .insert(inst.id);
        self.instances.insert(inst.id, inst);
    }

    fn remove(&mut self, id: InstanceId) -> Option<StoredInstance> {
        let inst = self.instances.remove(&id)?;
        if let Some(set) = self.by_type.get_mut(&inst.type_name) {
            set.remove(&id);
            if set.is_empty() {
                self.by_type.remove(&inst.type_name);
            }
        }
        Some(inst)
    }
}

/// The sharded instance store. All methods take `&self`; sharing across
/// threads is the point.
#[derive(Debug)]
pub struct InstanceStore {
    strategy: Representation,
    shards: Shards<ShardState>,
    /// Lock-free id allocator: the **raw value of the most recently
    /// allocated id** (0 = nothing allocated yet). 64-bit, so the id
    /// space outlives any realistic deployment instead of silently
    /// wrapping like the old `RwLock<u32>` did at `u32::MAX`.
    next_id: AtomicU64,
    stats: StatCounters,
}

impl InstanceStore {
    /// Creates a store with the given representation strategy and
    /// [`DEFAULT_SHARD_COUNT`] shards.
    pub fn new(strategy: Representation) -> Self {
        Self::with_shards(strategy, DEFAULT_SHARD_COUNT)
    }

    /// Creates a store with an explicit shard count (rounded up to the
    /// next power of two, minimum 1). `with_shards(strategy, 1)` is the
    /// old single-map store — benchmarks use it as the contention
    /// baseline.
    pub fn with_shards(strategy: Representation, shards: usize) -> Self {
        Self {
            strategy,
            shards: Shards::new(&classes::STORE_SHARD, shards),
            next_id: AtomicU64::new(0),
            stats: StatCounters::default(),
        }
    }

    /// The store's strategy.
    pub fn strategy(&self) -> Representation {
        self.strategy
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.count()
    }

    #[inline]
    fn shard(&self, id: InstanceId) -> &OrderedRwLock<ShardState> {
        self.shards.for_id(id)
    }

    /// Creates a new (unbiased) instance of a type version.
    pub fn create(&self, type_name: &str, version: u32, state: InstanceState) -> InstanceId {
        let id = self.allocate_id();
        self.insert_new(id, type_name, version, state);
        id
    }

    /// Allocates the next instance id without inserting anything — the
    /// journaled creation path reserves the id first so the WAL record
    /// can carry it *before* the instance becomes visible.
    pub fn allocate_id(&self) -> InstanceId {
        let prev = self.next_id.fetch_add(1, Ordering::Relaxed);
        assert!(
            prev < u64::MAX,
            "instance id space exhausted (u64::MAX allocations)"
        );
        InstanceId(prev + 1)
    }

    /// Inserts a fresh unbiased instance under a previously
    /// [allocated](InstanceStore::allocate_id) id.
    pub fn insert_new(&self, id: InstanceId, type_name: &str, version: u32, state: InstanceState) {
        self.shard(id).write().insert(StoredInstance {
            id,
            type_name: type_name.to_string(),
            version,
            bias: Delta::new(),
            subst: SubstitutionBlock::default(),
            state,
            full_copy: None,
            cached_overlay: None,
        });
    }

    /// Inserts a fully-specified instance (persistence restore path). The
    /// id allocator is advanced past the restored id so future instances
    /// never collide.
    pub fn insert_restored(&self, inst: StoredInstance) {
        self.next_id.fetch_max(inst.id.raw(), Ordering::Relaxed);
        self.shard(inst.id).write().insert(inst);
    }

    /// Removes an instance (cancellation / archival), returning it. The
    /// id is **not** reused. Migration treats an instance that disappears
    /// mid-flight as [`adept_core::ConflictKind::Vanished`], not as a
    /// structural failure.
    pub fn remove(&self, id: InstanceId) -> Option<StoredInstance> {
        self.shard(id).write().remove(id)
    }

    /// Reads an instance (cloned snapshot).
    pub fn get(&self, id: InstanceId) -> Option<StoredInstance> {
        self.shard(id).read().instances.get(&id).cloned()
    }

    /// Reads an instance through a closure **without cloning it** — the
    /// hot-path accessor for worklist computation and command outcomes,
    /// where cloning the full state (marking + history + data) per access
    /// would dominate. The shard read lock is held only for the closure.
    pub fn with_instance<R>(
        &self,
        id: InstanceId,
        f: impl FnOnce(&StoredInstance) -> R,
    ) -> Option<R> {
        self.shard(id).read().instances.get(&id).map(f)
    }

    /// All stored instance ids, in id order — including instances whose
    /// type is unknown to the repository (the worklist surfaces those as
    /// corruption instead of hiding them). Composed from per-shard
    /// snapshots (one shard lock at a time, no global barrier).
    pub fn ids(&self) -> Vec<InstanceId> {
        // No len() pre-sizing: that would sweep every shard lock a second
        // time on the hottest read path (and the count is stale under
        // concurrent writers anyway).
        let mut ids = Vec::new();
        for shard in self.shards.iter() {
            ids.extend(shard.read().instances.keys().copied());
        }
        ids.sort_unstable();
        ids
    }

    /// All instance ids of a type, in id order. Served from the per-shard
    /// secondary indexes — O(matching instances), not O(all instances)
    /// like the old full-map filter scan.
    pub fn instances_of(&self, type_name: &str) -> Vec<InstanceId> {
        let mut ids = Vec::new();
        for shard in self.shards.iter() {
            if let Some(set) = shard.read().by_type.get(type_name) {
                ids.extend(set.iter().copied());
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Number of stored instances.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().instances.len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().instances.is_empty())
    }

    /// Cloned snapshots of all instances, in id order — the persistence
    /// path. Composed per shard; each shard's lock is released before the
    /// next is taken.
    pub fn all(&self) -> Vec<StoredInstance> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            out.extend(shard.read().instances.values().cloned());
        }
        out.sort_unstable_by_key(|i| i.id);
        out
    }

    /// Mutates an instance in place via the supplied closure.
    pub fn update<R>(&self, id: InstanceId, f: impl FnOnce(&mut StoredInstance) -> R) -> Option<R> {
        self.shard(id).write().instances.get_mut(&id).map(f)
    }

    /// Resolves the schema an instance currently executes on, following the
    /// store's representation strategy. `repo` provides the shared
    /// deployed versions.
    ///
    /// The fast path (unbiased instance, full copy, cached overlay) holds
    /// only the shard **read** lock; the stats tally is an atomic
    /// increment, not a write lock.
    pub fn schema_of(&self, repo: &SchemaRepository, id: InstanceId) -> Option<Arc<ProcessSchema>> {
        // Fast path: unbiased or cached.
        {
            let shard = self.shard(id).read();
            let inst = shard.instances.get(&id)?;
            if !inst.is_biased() {
                let dep = repo.deployed(&inst.type_name, inst.version)?;
                self.stats.shared_hits.fetch_add(1, Ordering::Relaxed);
                return Some(dep.schema);
            }
            match self.strategy {
                Representation::FullCopy => {
                    if let Some(fc) = &inst.full_copy {
                        self.stats.shared_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(fc.clone());
                    }
                }
                Representation::Hybrid => {
                    if let Some(c) = &inst.cached_overlay {
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(c.clone());
                    }
                }
                Representation::RedundantFree => {}
            }
        }
        // Slow path: materialise under the shard write lock.
        let mut shard = self.shard(id).write();
        let inst = shard.instances.get_mut(&id)?;
        let dep = repo.deployed(&inst.type_name, inst.version)?;
        let overlay = inst.subst.overlay(&dep.schema).ok()?;
        self.stats.materializations.fetch_add(1, Ordering::Relaxed);
        let arc = Arc::new(overlay);
        match self.strategy {
            Representation::Hybrid => inst.cached_overlay = Some(arc.clone()),
            Representation::FullCopy => inst.full_copy = Some(arc.clone()),
            Representation::RedundantFree => {}
        }
        Some(arc)
    }

    /// Records a new bias state for an instance after an ad-hoc change:
    /// stores the delta and substitution block, refreshes the runtime
    /// state, and updates the strategy-specific artefacts.
    pub fn set_bias(
        &self,
        id: InstanceId,
        bias: Delta,
        materialized: &ProcessSchema,
        state: InstanceState,
    ) -> bool {
        self.install_bias(id, None, bias, materialized, state)
    }

    /// Compare-and-set variant of [`InstanceStore::set_bias`]: the new
    /// bias/state is installed only if the instance's version, bias and
    /// state still match the snapshot the caller validated against —
    /// check and install happen under one shard write lock, so a change
    /// committed from a stale snapshot (racing commit, migration or
    /// execution step in between) is rejected instead of clobbering the
    /// concurrent update. Returns `false` on mismatch or unknown id.
    #[allow(clippy::too_many_arguments)]
    pub fn set_bias_if(
        &self,
        id: InstanceId,
        expected_version: u32,
        expected_bias: &Delta,
        expected_state: &InstanceState,
        bias: Delta,
        materialized: &ProcessSchema,
        state: InstanceState,
    ) -> bool {
        self.install_bias(
            id,
            Some((expected_version, expected_bias, expected_state)),
            bias,
            materialized,
            state,
        )
    }

    fn install_bias(
        &self,
        id: InstanceId,
        expected: Option<(u32, &Delta, &InstanceState)>,
        bias: Delta,
        materialized: &ProcessSchema,
        state: InstanceState,
    ) -> bool {
        let mut shard = self.shard(id).write();
        let Some(inst) = shard.instances.get_mut(&id) else {
            return false;
        };
        if let Some((version, exp_bias, exp_state)) = expected {
            if inst.version != version || inst.bias != *exp_bias || inst.state != *exp_state {
                return false;
            }
        }
        inst.subst = SubstitutionBlock::from_delta(&bias, materialized);
        inst.bias = bias;
        inst.state = state;
        match self.strategy {
            Representation::FullCopy => {
                inst.full_copy = Some(Arc::new(materialized.clone()));
                inst.cached_overlay = None;
            }
            Representation::Hybrid => {
                // Cache is invalidated; the next access re-overlays.
                inst.cached_overlay = None;
                inst.full_copy = None;
            }
            Representation::RedundantFree => {
                inst.full_copy = None;
                inst.cached_overlay = None;
            }
        }
        true
    }

    /// [`InstanceStore::set_bias_if`] with a write-ahead journaling hook:
    /// once the compare-and-set check passes, the fully-built candidate
    /// instance is handed to `journal` **before** it is installed — still
    /// under the shard write lock, so the WAL records installs in their
    /// visibility order. If journaling fails nothing is installed and the
    /// error surfaces (`Ok(false)` = CAS mismatch, as before).
    #[allow(clippy::too_many_arguments)]
    pub fn set_bias_if_journaled<E>(
        &self,
        id: InstanceId,
        expected_version: u32,
        expected_bias: &Delta,
        expected_state: &InstanceState,
        bias: Delta,
        materialized: &ProcessSchema,
        state: InstanceState,
        journal: impl FnOnce(&StoredInstance) -> Result<(), E>,
    ) -> Result<bool, E> {
        let mut shard = self.shard(id).write();
        let Some(inst) = shard.instances.get_mut(&id) else {
            return Ok(false);
        };
        if inst.version != expected_version
            || inst.bias != *expected_bias
            || inst.state != *expected_state
        {
            return Ok(false);
        }
        let (full_copy, cached_overlay) = match self.strategy {
            Representation::FullCopy => (Some(Arc::new(materialized.clone())), None),
            // Hybrid: cache invalidated, next access re-overlays.
            Representation::Hybrid | Representation::RedundantFree => (None, None),
        };
        let candidate = StoredInstance {
            id: inst.id,
            type_name: inst.type_name.clone(),
            version: inst.version,
            subst: SubstitutionBlock::from_delta(&bias, materialized),
            bias,
            state,
            full_copy,
            cached_overlay,
        };
        journal(&candidate)?;
        *inst = candidate;
        Ok(true)
    }

    /// Re-homes an instance after migration: new version, possibly rebased
    /// bias artefacts, adapted state.
    pub fn migrate(
        &self,
        id: InstanceId,
        new_version: u32,
        state: InstanceState,
        materialized: Option<&ProcessSchema>,
    ) -> bool {
        self.migrate_if(id, None, new_version, state, materialized)
    }

    /// Compare-and-set variant of [`InstanceStore::migrate`]: installs
    /// only if the instance's version and state still match the snapshot
    /// the migration checked compliance against — a command committing
    /// between the migration's read and its install would otherwise be
    /// silently overwritten by state adapted from the stale snapshot.
    /// Returns `false` on mismatch (callers re-read and retry).
    pub fn migrate_if(
        &self,
        id: InstanceId,
        expected: Option<(u32, &InstanceState)>,
        new_version: u32,
        state: InstanceState,
        materialized: Option<&ProcessSchema>,
    ) -> bool {
        let mut shard = self.shard(id).write();
        let Some(inst) = shard.instances.get_mut(&id) else {
            return false;
        };
        if let Some((version, exp_state)) = expected {
            if inst.version != version || inst.state != *exp_state {
                return false;
            }
        }
        inst.version = new_version;
        inst.state = state;
        inst.cached_overlay = None;
        inst.full_copy = None;
        if let Some(m) = materialized {
            inst.subst = SubstitutionBlock::from_delta(&inst.bias, m);
            match self.strategy {
                Representation::FullCopy => inst.full_copy = Some(Arc::new(m.clone())),
                Representation::Hybrid => inst.cached_overlay = Some(Arc::new(m.clone())),
                Representation::RedundantFree => {}
            }
        }
        true
    }

    /// [`InstanceStore::migrate_if`] with a write-ahead journaling hook —
    /// same contract as [`InstanceStore::set_bias_if_journaled`]: the
    /// candidate is journaled under the shard write lock after the CAS
    /// check passes and installed only if journaling succeeds.
    pub fn migrate_if_journaled<E>(
        &self,
        id: InstanceId,
        expected: Option<(u32, &InstanceState)>,
        new_version: u32,
        state: InstanceState,
        materialized: Option<&ProcessSchema>,
        journal: impl FnOnce(&StoredInstance) -> Result<(), E>,
    ) -> Result<bool, E> {
        let mut shard = self.shard(id).write();
        let Some(inst) = shard.instances.get_mut(&id) else {
            return Ok(false);
        };
        if let Some((version, exp_state)) = expected {
            if inst.version != version || inst.state != *exp_state {
                return Ok(false);
            }
        }
        let mut candidate = StoredInstance {
            id: inst.id,
            type_name: inst.type_name.clone(),
            version: new_version,
            bias: inst.bias.clone(),
            subst: inst.subst.clone(),
            state,
            full_copy: None,
            cached_overlay: None,
        };
        if let Some(m) = materialized {
            candidate.subst = SubstitutionBlock::from_delta(&candidate.bias, m);
            match self.strategy {
                Representation::FullCopy => candidate.full_copy = Some(Arc::new(m.clone())),
                Representation::Hybrid => candidate.cached_overlay = Some(Arc::new(m.clone())),
                Representation::RedundantFree => {}
            }
        }
        journal(&candidate)?;
        *inst = candidate;
        Ok(true)
    }

    /// Current access statistics (a relaxed snapshot of the atomic
    /// counters).
    pub fn stats(&self) -> AccessStats {
        self.stats.snapshot()
    }

    /// Byte-level memory accounting across all instances (Fig. 2),
    /// composed shard by shard.
    pub fn memory(&self, repo: &SchemaRepository) -> MemoryBreakdown {
        let mut mb = MemoryBreakdown {
            schema_bytes: repo.schema_bytes(),
            ..Default::default()
        };
        for shard in self.shards.iter() {
            let shard = shard.read();
            for inst in shard.instances.values() {
                mb.state_bytes += inst.state.approx_size();
                mb.bias_bytes += inst.bias.approx_size() + inst.subst.approx_size();
                if let Some(fc) = &inst.full_copy {
                    mb.full_copy_bytes += fc.approx_size();
                }
                if let Some(c) = &inst.cached_overlay {
                    mb.cache_bytes += c.approx_size();
                }
            }
        }
        mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_core::{apply_op, ChangeOp, NewActivity};
    use adept_model::SchemaBuilder;
    use adept_state::Execution;

    fn setup(strategy: Representation) -> (SchemaRepository, InstanceStore, String) {
        let mut b = SchemaBuilder::new("t");
        b.activity("a");
        b.activity("b");
        b.activity("c");
        let schema = b.build().unwrap();
        let repo = SchemaRepository::new();
        let name = repo.deploy(schema).unwrap();
        let store = InstanceStore::new(strategy);
        (repo, store, name)
    }

    fn make_biased(
        repo: &SchemaRepository,
        store: &InstanceStore,
        name: &str,
    ) -> (InstanceId, ProcessSchema) {
        let dep = repo.deployed(name, 1).unwrap();
        let ex = dep.execution();
        let st = ex.init().unwrap();
        let id = store.create(name, 1, st.clone());
        let mut materialized = (*dep.schema).clone();
        materialized.reserve_private_id_space();
        let a = materialized.node_by_name("a").unwrap().id;
        let b = materialized.node_by_name("b").unwrap().id;
        let mut bias = Delta::new();
        bias.push(
            apply_op(
                &mut materialized,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("ad-hoc"),
                    pred: a,
                    succ: b,
                },
            )
            .unwrap(),
        );
        assert!(store.set_bias(id, bias, &materialized, st));
        (id, materialized)
    }

    #[test]
    fn unbiased_instances_share_schema() {
        let (repo, store, name) = setup(Representation::Hybrid);
        let dep = repo.deployed(&name, 1).unwrap();
        let st = dep.execution().init().unwrap();
        let i1 = store.create(&name, 1, st.clone());
        let i2 = store.create(&name, 1, st);
        let s1 = store.schema_of(&repo, i1).unwrap();
        let s2 = store.schema_of(&repo, i2).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2), "redundant-free: same Arc");
        assert_eq!(store.stats().shared_hits, 2);
        assert_eq!(store.stats().materializations, 0);
    }

    #[test]
    fn hybrid_caches_overlay() {
        let (repo, store, name) = setup(Representation::Hybrid);
        let (id, materialized) = make_biased(&repo, &store, &name);
        let s1 = store.schema_of(&repo, id).unwrap();
        assert_eq!(*s1, materialized);
        assert_eq!(store.stats().materializations, 1);
        let s2 = store.schema_of(&repo, id).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(store.stats().cache_hits, 1);
        assert_eq!(store.stats().materializations, 1, "no re-materialisation");
    }

    #[test]
    fn redundant_free_rematerializes_every_access() {
        let (repo, store, name) = setup(Representation::RedundantFree);
        let (id, _) = make_biased(&repo, &store, &name);
        store.schema_of(&repo, id).unwrap();
        store.schema_of(&repo, id).unwrap();
        assert_eq!(store.stats().materializations, 2);
    }

    #[test]
    fn full_copy_stores_per_instance_schema() {
        let (repo, store, name) = setup(Representation::FullCopy);
        let (id, _) = make_biased(&repo, &store, &name);
        let mem = store.memory(&repo);
        assert!(mem.full_copy_bytes > 0, "{mem:?}");
        let _ = store.schema_of(&repo, id).unwrap();
        assert_eq!(store.stats().shared_hits, 1, "full copy needs no overlay");
    }

    #[test]
    fn memory_breakdown_orders_strategies() {
        // Hybrid bias bytes should be far below a full schema copy. The
        // advantage appears for realistically sized schemas (the fixed
        // overhead of a block can exceed a 5-node toy schema), so build a
        // 40-activity process.
        fn setup_large(strategy: Representation) -> (SchemaRepository, InstanceStore, String) {
            let mut b = SchemaBuilder::new("large");
            b.activity("a");
            b.activity("b");
            for i in 0..40 {
                b.activity(&format!("step {i}"));
            }
            let schema = b.build().unwrap();
            let repo = SchemaRepository::new();
            let name = repo.deploy(schema).unwrap();
            (repo, InstanceStore::new(strategy), name)
        }
        let (repo_h, store_h, name_h) = setup_large(Representation::Hybrid);
        make_biased(&repo_h, &store_h, &name_h);
        let (repo_f, store_f, name_f) = setup_large(Representation::FullCopy);
        make_biased(&repo_f, &store_f, &name_f);
        let mem_h = store_h.memory(&repo_h);
        let mem_f = store_f.memory(&repo_f);
        assert!(
            mem_h.bias_bytes < mem_f.full_copy_bytes / 2,
            "substitution block ({}) must be far smaller than a schema copy ({})",
            mem_h.bias_bytes,
            mem_f.full_copy_bytes
        );
    }

    #[test]
    fn instance_queries() {
        let (repo, store, name) = setup(Representation::Hybrid);
        let dep = repo.deployed(&name, 1).unwrap();
        let st = dep.execution().init().unwrap();
        assert!(store.is_empty());
        let id = store.create(&name, 1, st);
        assert_eq!(store.len(), 1);
        assert_eq!(store.instances_of(&name), vec![id]);
        assert!(store.get(id).is_some());
        assert!(store.get(InstanceId(999)).is_none());
        let ex = Execution::with_blocks(&dep.schema, (*dep.blocks).clone());
        let _ = ex;
    }

    #[test]
    fn ids_and_instances_of_are_sorted_across_shards() {
        let (repo, store, name) = setup(Representation::Hybrid);
        assert_eq!(store.shard_count(), DEFAULT_SHARD_COUNT);
        let dep = repo.deployed(&name, 1).unwrap();
        let st = dep.execution().init().unwrap();
        let created: Vec<InstanceId> = (0..100)
            .map(|_| store.create(&name, 1, st.clone()))
            .collect();
        assert_eq!(store.len(), 100);
        assert_eq!(store.ids(), created, "ids() must be in id order");
        assert_eq!(store.instances_of(&name), created);
        let all = store.all();
        assert_eq!(all.len(), 100);
        assert!(all.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn per_type_index_partitions_types() {
        let repo = SchemaRepository::new();
        let mut names = Vec::new();
        for t in ["alpha", "beta"] {
            let mut b = SchemaBuilder::new(t);
            b.activity("a");
            names.push(repo.deploy(b.build().unwrap()).unwrap());
        }
        let store = InstanceStore::new(Representation::Hybrid);
        let mut per_type: BTreeMap<String, Vec<InstanceId>> = BTreeMap::new();
        for k in 0..40 {
            let name = &names[k % 2];
            let dep = repo.deployed(name, 1).unwrap();
            let id = store.create(name, 1, dep.execution().init().unwrap());
            per_type.entry(name.clone()).or_default().push(id);
        }
        for (name, expected) in per_type {
            assert_eq!(store.instances_of(&name), expected);
        }
        assert!(store.instances_of("no such type").is_empty());
    }

    #[test]
    fn remove_drops_instance_and_index_entry() {
        let (repo, store, name) = setup(Representation::Hybrid);
        let dep = repo.deployed(&name, 1).unwrap();
        let st = dep.execution().init().unwrap();
        let i1 = store.create(&name, 1, st.clone());
        let i2 = store.create(&name, 1, st);
        let removed = store.remove(i1).expect("instance existed");
        assert_eq!(removed.id, i1);
        assert!(store.get(i1).is_none());
        assert!(store.remove(i1).is_none(), "double remove is None");
        assert_eq!(store.instances_of(&name), vec![i2]);
        assert_eq!(store.ids(), vec![i2]);
        // The id is not reused.
        let dep = repo.deployed(&name, 1).unwrap();
        let i3 = store.create(&name, 1, dep.execution().init().unwrap());
        assert!(i3.raw() > i2.raw());
    }

    #[test]
    fn allocator_is_atomic_and_monotonic_across_threads() {
        let (repo, store, name) = setup(Representation::Hybrid);
        let dep = repo.deployed(&name, 1).unwrap();
        let st = dep.execution().init().unwrap();
        let ids: Vec<Vec<InstanceId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let st = st.clone();
                    let store = &store;
                    let name = &name;
                    scope.spawn(move || {
                        (0..100)
                            .map(|_| store.create(name, 1, st.clone()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut flat: Vec<u64> = ids.into_iter().flatten().map(|i| i.raw()).collect();
        flat.sort_unstable();
        flat.dedup();
        assert_eq!(flat.len(), 400, "no id handed out twice");
        assert_eq!(store.len(), 400);
        assert_eq!(store.ids().len(), 400);
    }

    #[test]
    fn restored_ids_advance_the_atomic_allocator() {
        let (repo, store, name) = setup(Representation::Hybrid);
        let dep = repo.deployed(&name, 1).unwrap();
        let st = dep.execution().init().unwrap();
        store.insert_restored(StoredInstance {
            id: InstanceId(u32::MAX as u64 + 5),
            type_name: name.clone(),
            version: 1,
            bias: Delta::new(),
            subst: SubstitutionBlock::default(),
            state: st.clone(),
            full_copy: None,
            cached_overlay: None,
        });
        let fresh = store.create(&name, 1, st);
        assert!(
            fresh.raw() > u32::MAX as u64 + 5,
            "allocator must jump past restored 64-bit ids, got {fresh}"
        );
    }

    #[test]
    fn single_shard_store_behaves_identically() {
        let mut b = SchemaBuilder::new("t");
        b.activity("a");
        b.activity("b");
        b.activity("c");
        let repo = SchemaRepository::new();
        let name = repo.deploy(b.build().unwrap()).unwrap();
        let store = InstanceStore::with_shards(Representation::Hybrid, 1);
        assert_eq!(store.shard_count(), 1);
        let (id, _) = make_biased(&repo, &store, &name);
        assert!(store.schema_of(&repo, id).is_some());
        assert_eq!(store.stats().materializations, 1);
        assert_eq!(store.ids(), vec![id]);
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        for (requested, expected) in [(0, 1), (1, 1), (3, 4), (16, 16), (17, 32)] {
            let store = InstanceStore::with_shards(Representation::Hybrid, requested);
            assert_eq!(store.shard_count(), expected, "requested {requested}");
        }
    }
}
