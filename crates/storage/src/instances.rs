//! The instance store and the three representation strategies of paper
//! Fig. 2.
//!
//! * [`Representation::RedundantFree`] — unbiased instances reference their
//!   schema; biased instances re-materialise their schema **on every
//!   access** ("another [alternative] to materialize instance-specific
//!   schemes on the fly").
//! * [`Representation::FullCopy`] — every biased instance keeps a
//!   **complete schema copy** ("one alternative would be to maintain a
//!   complete schema for each biased instance").
//! * [`Representation::Hybrid`] — ADEPT2's approach: biased instances keep
//!   a *minimal substitution block* which overlays the original schema on
//!   access, with the materialisation cached until the next change.

use crate::repo::SchemaRepository;
use crate::subst::SubstitutionBlock;
use adept_core::Delta;
use adept_model::{InstanceId, ProcessSchema};
use adept_state::InstanceState;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Storage strategy for instance-specific schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Representation {
    /// Reference + on-the-fly materialisation for biased instances.
    RedundantFree,
    /// Complete schema copy per biased instance.
    FullCopy,
    /// Reference + substitution block + cached overlay (ADEPT2).
    Hybrid,
}

/// One stored process instance.
#[derive(Debug, Clone)]
pub struct StoredInstance {
    /// Instance id.
    pub id: InstanceId,
    /// Process type name.
    pub type_name: String,
    /// Schema version the instance runs on.
    pub version: u32,
    /// The instance's ad-hoc changes (empty = unbiased).
    pub bias: Delta,
    /// Substitution block derived from the bias (Hybrid strategy).
    pub subst: SubstitutionBlock,
    /// Runtime state (marking + history + data).
    pub state: InstanceState,
    /// FullCopy strategy: the complete instance-specific schema.
    pub full_copy: Option<Arc<ProcessSchema>>,
    /// Hybrid strategy: cached overlay materialisation.
    pub cached_overlay: Option<Arc<ProcessSchema>>,
}

impl StoredInstance {
    /// Whether the instance deviates from its type schema.
    pub fn is_biased(&self) -> bool {
        !self.bias.is_empty()
    }
}

/// Access statistics of the store (cache behaviour of the Fig. 2 bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Schema accesses answered from a shared deployed schema.
    pub shared_hits: u64,
    /// Schema accesses answered from the per-instance overlay cache.
    pub cache_hits: u64,
    /// Schema accesses that had to materialise (overlay or replay).
    pub materializations: u64,
}

/// Byte-level breakdown of the store's memory usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Shared deployed schemas (stored once per version).
    pub schema_bytes: usize,
    /// Markings, histories and data contexts.
    pub state_bytes: usize,
    /// Bias deltas + substitution blocks.
    pub bias_bytes: usize,
    /// Per-instance full copies (FullCopy strategy).
    pub full_copy_bytes: usize,
    /// Cached overlays (Hybrid strategy).
    pub cache_bytes: usize,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.schema_bytes
            + self.state_bytes
            + self.bias_bytes
            + self.full_copy_bytes
            + self.cache_bytes
    }
}

/// The instance store.
#[derive(Debug)]
pub struct InstanceStore {
    strategy: Representation,
    instances: RwLock<BTreeMap<InstanceId, StoredInstance>>,
    next_id: RwLock<u32>,
    stats: RwLock<AccessStats>,
}

impl InstanceStore {
    /// Creates a store with the given representation strategy.
    pub fn new(strategy: Representation) -> Self {
        Self {
            strategy,
            instances: RwLock::new(BTreeMap::new()),
            next_id: RwLock::new(0),
            stats: RwLock::new(AccessStats::default()),
        }
    }

    /// The store's strategy.
    pub fn strategy(&self) -> Representation {
        self.strategy
    }

    /// Creates a new (unbiased) instance of a type version.
    pub fn create(&self, type_name: &str, version: u32, state: InstanceState) -> InstanceId {
        let mut ids = self.next_id.write();
        *ids += 1;
        let id = InstanceId(*ids);
        drop(ids);
        self.instances.write().insert(
            id,
            StoredInstance {
                id,
                type_name: type_name.to_string(),
                version,
                bias: Delta::new(),
                subst: SubstitutionBlock::default(),
                state,
                full_copy: None,
                cached_overlay: None,
            },
        );
        id
    }

    /// Inserts a fully-specified instance (persistence restore path). The
    /// id allocator is advanced past the restored id so future instances
    /// never collide.
    pub fn insert_restored(&self, inst: StoredInstance) {
        let mut ids = self.next_id.write();
        if inst.id.raw() > *ids {
            *ids = inst.id.raw();
        }
        drop(ids);
        self.instances.write().insert(inst.id, inst);
    }

    /// Reads an instance (cloned snapshot).
    pub fn get(&self, id: InstanceId) -> Option<StoredInstance> {
        self.instances.read().get(&id).cloned()
    }

    /// Reads an instance through a closure **without cloning it** — the
    /// hot-path accessor for worklist computation and command outcomes,
    /// where cloning the full state (marking + history + data) per access
    /// would dominate. The read lock is held only for the closure.
    pub fn with_instance<R>(
        &self,
        id: InstanceId,
        f: impl FnOnce(&StoredInstance) -> R,
    ) -> Option<R> {
        self.instances.read().get(&id).map(f)
    }

    /// All stored instance ids, in id order — including instances whose
    /// type is unknown to the repository (the worklist surfaces those as
    /// corruption instead of hiding them).
    pub fn ids(&self) -> Vec<InstanceId> {
        self.instances.read().keys().copied().collect()
    }

    /// All instance ids of a type, in id order.
    pub fn instances_of(&self, type_name: &str) -> Vec<InstanceId> {
        self.instances
            .read()
            .values()
            .filter(|i| i.type_name == type_name)
            .map(|i| i.id)
            .collect()
    }

    /// Number of stored instances.
    pub fn len(&self) -> usize {
        self.instances.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutates an instance in place via the supplied closure.
    pub fn update<R>(&self, id: InstanceId, f: impl FnOnce(&mut StoredInstance) -> R) -> Option<R> {
        self.instances.write().get_mut(&id).map(f)
    }

    /// Resolves the schema an instance currently executes on, following the
    /// store's representation strategy. `repo` provides the shared
    /// deployed versions.
    pub fn schema_of(&self, repo: &SchemaRepository, id: InstanceId) -> Option<Arc<ProcessSchema>> {
        // Fast path: unbiased or cached.
        {
            let instances = self.instances.read();
            let inst = instances.get(&id)?;
            if !inst.is_biased() {
                let dep = repo.deployed(&inst.type_name, inst.version)?;
                self.stats.write().shared_hits += 1;
                return Some(dep.schema);
            }
            match self.strategy {
                Representation::FullCopy => {
                    if let Some(fc) = &inst.full_copy {
                        self.stats.write().shared_hits += 1;
                        return Some(fc.clone());
                    }
                }
                Representation::Hybrid => {
                    if let Some(c) = &inst.cached_overlay {
                        self.stats.write().cache_hits += 1;
                        return Some(c.clone());
                    }
                }
                Representation::RedundantFree => {}
            }
        }
        // Slow path: materialise.
        let mut instances = self.instances.write();
        let inst = instances.get_mut(&id)?;
        let dep = repo.deployed(&inst.type_name, inst.version)?;
        let overlay = inst.subst.overlay(&dep.schema).ok()?;
        self.stats.write().materializations += 1;
        let arc = Arc::new(overlay);
        match self.strategy {
            Representation::Hybrid => inst.cached_overlay = Some(arc.clone()),
            Representation::FullCopy => inst.full_copy = Some(arc.clone()),
            Representation::RedundantFree => {}
        }
        Some(arc)
    }

    /// Records a new bias state for an instance after an ad-hoc change:
    /// stores the delta and substitution block, refreshes the runtime
    /// state, and updates the strategy-specific artefacts.
    pub fn set_bias(
        &self,
        id: InstanceId,
        bias: Delta,
        materialized: &ProcessSchema,
        state: InstanceState,
    ) -> bool {
        self.install_bias(id, None, bias, materialized, state)
    }

    /// Compare-and-set variant of [`InstanceStore::set_bias`]: the new
    /// bias/state is installed only if the instance's version, bias and
    /// state still match the snapshot the caller validated against —
    /// check and install happen under one write lock, so a change
    /// committed from a stale snapshot (racing commit, migration or
    /// execution step in between) is rejected instead of clobbering the
    /// concurrent update. Returns `false` on mismatch or unknown id.
    #[allow(clippy::too_many_arguments)]
    pub fn set_bias_if(
        &self,
        id: InstanceId,
        expected_version: u32,
        expected_bias: &Delta,
        expected_state: &InstanceState,
        bias: Delta,
        materialized: &ProcessSchema,
        state: InstanceState,
    ) -> bool {
        self.install_bias(
            id,
            Some((expected_version, expected_bias, expected_state)),
            bias,
            materialized,
            state,
        )
    }

    fn install_bias(
        &self,
        id: InstanceId,
        expected: Option<(u32, &Delta, &InstanceState)>,
        bias: Delta,
        materialized: &ProcessSchema,
        state: InstanceState,
    ) -> bool {
        let mut instances = self.instances.write();
        let Some(inst) = instances.get_mut(&id) else {
            return false;
        };
        if let Some((version, exp_bias, exp_state)) = expected {
            if inst.version != version || inst.bias != *exp_bias || inst.state != *exp_state {
                return false;
            }
        }
        inst.subst = SubstitutionBlock::from_delta(&bias, materialized);
        inst.bias = bias;
        inst.state = state;
        match self.strategy {
            Representation::FullCopy => {
                inst.full_copy = Some(Arc::new(materialized.clone()));
                inst.cached_overlay = None;
            }
            Representation::Hybrid => {
                // Cache is invalidated; the next access re-overlays.
                inst.cached_overlay = None;
                inst.full_copy = None;
            }
            Representation::RedundantFree => {
                inst.full_copy = None;
                inst.cached_overlay = None;
            }
        }
        true
    }

    /// Re-homes an instance after migration: new version, possibly rebased
    /// bias artefacts, adapted state.
    pub fn migrate(
        &self,
        id: InstanceId,
        new_version: u32,
        state: InstanceState,
        materialized: Option<&ProcessSchema>,
    ) -> bool {
        self.migrate_if(id, None, new_version, state, materialized)
    }

    /// Compare-and-set variant of [`InstanceStore::migrate`]: installs
    /// only if the instance's version and state still match the snapshot
    /// the migration checked compliance against — a command committing
    /// between the migration's read and its install would otherwise be
    /// silently overwritten by state adapted from the stale snapshot.
    /// Returns `false` on mismatch (callers re-read and retry).
    pub fn migrate_if(
        &self,
        id: InstanceId,
        expected: Option<(u32, &InstanceState)>,
        new_version: u32,
        state: InstanceState,
        materialized: Option<&ProcessSchema>,
    ) -> bool {
        let mut instances = self.instances.write();
        let Some(inst) = instances.get_mut(&id) else {
            return false;
        };
        if let Some((version, exp_state)) = expected {
            if inst.version != version || inst.state != *exp_state {
                return false;
            }
        }
        inst.version = new_version;
        inst.state = state;
        inst.cached_overlay = None;
        inst.full_copy = None;
        if let Some(m) = materialized {
            inst.subst = SubstitutionBlock::from_delta(&inst.bias, m);
            match self.strategy {
                Representation::FullCopy => inst.full_copy = Some(Arc::new(m.clone())),
                Representation::Hybrid => inst.cached_overlay = Some(Arc::new(m.clone())),
                Representation::RedundantFree => {}
            }
        }
        true
    }

    /// Current access statistics.
    pub fn stats(&self) -> AccessStats {
        *self.stats.read()
    }

    /// Byte-level memory accounting across all instances (Fig. 2).
    pub fn memory(&self, repo: &SchemaRepository) -> MemoryBreakdown {
        let instances = self.instances.read();
        let mut mb = MemoryBreakdown {
            schema_bytes: repo.schema_bytes(),
            ..Default::default()
        };
        for inst in instances.values() {
            mb.state_bytes += inst.state.approx_size();
            mb.bias_bytes += inst.bias.approx_size() + inst.subst.approx_size();
            if let Some(fc) = &inst.full_copy {
                mb.full_copy_bytes += fc.approx_size();
            }
            if let Some(c) = &inst.cached_overlay {
                mb.cache_bytes += c.approx_size();
            }
        }
        mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_core::{apply_op, ChangeOp, NewActivity};
    use adept_model::SchemaBuilder;
    use adept_state::Execution;

    fn setup(strategy: Representation) -> (SchemaRepository, InstanceStore, String) {
        let mut b = SchemaBuilder::new("t");
        b.activity("a");
        b.activity("b");
        b.activity("c");
        let schema = b.build().unwrap();
        let repo = SchemaRepository::new();
        let name = repo.deploy(schema).unwrap();
        let store = InstanceStore::new(strategy);
        (repo, store, name)
    }

    fn make_biased(
        repo: &SchemaRepository,
        store: &InstanceStore,
        name: &str,
    ) -> (InstanceId, ProcessSchema) {
        let dep = repo.deployed(name, 1).unwrap();
        let ex = dep.execution();
        let st = ex.init().unwrap();
        let id = store.create(name, 1, st.clone());
        let mut materialized = (*dep.schema).clone();
        materialized.reserve_private_id_space();
        let a = materialized.node_by_name("a").unwrap().id;
        let b = materialized.node_by_name("b").unwrap().id;
        let mut bias = Delta::new();
        bias.push(
            apply_op(
                &mut materialized,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("ad-hoc"),
                    pred: a,
                    succ: b,
                },
            )
            .unwrap(),
        );
        assert!(store.set_bias(id, bias, &materialized, st));
        (id, materialized)
    }

    #[test]
    fn unbiased_instances_share_schema() {
        let (repo, store, name) = setup(Representation::Hybrid);
        let dep = repo.deployed(&name, 1).unwrap();
        let st = dep.execution().init().unwrap();
        let i1 = store.create(&name, 1, st.clone());
        let i2 = store.create(&name, 1, st);
        let s1 = store.schema_of(&repo, i1).unwrap();
        let s2 = store.schema_of(&repo, i2).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2), "redundant-free: same Arc");
        assert_eq!(store.stats().shared_hits, 2);
        assert_eq!(store.stats().materializations, 0);
    }

    #[test]
    fn hybrid_caches_overlay() {
        let (repo, store, name) = setup(Representation::Hybrid);
        let (id, materialized) = make_biased(&repo, &store, &name);
        let s1 = store.schema_of(&repo, id).unwrap();
        assert_eq!(*s1, materialized);
        assert_eq!(store.stats().materializations, 1);
        let s2 = store.schema_of(&repo, id).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(store.stats().cache_hits, 1);
        assert_eq!(store.stats().materializations, 1, "no re-materialisation");
    }

    #[test]
    fn redundant_free_rematerializes_every_access() {
        let (repo, store, name) = setup(Representation::RedundantFree);
        let (id, _) = make_biased(&repo, &store, &name);
        store.schema_of(&repo, id).unwrap();
        store.schema_of(&repo, id).unwrap();
        assert_eq!(store.stats().materializations, 2);
    }

    #[test]
    fn full_copy_stores_per_instance_schema() {
        let (repo, store, name) = setup(Representation::FullCopy);
        let (id, _) = make_biased(&repo, &store, &name);
        let mem = store.memory(&repo);
        assert!(mem.full_copy_bytes > 0, "{mem:?}");
        let _ = store.schema_of(&repo, id).unwrap();
        assert_eq!(store.stats().shared_hits, 1, "full copy needs no overlay");
    }

    #[test]
    fn memory_breakdown_orders_strategies() {
        // Hybrid bias bytes should be far below a full schema copy. The
        // advantage appears for realistically sized schemas (the fixed
        // overhead of a block can exceed a 5-node toy schema), so build a
        // 40-activity process.
        fn setup_large(strategy: Representation) -> (SchemaRepository, InstanceStore, String) {
            let mut b = SchemaBuilder::new("large");
            b.activity("a");
            b.activity("b");
            for i in 0..40 {
                b.activity(&format!("step {i}"));
            }
            let schema = b.build().unwrap();
            let repo = SchemaRepository::new();
            let name = repo.deploy(schema).unwrap();
            (repo, InstanceStore::new(strategy), name)
        }
        let (repo_h, store_h, name_h) = setup_large(Representation::Hybrid);
        make_biased(&repo_h, &store_h, &name_h);
        let (repo_f, store_f, name_f) = setup_large(Representation::FullCopy);
        make_biased(&repo_f, &store_f, &name_f);
        let mem_h = store_h.memory(&repo_h);
        let mem_f = store_f.memory(&repo_f);
        assert!(
            mem_h.bias_bytes < mem_f.full_copy_bytes / 2,
            "substitution block ({}) must be far smaller than a schema copy ({})",
            mem_h.bias_bytes,
            mem_f.full_copy_bytes
        );
    }

    #[test]
    fn instance_queries() {
        let (repo, store, name) = setup(Representation::Hybrid);
        let dep = repo.deployed(&name, 1).unwrap();
        let st = dep.execution().init().unwrap();
        assert!(store.is_empty());
        let id = store.create(&name, 1, st);
        assert_eq!(store.len(), 1);
        assert_eq!(store.instances_of(&name), vec![id]);
        assert!(store.get(id).is_some());
        assert!(store.get(InstanceId(999)).is_none());
        let ex = Execution::with_blocks(&dep.schema, (*dep.blocks).clone());
        let _ = ex;
    }
}
