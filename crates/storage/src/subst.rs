//! Substitution blocks: the minimal overlay a biased instance keeps
//! (paper Fig. 2).
//!
//! *"For each biased instance we maintain a minimal substitution block that
//! captures all changes applied to it so far. This block is then used to
//! overlay parts of the original schema when accessing the instance."*
//!
//! A [`SubstitutionBlock`] is the *materialised graph payload* of a bias
//! delta: the concrete nodes, edges and data elements the delta added, the
//! nodes it nullified, and the edges/nodes it removed. Overlaying the block
//! onto the original schema ([`SubstitutionBlock::overlay`]) reconstructs
//! the instance-specific schema without replaying change operations — a
//! pure graph patch, which is what makes instance access cheap.

use adept_core::{ChangeOp, Delta};
use adept_model::{
    ActivityAttributes, DataEdge, DataElement, Edge, EdgeId, ModelError, Node, NodeId, NodeKind,
    ProcessSchema,
};
use serde::{Deserialize, Serialize};

/// The materialised overlay of one biased instance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SubstitutionBlock {
    /// Nodes the bias added (full payload, including attributes).
    pub added_nodes: Vec<Node>,
    /// Edges the bias added.
    pub added_edges: Vec<Edge>,
    /// Data elements the bias added.
    pub added_data: Vec<DataElement>,
    /// Data edges of added nodes (and any data edges the bias attached).
    pub added_data_edges: Vec<DataEdge>,
    /// Edges the bias removed from the original schema.
    pub removed_edges: Vec<EdgeId>,
    /// Nodes the bias removed.
    pub removed_nodes: Vec<NodeId>,
    /// Nodes the bias replaced by silent null tasks.
    pub nullified_nodes: Vec<NodeId>,
    /// Attribute rewrites of *original-schema* nodes (added nodes carry
    /// their attributes in `added_nodes` already). Without this, an
    /// attribute-only bias — a retry note, a worklist escalation — would
    /// leave no trace in the block and silently vanish from the
    /// materialised schema.
    pub patched_attrs: Vec<(NodeId, ActivityAttributes)>,
}

impl SubstitutionBlock {
    /// Whether the block is empty (unbiased instance).
    pub fn is_empty(&self) -> bool {
        self.added_nodes.is_empty()
            && self.added_edges.is_empty()
            && self.added_data.is_empty()
            && self.added_data_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.removed_nodes.is_empty()
            && self.nullified_nodes.is_empty()
            && self.patched_attrs.is_empty()
    }

    /// Derives the substitution block of a bias: `materialized` must be the
    /// instance-specific schema (base + bias applied), from which the block
    /// copies the payload of everything the delta created.
    pub fn from_delta(delta: &Delta, materialized: &ProcessSchema) -> SubstitutionBlock {
        let mut block = SubstitutionBlock::default();
        for rec in &delta.ops {
            for n in &rec.added_nodes {
                if let Ok(node) = materialized.node(*n) {
                    block.added_nodes.push(node.clone());
                    block
                        .added_data_edges
                        .extend(materialized.data_edges_of(*n).cloned());
                }
            }
            for e in &rec.added_edges {
                if let Ok(edge) = materialized.edge(*e) {
                    block.added_edges.push(edge.clone());
                }
            }
            for d in &rec.added_data {
                if let Ok(de) = materialized.data_element(*d) {
                    block.added_data.push(de.clone());
                }
            }
            block
                .removed_edges
                .extend(rec.removed_edges.iter().copied());
            block
                .removed_nodes
                .extend(rec.removed_nodes.iter().copied());
            block
                .nullified_nodes
                .extend(rec.nullified_nodes.iter().copied());
        }
        // Edges added by one op and removed by a later op of the same bias
        // (e.g. insert then move) must not survive in the block.
        let removed = block.removed_edges.clone();
        block.added_edges.retain(|e| !removed.contains(&e.id));
        block.removed_edges.retain(|id| {
            // Only original-schema edges need explicit removal markers.
            !delta.ops.iter().any(|r| r.added_edges.contains(id))
        });
        let removed_nodes = block.removed_nodes.clone();
        block.added_nodes.retain(|n| !removed_nodes.contains(&n.id));
        // Attribute rewrites: record the *final* attributes from the
        // materialised schema (last write wins; nodes the bias itself
        // added or later removed need no patch entry).
        let added: Vec<NodeId> = block.added_nodes.iter().map(|n| n.id).collect();
        for rec in &delta.ops {
            if let ChangeOp::SetActivityAttributes { node, .. } = &rec.op {
                if added.contains(node)
                    || removed_nodes.contains(node)
                    || block.patched_attrs.iter().any(|(n, _)| n == node)
                {
                    continue;
                }
                if let Ok(n) = materialized.node(*node) {
                    block.patched_attrs.push((*node, n.attrs.clone()));
                }
            }
        }
        block
    }

    /// Overlays the block onto the original schema, producing the
    /// instance-specific schema as a pure graph patch.
    pub fn overlay(&self, base: &ProcessSchema) -> Result<ProcessSchema, ModelError> {
        let mut s = base.clone();
        s.reserve_private_id_space();
        for id in &self.removed_edges {
            s.remove_edge(*id)?;
        }
        for n in &self.added_nodes {
            s.add_node_at(n.id, n.name.clone(), n.kind)?;
            s.node_mut(n.id)?.attrs = n.attrs.clone();
        }
        for d in &self.added_data {
            s.add_data_at(d.id, d.name.clone(), d.ty)?;
        }
        // Removing nodes requires their incident edges gone first; in a
        // well-formed block the removed_edges above already detached them.
        for id in &self.removed_nodes {
            s.remove_node(*id)?;
        }
        for n in &self.nullified_nodes {
            s.node_mut(*n)?.kind = NodeKind::Null;
        }
        // Nullified nodes lose their data edges.
        for n in &self.nullified_nodes {
            let edges: Vec<DataEdge> = s.data_edges_of(*n).cloned().collect();
            for de in edges {
                s.remove_data_edge(de.node, de.data, de.mode)?;
            }
        }
        for e in &self.added_edges {
            s.add_edge_at(e.id, e.clone())?;
        }
        for de in &self.added_data_edges {
            s.add_data_edge(de.clone())?;
        }
        for (n, attrs) in &self.patched_attrs {
            s.node_mut(*n)?.attrs = attrs.clone();
        }
        Ok(s)
    }

    /// Approximate deep size in bytes (for the Fig. 2 experiments).
    pub fn approx_size(&self) -> usize {
        use std::mem::size_of;
        let mut s = size_of::<Self>();
        for n in &self.added_nodes {
            s += size_of::<Node>() + n.name.capacity();
        }
        s += self.added_edges.capacity() * size_of::<Edge>();
        for d in &self.added_data {
            s += size_of::<DataElement>() + d.name.capacity();
        }
        s += self.added_data_edges.capacity() * size_of::<DataEdge>();
        s += self.removed_edges.capacity() * size_of::<EdgeId>();
        s += self.removed_nodes.capacity() * size_of::<NodeId>();
        s += self.nullified_nodes.capacity() * size_of::<NodeId>();
        s +=
            self.patched_attrs.capacity() * (size_of::<NodeId>() + size_of::<ActivityAttributes>());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_core::{apply_op, ChangeOp, NewActivity};
    use adept_model::SchemaBuilder;

    fn base() -> ProcessSchema {
        let mut b = SchemaBuilder::new("order");
        b.activity("get order");
        b.activity("collect data");
        b.and_split();
        b.branch();
        b.activity("confirm order");
        b.branch();
        b.activity("compose order");
        b.activity("pack goods");
        b.and_join();
        b.activity("deliver goods");
        b.build().unwrap()
    }

    #[test]
    fn overlay_equals_direct_application_for_insert() {
        let base = base();
        let mut materialized = base.clone();
        materialized.reserve_private_id_space();
        let compose = materialized.node_by_name("compose order").unwrap().id;
        let pack = materialized.node_by_name("pack goods").unwrap().id;
        let mut delta = Delta::new();
        delta.push(
            apply_op(
                &mut materialized,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("extra"),
                    pred: compose,
                    succ: pack,
                },
            )
            .unwrap(),
        );

        let block = SubstitutionBlock::from_delta(&delta, &materialized);
        assert!(!block.is_empty());
        assert_eq!(block.added_nodes.len(), 1);
        let rebuilt = block.overlay(&base).unwrap();
        assert_eq!(rebuilt, materialized);
    }

    #[test]
    fn overlay_equals_direct_application_for_delete() {
        let base = base();
        let mut materialized = base.clone();
        materialized.reserve_private_id_space();
        let confirm = materialized.node_by_name("confirm order").unwrap().id;
        let mut delta = Delta::new();
        delta.push(
            apply_op(
                &mut materialized,
                &ChangeOp::DeleteActivity { node: confirm },
            )
            .unwrap(),
        );
        let block = SubstitutionBlock::from_delta(&delta, &materialized);
        let rebuilt = block.overlay(&base).unwrap();
        assert_eq!(rebuilt, materialized);
    }

    #[test]
    fn overlay_equals_direct_application_for_sync_and_move() {
        let base = base();
        let mut materialized = base.clone();
        materialized.reserve_private_id_space();
        let confirm = materialized.node_by_name("confirm order").unwrap().id;
        let compose = materialized.node_by_name("compose order").unwrap().id;
        let pack = materialized.node_by_name("pack goods").unwrap().id;
        let mut delta = Delta::new();
        delta.push(
            apply_op(
                &mut materialized,
                &ChangeOp::InsertSyncEdge {
                    from: confirm,
                    to: pack,
                },
            )
            .unwrap(),
        );
        delta.push(
            apply_op(
                &mut materialized,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("label"),
                    pred: compose,
                    succ: pack,
                },
            )
            .unwrap(),
        );
        let block = SubstitutionBlock::from_delta(&delta, &materialized);
        let rebuilt = block.overlay(&base).unwrap();
        // Edge insertion order may differ between overlay and direct
        // application, so compare structure via counts.
        assert_eq!(rebuilt.edge_count(), materialized.edge_count());
        assert_eq!(rebuilt.node_count(), materialized.node_count());
        assert_eq!(
            rebuilt.sync_edges().count(),
            materialized.sync_edges().count()
        );
    }

    #[test]
    fn overlay_preserves_attribute_only_changes() {
        let base = base();
        let mut materialized = base.clone();
        materialized.reserve_private_id_space();
        let confirm = materialized.node_by_name("confirm order").unwrap().id;
        let mut attrs = materialized.node(confirm).unwrap().attrs.clone();
        attrs.role = Some("supervisor".into());
        attrs.skippable = true;
        let mut delta = Delta::new();
        delta.push(
            apply_op(
                &mut materialized,
                &ChangeOp::SetActivityAttributes {
                    node: confirm,
                    attrs,
                },
            )
            .unwrap(),
        );
        let block = SubstitutionBlock::from_delta(&delta, &materialized);
        assert!(!block.is_empty(), "attr patches must leave a trace");
        let rebuilt = block.overlay(&base).unwrap();
        let n = rebuilt.node(confirm).unwrap();
        assert_eq!(n.attrs.role.as_deref(), Some("supervisor"));
        assert!(n.attrs.skippable);
        assert_eq!(rebuilt, materialized);
    }

    #[test]
    fn empty_block_for_empty_delta() {
        let base = base();
        let block = SubstitutionBlock::from_delta(&Delta::new(), &base);
        assert!(block.is_empty());
        let rebuilt = block.overlay(&base).unwrap();
        assert_eq!(rebuilt.node_count(), base.node_count());
    }
}
