//! The shared sharding primitive: a power-of-two array of `RwLock`-wrapped
//! states indexed by [`InstanceId::hash64`].
//!
//! Every per-instance table in the system — the instance store's shard
//! maps, the engine's context cache and the worklist index — selects its
//! shard through this one type, so the shard-selection invariant (power-
//! of-two count, `hash64 & mask` indexing) lives in exactly one place and
//! an instance maps to the same shard *index* in every table of equal
//! shard count.

use adept_model::InstanceId;
use parking_lot::RwLock;

/// A fixed, power-of-two array of independently locked shard states.
#[derive(Debug)]
pub struct Shards<T> {
    inner: Box<[RwLock<T>]>,
    mask: u64,
}

impl<T: Default> Shards<T> {
    /// `n` shards (rounded up to the next power of two, minimum 1), each
    /// initialised with `T::default()`.
    pub fn new(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        Self {
            inner: (0..n).map(|_| RwLock::new(T::default())).collect(),
            mask: (n - 1) as u64,
        }
    }
}

impl<T> Shards<T> {
    /// Number of shards (a power of two).
    pub fn count(&self) -> usize {
        self.inner.len()
    }

    /// The shard index an instance maps to.
    #[inline]
    pub fn index_of(&self, id: InstanceId) -> usize {
        (id.hash64() & self.mask) as usize
    }

    /// The shard an instance maps to.
    #[inline]
    pub fn for_id(&self, id: InstanceId) -> &RwLock<T> {
        &self.inner[self.index_of(id)]
    }

    /// The shard index a raw 64-bit key maps to — no hashing, plain
    /// `key & mask`. Segmented logs use this with *sequence numbers* as
    /// keys: consecutive sequences round-robin across shards, so
    /// concurrent appends land on different shard locks.
    #[inline]
    pub fn index_of_raw(&self, key: u64) -> usize {
        (key & self.mask) as usize
    }

    /// The shard a raw 64-bit key maps to (see
    /// [`Shards::index_of_raw`]).
    #[inline]
    pub fn for_raw(&self, key: u64) -> &RwLock<T> {
        &self.inner[self.index_of_raw(key)]
    }

    /// All shards, in index order (cross-shard sweeps and coherent
    /// all-guards passes).
    pub fn iter(&self) -> std::slice::Iter<'_, RwLock<T>> {
        self.inner.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_power_of_two() {
        for (requested, expected) in [(0usize, 1usize), (1, 1), (3, 4), (16, 16), (17, 32)] {
            assert_eq!(Shards::<u32>::new(requested).count(), expected);
        }
    }

    #[test]
    fn raw_keys_round_robin() {
        let s = Shards::<u32>::new(16);
        for seq in 0..64u64 {
            assert_eq!(s.index_of_raw(seq), (seq % 16) as usize);
        }
    }

    #[test]
    fn same_id_same_shard() {
        let a = Shards::<u32>::new(16);
        let b = Shards::<Vec<u8>>::new(16);
        for i in 1..=100u64 {
            let id = InstanceId(i);
            assert_eq!(
                a.index_of(id),
                b.index_of(id),
                "tables of equal count agree"
            );
            assert!(a.index_of(id) < 16);
        }
    }
}
