//! The shared sharding primitive: a power-of-two array of
//! [`OrderedRwLock`]-wrapped states indexed by [`InstanceId::hash64`].
//!
//! Every per-instance table in the system — the instance store's shard
//! maps, the engine's context cache and the worklist index — selects its
//! shard through this one type, so the shard-selection invariant (power-
//! of-two count, `hash64 & mask` indexing) lives in exactly one place and
//! an instance maps to the same shard *index* in every table of equal
//! shard count.
//!
//! Every table declares a [`LockClass`] at construction; the class ranks
//! (and the one-shard-per-table rule the locks enforce) are documented in
//! `docs/LOCK_ORDER.md`. Coherent all-shards passes go through
//! [`Shards::read_all`], the ascending sweep the checker sanctions.

use crate::ordered::{LockClass, OrderedRwLock, OrderedRwLockReadGuard};
use adept_model::InstanceId;

/// A fixed, power-of-two array of independently locked shard states.
#[derive(Debug)]
pub struct Shards<T> {
    inner: Box<[OrderedRwLock<T>]>,
    mask: u64,
}

impl<T: Default> Shards<T> {
    /// `n` shards (rounded up to the next power of two, minimum 1) of the
    /// given lock class, each initialised with `T::default()`.
    pub fn new(class: &'static LockClass, n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        Self {
            inner: (0..n)
                .map(|i| OrderedRwLock::with_index(class, i as u32, T::default()))
                .collect(),
            mask: (n - 1) as u64,
        }
    }
}

impl<T> Shards<T> {
    /// Number of shards (a power of two).
    pub fn count(&self) -> usize {
        self.inner.len()
    }

    /// The shard index an instance maps to.
    #[inline]
    pub fn index_of(&self, id: InstanceId) -> usize {
        (id.hash64() & self.mask) as usize
    }

    /// The shard an instance maps to.
    #[inline]
    pub fn for_id(&self, id: InstanceId) -> &OrderedRwLock<T> {
        &self.inner[self.index_of(id)]
    }

    /// The shard index a raw 64-bit key maps to — no hashing, plain
    /// `key & mask`. Segmented logs use this with *sequence numbers* as
    /// keys: consecutive sequences round-robin across shards, so
    /// concurrent appends land on different shard locks.
    #[inline]
    pub fn index_of_raw(&self, key: u64) -> usize {
        (key & self.mask) as usize
    }

    /// The shard a raw 64-bit key maps to (see
    /// [`Shards::index_of_raw`]).
    #[inline]
    pub fn for_raw(&self, key: u64) -> &OrderedRwLock<T> {
        &self.inner[self.index_of_raw(key)]
    }

    /// All shards, in index order. Callers locking inside the iteration
    /// must release each guard before acquiring the next (one shard per
    /// table); use [`Shards::read_all`] to hold every shard at once.
    pub fn iter(&self) -> std::slice::Iter<'_, OrderedRwLock<T>> {
        self.inner.iter()
    }

    /// Read guards over **all** shards at once, acquired in ascending
    /// index order — the coherent cross-shard pass (worklist delta
    /// scan) the lock checker sanctions as a sweep. Prefer a
    /// one-guard-at-a-time [`Shards::iter`] walk when the read can
    /// tolerate per-shard snapshots (as the monitor's sequence-bounded
    /// merge does) so a slow reader never blocks every writer at once.
    #[track_caller]
    pub fn read_all(&self) -> Vec<OrderedRwLockReadGuard<'_, T>> {
        self.inner.iter().map(|shard| shard.read_sweep()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordered::classes;

    #[test]
    fn rounds_to_power_of_two() {
        for (requested, expected) in [(0usize, 1usize), (1, 1), (3, 4), (16, 16), (17, 32)] {
            assert_eq!(
                Shards::<u32>::new(&classes::TEST_SUPPORT, requested).count(),
                expected
            );
        }
    }

    #[test]
    fn raw_keys_round_robin() {
        let s = Shards::<u32>::new(&classes::TEST_SUPPORT, 16);
        for seq in 0..64u64 {
            assert_eq!(s.index_of_raw(seq), (seq % 16) as usize);
        }
    }

    #[test]
    fn same_id_same_shard() {
        let a = Shards::<u32>::new(&classes::TEST_SUPPORT, 16);
        let b = Shards::<Vec<u8>>::new(&classes::TEST_SUPPORT, 16);
        for i in 1..=100u64 {
            let id = InstanceId(i);
            assert_eq!(
                a.index_of(id),
                b.index_of(id),
                "tables of equal count agree"
            );
            assert!(a.index_of(id) < 16);
        }
    }

    #[test]
    fn read_all_holds_every_shard_coherently() {
        let s = Shards::<u32>::new(&classes::TEST_SUPPORT, 8);
        let guards = s.read_all();
        assert_eq!(guards.len(), 8);
        assert!(guards.iter().all(|g| **g == 0));
    }
}
