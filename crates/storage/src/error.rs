//! Typed errors of the durability subsystem.
//!
//! Everything on the persistence path — snapshot encode/decode, backend
//! I/O, write-ahead-log corruption — surfaces as a [`StorageError`]
//! instead of a stringly `ChangeError` or a swallowed `unwrap()`:
//! callers can distinguish an unreadable disk from a corrupt record
//! stream and react accordingly (retry vs. refuse to start).

use adept_core::ChangeError;
use std::fmt;

/// A failure of the storage/durability subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// An I/O operation against a backend failed (disk full, permission,
    /// unreadable file). Retryable in principle.
    Io {
        /// The backend operation that failed (`"append"`, `"sync"`, ...).
        op: &'static str,
        /// The rendered OS error.
        detail: String,
    },
    /// A persisted document or log is structurally damaged — an
    /// undecodable interior record, a sequence gap, an unsupported
    /// format. Never retryable; refusing to start is the only safe
    /// reaction.
    Corrupt {
        /// What is damaged and how.
        detail: String,
    },
    /// Serialisation of an in-memory value failed (an engine bug, not a
    /// medium fault).
    Encode {
        /// What failed to encode.
        detail: String,
    },
}

impl StorageError {
    /// Shorthand for a [`StorageError::Corrupt`].
    pub fn corrupt(detail: impl Into<String>) -> Self {
        StorageError::Corrupt {
            detail: detail.into(),
        }
    }

    /// Shorthand for a [`StorageError::Io`].
    pub fn io(op: &'static str, e: &std::io::Error) -> Self {
        StorageError::Io {
            op,
            detail: e.to_string(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, detail } => write!(f, "storage i/o failed ({op}): {detail}"),
            StorageError::Corrupt { detail } => write!(f, "corrupt storage: {detail}"),
            StorageError::Encode { detail } => write!(f, "serialisation failed: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {}

// Restore re-deploys schemas through the change machinery; a change-level
// failure while rebuilding from a snapshot means the snapshot does not
// describe a constructible world — i.e. it is corrupt.
impl From<ChangeError> for StorageError {
    fn from(e: ChangeError) -> Self {
        StorageError::Corrupt {
            detail: e.to_string(),
        }
    }
}

/// The outcome of a *journaled* installation (deploy, evolution commit):
/// either the change itself was rejected, or the change was fine but its
/// write-ahead journaling failed — two different failure domains that
/// callers must not conflate (a rejected change is the user's problem, a
/// journaling failure is an operational one).
#[derive(Debug, Clone, PartialEq)]
pub enum JournaledError {
    /// The change was rejected (verification, lost version race, ...).
    Change(ChangeError),
    /// The change was valid but could not be made durable; nothing was
    /// installed.
    Storage(StorageError),
}

impl fmt::Display for JournaledError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournaledError::Change(e) => write!(f, "{e}"),
            JournaledError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JournaledError {}

impl From<ChangeError> for JournaledError {
    fn from(e: ChangeError) -> Self {
        JournaledError::Change(e)
    }
}

impl From<StorageError> for JournaledError {
    fn from(e: StorageError) -> Self {
        JournaledError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let io = StorageError::Io {
            op: "append",
            detail: "disk full".into(),
        };
        assert!(io.to_string().contains("append"));
        assert!(StorageError::corrupt("bad record")
            .to_string()
            .contains("bad record"));
        let j: JournaledError = StorageError::corrupt("x").into();
        assert!(matches!(j, JournaledError::Storage(_)));
        let j: JournaledError = ChangeError::Precondition("y".into()).into();
        assert!(j.to_string().contains('y'));
    }

    #[test]
    fn change_error_maps_to_corrupt() {
        let e: StorageError = ChangeError::Precondition("broken".into()).into();
        assert!(matches!(e, StorageError::Corrupt { .. }));
    }
}
