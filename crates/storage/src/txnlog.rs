//! The change-transaction log — an audit *view* over the write-ahead log.
//!
//! Every committed change transaction — ad-hoc instance deviation or type
//! evolution — leaves one [`TxnRecord`]: what was changed, in which
//! order, and the recorded inverse of each operation (the rollback
//! material). The log is the durable audit trail the engine's monitoring
//! component summarises, and it rides along in persistence snapshots so a
//! restored system keeps its change history.
//!
//! Since the durability subsystem landed, the records themselves live in
//! the [`WriteAheadLog`]: commit paths append one WAL record that carries
//! both the state post-image and the embedded `TxnRecord`, and `TxnLog`
//! is a cheap handle exposing the transaction projection of that log.
//! The old standalone locked `Vec` with its own global sequence is gone —
//! there is one log, and this is a view of it.

use crate::error::StorageError;
use crate::wal::{WalRecord, WriteAheadLog};
use adept_core::{ChangeError, ChangeOp};
use adept_model::InstanceId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// What a transaction changed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TxnTarget {
    /// An ad-hoc change of one instance.
    Instance(InstanceId),
    /// A type evolution producing a new schema version.
    Type {
        /// Process type name.
        name: String,
        /// The version the evolution produced.
        new_version: u32,
    },
}

impl fmt::Display for TxnTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnTarget::Instance(id) => write!(f, "{id}"),
            TxnTarget::Type { name, new_version } => write!(f, "\"{name}\" -> V{new_version}"),
        }
    }
}

/// One committed change transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnRecord {
    /// Monotonic commit sequence number (1-based).
    pub seq: u64,
    /// What was changed.
    pub target: TxnTarget,
    /// The requested operations, in staging order.
    pub ops: Vec<ChangeOp>,
    /// Per operation: the inverse that would undo it, when invertible.
    pub inverses: Vec<Option<ChangeOp>>,
}

impl fmt::Display for TxnRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn #{} {}: ", self.seq, self.target)?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

/// The transaction-log view. Clone-cheap (an `Arc` over the WAL); commit
/// order is the sequence order.
#[derive(Debug, Clone)]
pub struct TxnLog {
    wal: Arc<WriteAheadLog>,
}

impl Default for TxnLog {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnLog {
    /// An empty log over a disabled (in-memory view only) WAL.
    pub fn new() -> Self {
        Self {
            wal: Arc::new(WriteAheadLog::disabled()),
        }
    }

    /// The transaction view of an existing write-ahead log.
    pub fn over(wal: Arc<WriteAheadLog>) -> Self {
        Self { wal }
    }

    /// The underlying write-ahead log.
    pub fn wal(&self) -> &Arc<WriteAheadLog> {
        &self.wal
    }

    /// Rebuilds a log from persisted records (ordered by `seq`) over a
    /// disabled WAL.
    pub fn from_records(records: Vec<TxnRecord>) -> Self {
        let log = Self::new();
        log.wal.seed_txns(records);
        log
    }

    /// Appends a committed transaction, assigning the next sequence
    /// number. Returns the assigned number.
    ///
    /// This is the audit-only compatibility path: the record is journaled
    /// as a [`WalRecord::Txn`] with no state side effect. Commit paths
    /// that also produce a post-image append through
    /// [`WriteAheadLog::append_txn`] directly, atomically pairing image
    /// and audit record in one line.
    ///
    /// # Panics
    ///
    /// Panics if a fallible durable backend rejects the append — callers
    /// of this legacy signature have no error channel. Engine commit
    /// paths use the fallible WAL API instead.
    pub fn append(
        &self,
        target: TxnTarget,
        ops: Vec<ChangeOp>,
        inverses: Vec<Option<ChangeOp>>,
    ) -> u64 {
        self.wal
            .append_txn(|seq| {
                let record = TxnRecord {
                    seq,
                    target,
                    ops,
                    inverses,
                };
                (
                    WalRecord::Txn {
                        record: record.clone(),
                    },
                    record,
                )
            })
            .expect("invariant: the non-journaling append closure is infallible")
    }

    /// A snapshot of all records in commit order.
    pub fn records(&self) -> Vec<TxnRecord> {
        self.wal.txn_records()
    }

    /// Number of committed transactions.
    pub fn len(&self) -> usize {
        self.wal.txn_len()
    }

    /// Whether nothing has been committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialises the log as compact JSONL — one record per line, the
    /// same codec the WAL uses on its medium, so standalone logs, WAL
    /// streams and snapshot-embedded records all read identically.
    pub fn to_json(&self) -> Result<String, StorageError> {
        let mut out = String::new();
        for record in self.records() {
            let line = serde_json::to_string(&record).map_err(|e| StorageError::Encode {
                detail: format!("txn record #{}: {e}", record.seq),
            })?;
            out.push_str(&line);
            out.push('\n');
        }
        Ok(out)
    }

    /// Restores a log from its serialised form: JSONL (current) or the
    /// legacy pretty-printed JSON array (pre-durability snapshots).
    pub fn from_json(json: &str) -> Result<Self, StorageError> {
        let trimmed = json.trim_start();
        let records: Vec<TxnRecord> = if trimmed.starts_with('[') {
            serde_json::from_str(json)
                .map_err(|e| StorageError::corrupt(format!("txn log parse failed: {e}")))?
        } else {
            let mut records = Vec::new();
            for line in json.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                records.push(serde_json::from_str(line).map_err(|e| {
                    StorageError::corrupt(format!("txn log line parse failed: {e}"))
                })?);
            }
            records
        };
        Ok(Self::from_records(records))
    }
}

// `ChangeError` is what pre-durability callers matched on; keep the
// conversion available for them.
impl From<StorageError> for ChangeError {
    fn from(e: StorageError) -> Self {
        ChangeError::Precondition(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_core::NewActivity;
    use adept_model::NodeId;

    fn sample_ops() -> (Vec<ChangeOp>, Vec<Option<ChangeOp>>) {
        let op = ChangeOp::SerialInsert {
            activity: NewActivity::named("x"),
            pred: NodeId(1),
            succ: NodeId(2),
        };
        let inv = ChangeOp::DeleteActivity { node: NodeId(90) };
        (vec![op], vec![Some(inv)])
    }

    #[test]
    fn append_assigns_monotonic_sequence() {
        let log = TxnLog::new();
        assert!(log.is_empty());
        let (ops, invs) = sample_ops();
        let s1 = log.append(
            TxnTarget::Instance(InstanceId(1)),
            ops.clone(),
            invs.clone(),
        );
        let s2 = log.append(
            TxnTarget::Type {
                name: "order".into(),
                new_version: 2,
            },
            ops,
            invs,
        );
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(log.len(), 2);
        let recs = log.records();
        assert!(recs[0].to_string().contains("txn #1 I1"));
        assert!(recs[1].to_string().contains("\"order\" -> V2"));
    }

    #[test]
    fn json_roundtrip_preserves_records() {
        let log = TxnLog::new();
        let (ops, invs) = sample_ops();
        log.append(TxnTarget::Instance(InstanceId(7)), ops, invs);
        let json = log.to_json().unwrap();
        assert_eq!(json.lines().count(), 1, "compact: one record per line");
        assert!(!json.contains("\n  "), "no pretty indentation");
        let restored = TxnLog::from_json(&json).unwrap();
        assert_eq!(restored.records(), log.records());
        // Appending to the restored log continues the sequence.
        let (ops, invs) = sample_ops();
        assert_eq!(
            restored.append(TxnTarget::Instance(InstanceId(8)), ops, invs),
            2
        );
    }

    #[test]
    fn from_json_accepts_legacy_array_form() {
        let log = TxnLog::new();
        let (ops, invs) = sample_ops();
        log.append(TxnTarget::Instance(InstanceId(3)), ops, invs);
        let legacy = serde_json::to_string_pretty(&log.records()).unwrap();
        let restored = TxnLog::from_json(&legacy).unwrap();
        assert_eq!(restored.records(), log.records());
    }

    #[test]
    fn view_over_shared_wal_sees_commits() {
        let wal = Arc::new(WriteAheadLog::disabled());
        let log = TxnLog::over(Arc::clone(&wal));
        let (ops, invs) = sample_ops();
        log.append(TxnTarget::Instance(InstanceId(1)), ops, invs);
        assert_eq!(wal.txn_len(), 1, "the view writes through to the WAL");
        assert_eq!(TxnLog::over(wal).len(), 1);
    }
}
