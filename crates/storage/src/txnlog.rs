//! The persisted change-transaction log.
//!
//! Every committed change transaction — ad-hoc instance deviation or type
//! evolution — leaves one [`TxnRecord`] here: what was changed, in which
//! order, and the recorded inverse of each operation (the rollback
//! material). The log is the durable audit trail the engine's monitoring
//! component summarises, and it rides along in persistence snapshots so a
//! restored system keeps its change history.

use adept_core::{ChangeError, ChangeOp};
use adept_model::InstanceId;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a transaction changed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TxnTarget {
    /// An ad-hoc change of one instance.
    Instance(InstanceId),
    /// A type evolution producing a new schema version.
    Type {
        /// Process type name.
        name: String,
        /// The version the evolution produced.
        new_version: u32,
    },
}

impl fmt::Display for TxnTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnTarget::Instance(id) => write!(f, "{id}"),
            TxnTarget::Type { name, new_version } => write!(f, "\"{name}\" -> V{new_version}"),
        }
    }
}

/// One committed change transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnRecord {
    /// Monotonic commit sequence number (1-based).
    pub seq: u64,
    /// What was changed.
    pub target: TxnTarget,
    /// The requested operations, in staging order.
    pub ops: Vec<ChangeOp>,
    /// Per operation: the inverse that would undo it, when invertible.
    pub inverses: Vec<Option<ChangeOp>>,
}

impl fmt::Display for TxnRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn #{} {}: ", self.seq, self.target)?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

/// The append-only transaction log. Thread-safe; commit order is the
/// sequence order.
#[derive(Debug, Default)]
pub struct TxnLog {
    entries: RwLock<Vec<TxnRecord>>,
}

impl TxnLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a log from persisted records (ordered by `seq`).
    pub fn from_records(mut records: Vec<TxnRecord>) -> Self {
        records.sort_by_key(|r| r.seq);
        Self {
            entries: RwLock::new(records),
        }
    }

    /// Appends a committed transaction, assigning the next sequence
    /// number. Returns the assigned number.
    pub fn append(
        &self,
        target: TxnTarget,
        ops: Vec<ChangeOp>,
        inverses: Vec<Option<ChangeOp>>,
    ) -> u64 {
        let mut entries = self.entries.write();
        let seq = entries.last().map(|r| r.seq).unwrap_or(0) + 1;
        entries.push(TxnRecord {
            seq,
            target,
            ops,
            inverses,
        });
        seq
    }

    /// A snapshot of all records in commit order.
    pub fn records(&self) -> Vec<TxnRecord> {
        self.entries.read().clone()
    }

    /// Number of committed transactions.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether nothing has been committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialises the log to pretty JSON (standalone persistence; the log
    /// is also embedded in full snapshots).
    pub fn to_json(&self) -> Result<String, ChangeError> {
        serde_json::to_string_pretty(&self.records())
            .map_err(|e| ChangeError::Precondition(format!("txn log serialisation failed: {e}")))
    }

    /// Restores a log from its JSON form.
    pub fn from_json(json: &str) -> Result<Self, ChangeError> {
        let records: Vec<TxnRecord> = serde_json::from_str(json)
            .map_err(|e| ChangeError::Precondition(format!("txn log parse failed: {e}")))?;
        Ok(Self::from_records(records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_core::NewActivity;
    use adept_model::NodeId;

    fn sample_ops() -> (Vec<ChangeOp>, Vec<Option<ChangeOp>>) {
        let op = ChangeOp::SerialInsert {
            activity: NewActivity::named("x"),
            pred: NodeId(1),
            succ: NodeId(2),
        };
        let inv = ChangeOp::DeleteActivity { node: NodeId(90) };
        (vec![op], vec![Some(inv)])
    }

    #[test]
    fn append_assigns_monotonic_sequence() {
        let log = TxnLog::new();
        assert!(log.is_empty());
        let (ops, invs) = sample_ops();
        let s1 = log.append(
            TxnTarget::Instance(InstanceId(1)),
            ops.clone(),
            invs.clone(),
        );
        let s2 = log.append(
            TxnTarget::Type {
                name: "order".into(),
                new_version: 2,
            },
            ops,
            invs,
        );
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(log.len(), 2);
        let recs = log.records();
        assert!(recs[0].to_string().contains("txn #1 I1"));
        assert!(recs[1].to_string().contains("\"order\" -> V2"));
    }

    #[test]
    fn json_roundtrip_preserves_records() {
        let log = TxnLog::new();
        let (ops, invs) = sample_ops();
        log.append(TxnTarget::Instance(InstanceId(7)), ops, invs);
        let json = log.to_json().unwrap();
        let restored = TxnLog::from_json(&json).unwrap();
        assert_eq!(restored.records(), log.records());
        // Appending to the restored log continues the sequence.
        let (ops, invs) = sample_ops();
        assert_eq!(
            restored.append(TxnTarget::Instance(InstanceId(8)), ops, invs),
            2
        );
    }
}
