//! The write-ahead log: every engine mutation as one durable JSONL record.
//!
//! The WAL is the engine's source of durability *between* snapshots:
//! every committed change transaction and every state-mutating command
//! outcome is appended here — encoded as one compact JSON line — **before**
//! it becomes visible engine state. Recovery loads the latest snapshot and
//! replays the WAL tail (`seq > snapshot.wal_seq`) to reconstruct the
//! exact pre-crash engine; see the crate-level "Durability & recovery"
//! section.
//!
//! Records carry **physical post-images** (the full instance record or
//! runtime state after the mutation), not logical commands: replay is a
//! sequence of idempotent upserts, so it converges byte-for-byte without
//! re-running drivers, guards or compliance checks. Change transactions
//! additionally embed their audit [`TxnRecord`] in the *same* line as the
//! post-image — one append, so a crash can never separate a change from
//! its audit trail.
//!
//! The WAL also **is** the transaction log: [`crate::TxnLog`] is a view
//! over the `txns` projection maintained here, replacing the old
//! standalone locked `Vec` and its separate global sequence.

use crate::backend::StorageBackend;
use crate::error::StorageError;
use crate::ordered::{classes, OrderedMutex, OrderedRwLock};
use crate::persist::InstanceRecord;
use crate::txnlog::TxnRecord;
use adept_model::{InstanceId, ProcessSchema};
use adept_state::InstanceState;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// One durable engine mutation. Post-image records (`Created`,
/// `StateChanged`, `ChangeCommitted`, `Migrated`) carry the complete
/// resulting state, so replay is an upsert and re-applying a record is
/// harmless.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A process type was deployed (version 1). Carries the deployed
    /// schema verbatim, id included.
    Deployed {
        /// The deployed version-1 schema.
        schema: ProcessSchema,
    },
    /// A type evolution committed: `name` gained the version after
    /// `base_version`, produced by the embedded transaction's operations.
    Evolved {
        /// Process type name.
        name: String,
        /// The version the evolution was based on.
        base_version: u32,
        /// The audit record (ops + inverses) of the committed evolution.
        txn: TxnRecord,
    },
    /// An instance was created (initial state post-image).
    Created {
        /// The new instance.
        id: InstanceId,
        /// Its process type.
        type_name: String,
        /// The version it was created on.
        version: u32,
        /// Its initial runtime state.
        state: InstanceState,
    },
    /// A command (or command segment) mutated an instance's runtime
    /// state; `state` is the post-command image.
    StateChanged {
        /// The instance.
        id: InstanceId,
        /// Runtime state after the command segment.
        state: InstanceState,
    },
    /// An ad-hoc change transaction committed on one instance: the full
    /// instance post-image plus the audit record, atomically in one line.
    ChangeCommitted {
        /// The instance after the commit (bias, subst, state included).
        record: InstanceRecord,
        /// The audit record of the committed transaction.
        txn: TxnRecord,
    },
    /// An instance migrated one version hop (full post-image).
    Migrated {
        /// The instance after the hop.
        record: InstanceRecord,
    },
    /// An instance was removed (cancelled / archived).
    Removed {
        /// The removed instance.
        id: InstanceId,
    },
    /// A standalone audit transaction record (no state side effect —
    /// the compatibility path of [`crate::TxnLog::append`]).
    Txn {
        /// The audit record.
        record: TxnRecord,
    },
    /// A durable no-op filling an abandoned sequence number: the append
    /// that allocated it failed on its medium after a later sequence was
    /// already handed out, so the number could not be returned to the
    /// allocator. The tombstone keeps the sequence contiguous — without
    /// it a single transient backend error would leave a permanent hole
    /// that recovery must treat as lost records. Replay ignores it.
    Abandoned,
}

/// One WAL entry: a globally sequenced record. `seq` is contiguous and
/// 1-based; recovery verifies contiguity and treats gaps as corruption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalEntry {
    /// Position in the log (1-based, contiguous).
    pub seq: u64,
    /// The recorded mutation.
    pub record: WalRecord,
}

/// Encodes one entry as its compact one-line JSON form (the shared codec:
/// snapshots embed transaction records with the same serializer).
pub fn encode_entry(entry: &WalEntry) -> Result<String, StorageError> {
    serde_json::to_string(entry).map_err(|e| StorageError::Encode {
        detail: format!("wal entry #{}: {e}", entry.seq),
    })
}

/// Decodes one line back into an entry. A complete line that does not
/// decode is **interior corruption** (torn tails never produce complete
/// lines) and therefore a hard error.
pub fn decode_entry(line: &str) -> Result<WalEntry, StorageError> {
    serde_json::from_str(line).map_err(|e| StorageError::Corrupt {
        detail: format!("undecodable wal record: {e}"),
    })
}

/// State behind the WAL's lock: the materialised transaction-log view.
/// (Appends no longer pass through here — sequence allocation is an
/// atomic and each append takes only its segment backend's own lock.)
#[derive(Debug)]
struct WalInner {
    txns: Vec<TxnRecord>,
}

/// Durability bookkeeping: `upto` is the highest sequence such that every
/// sequence at or below it has been successfully appended; `completed`
/// holds out-of-order completions above `upto` until the chain closes.
/// Updated after the segment I/O, outside any segment lock — the critical
/// section is a set insertion, not an append.
#[derive(Debug, Default)]
struct Durable {
    upto: u64,
    completed: BTreeSet<u64>,
}

impl Durable {
    fn mark(&mut self, seq: u64) {
        if seq == self.upto + 1 {
            self.upto = seq;
            while self.completed.remove(&(self.upto + 1)) {
                self.upto += 1;
            }
        } else if seq > self.upto {
            self.completed.insert(seq);
        }
    }

    /// Jumps the watermark to at least `seq` (everything below is known
    /// covered), then drains any completions that became contiguous.
    fn advance_to(&mut self, seq: u64) {
        if self.upto < seq {
            self.upto = seq;
            while self.completed.remove(&(self.upto + 1)) {
                self.upto += 1;
            }
        }
    }
}

/// The engine's write-ahead log, segmented across one or more
/// [`StorageBackend`] mediums.
///
/// Disabled by default ([`WriteAheadLog::disabled`]): a disabled WAL
/// maintains only the transaction-log *view* (the audit trail every
/// engine keeps) and performs no encoding or I/O — the hot path of
/// non-durable engines is untouched. Durable engines attach backends via
/// [`WriteAheadLog::create`] / [`WriteAheadLog::create_segmented`]
/// (fresh log) or [`WriteAheadLog::open`] /
/// [`WriteAheadLog::open_segmented`] (recovery).
///
/// # Segmentation
///
/// Sequence numbers are allocated by one atomic counter (globally
/// ordered, contention-free); entry `seq` selects the segment by
/// `(seq - 1) & mask`, so consecutive appends round-robin across
/// segments and concurrent appends from different store shards land on
/// different segment mediums — `StateChanged` journaling under a shard
/// write lock no longer serialises every shard on one backend lock.
/// With one segment (the [`WriteAheadLog::create`] path) the layout is
/// byte-identical to the pre-segmentation log. Recovery merges all
/// segments by sequence number; per-segment torn tails are repaired by
/// the backends. A gap in the merged sequence is classified by the
/// replay layer: a bounded gap at the global tail is the normal residue
/// of a crash under concurrent appends (an earlier-allocated record torn
/// or unwritten while a later one is already durable in a sibling
/// segment) and is repaired via [`WriteAheadLog::retain_up_to`]; a wide
/// or leading gap (a lost segment, a truncated log without its snapshot)
/// is reported as corruption.
#[derive(Debug)]
pub struct WriteAheadLog {
    inner: OrderedRwLock<WalInner>,
    /// The next entry sequence number to allocate (1-based).
    next_seq: AtomicU64,
    /// Contiguous-durability tracker behind [`WriteAheadLog::durable_position`].
    durable: OrderedMutex<Durable>,
    /// Segment mediums (empty = disabled). Backends synchronise
    /// internally, so appends need no WAL-level lock.
    segments: Box<[Box<dyn StorageBackend>]>,
    /// `segments.len() - 1`; segment count is a power of two.
    mask: u64,
}

impl Default for WriteAheadLog {
    fn default() -> Self {
        Self::disabled()
    }
}

impl WriteAheadLog {
    fn assemble(segments: Vec<Box<dyn StorageBackend>>, next_seq: u64) -> Self {
        let mask = segments.len().saturating_sub(1) as u64;
        Self {
            inner: OrderedRwLock::new(&classes::WAL_VIEW, WalInner { txns: Vec::new() }),
            next_seq: AtomicU64::new(next_seq),
            durable: OrderedMutex::new(
                &classes::WAL_DURABLE,
                Durable {
                    // Everything below the opening position is on the medium
                    // (or covered by the snapshot a recovery replays).
                    upto: next_seq - 1,
                    completed: BTreeSet::new(),
                },
            ),
            segments: segments.into_boxed_slice(),
            mask,
        }
    }

    /// A WAL without a backend: appends maintain the transaction view
    /// only, [`WriteAheadLog::position`] stays 0, nothing is encoded.
    pub fn disabled() -> Self {
        Self::assemble(Vec::new(), 1)
    }

    /// Attaches a single backend for a **fresh** engine. The backend
    /// must be empty (a non-empty log would silently be orphaned —
    /// recovering from it is [`WriteAheadLog::open`]'s job).
    pub fn create(backend: Box<dyn StorageBackend>) -> Result<Self, StorageError> {
        Self::create_segmented(vec![backend])
    }

    /// Attaches a power-of-two number of segment backends for a fresh
    /// engine. Every segment must be empty. Recovery must be given the
    /// same number of segments in the same order
    /// ([`WriteAheadLog::open_segmented`]).
    pub fn create_segmented(segments: Vec<Box<dyn StorageBackend>>) -> Result<Self, StorageError> {
        if !segments.len().is_power_of_two() {
            return Err(StorageError::corrupt(format!(
                "wal segment count must be a power of two, got {}",
                segments.len()
            )));
        }
        for (i, seg) in segments.iter().enumerate() {
            let raw = seg.read_log()?;
            if !raw.lines.is_empty() {
                return Err(StorageError::corrupt(format!(
                    "segment {i} already holds {} wal record(s); recover from it instead \
                     of attaching it to a fresh engine",
                    raw.lines.len()
                )));
            }
        }
        Ok(Self::assemble(segments, 1))
    }

    /// Opens an existing single-backend log for recovery; see
    /// [`WriteAheadLog::open_segmented`].
    pub fn open(
        backend: Box<dyn StorageBackend>,
    ) -> Result<(Self, Vec<WalEntry>, usize), StorageError> {
        Self::open_segmented(vec![backend])
    }

    /// Opens an existing segmented log for recovery: reads every segment
    /// (each after its own torn-tail repair), verifies every entry
    /// decodes, **merges the segments by sequence number**, and returns
    /// the WAL positioned after the highest entry plus the merged
    /// entries and the total torn bytes dropped across segments. A
    /// sequence number appearing twice is corruption (two segments
    /// cannot legally hold the same entry); gaps are left for the replay
    /// layer, which knows the snapshot watermark. The transaction view
    /// starts empty — recovery seeds it from the snapshot and the
    /// replayed records.
    pub fn open_segmented(
        segments: Vec<Box<dyn StorageBackend>>,
    ) -> Result<(Self, Vec<WalEntry>, usize), StorageError> {
        if !segments.len().is_power_of_two() {
            return Err(StorageError::corrupt(format!(
                "wal segment count must be a power of two, got {}",
                segments.len()
            )));
        }
        let mut entries = Vec::new();
        let mut torn_total = 0usize;
        for seg in &segments {
            let raw = seg.read_log()?;
            torn_total += raw.torn_tail_bytes;
            for line in &raw.lines {
                entries.push(decode_entry(line)?);
            }
        }
        entries.sort_by_key(|e| e.seq);
        for pair in entries.windows(2) {
            if pair[0].seq == pair[1].seq {
                return Err(StorageError::corrupt(format!(
                    "wal seq {} recorded twice across segments",
                    pair[0].seq
                )));
            }
        }
        let next_seq = entries.last().map(|e| e.seq).unwrap_or(0) + 1;
        Ok((Self::assemble(segments, next_seq), entries, torn_total))
    }

    /// Whether backends are attached (appends encode and persist).
    pub fn enabled(&self) -> bool {
        !self.segments.is_empty()
    }

    /// Number of segment mediums (0 = disabled).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Whether appends can fail (any attached, fallible segment).
    /// Callers use this to decide whether a rollback pre-image is worth
    /// cloning.
    pub fn fallible(&self) -> bool {
        self.segments.iter().any(|b| !b.infallible())
    }

    /// The attached backends' kind (`"memory"`, `"file"`), if any.
    pub fn backend_kind(&self) -> Option<&'static str> {
        self.segments.first().map(|b| b.kind())
    }

    /// The sequence number of the most recently **allocated** entry (0 =
    /// nothing appended). Under concurrent appends this can run ahead of
    /// what is actually on the mediums — an allocated sequence may still
    /// be in flight, or about to fail and be rolled back. Use
    /// [`WriteAheadLog::durable_position`] for watermarks that claim
    /// coverage.
    pub fn position(&self) -> u64 {
        self.next_seq.load(Ordering::SeqCst) - 1
    }

    /// The highest sequence number `d` such that every entry `1..=d` has
    /// been **successfully appended** (0 = nothing durable). Unlike
    /// [`WriteAheadLog::position`] this never counts allocated-but-
    /// in-flight or failed appends, so it is the safe `wal_seq` watermark
    /// for snapshots: a snapshot claiming coverage up to `d` never claims
    /// a sequence the log does not durably hold. Quiesced (no in-flight
    /// appends), the two positions are equal.
    pub fn durable_position(&self) -> u64 {
        self.durable.lock().upto
    }

    /// Marks one append as successfully persisted, advancing the
    /// contiguous durability watermark when the chain below it is closed.
    fn mark_durable(&self, seq: u64) {
        self.durable.lock().mark(seq);
    }

    /// Advances the position watermark to at least `seq` (recovery: the
    /// snapshot may be newer than the last surviving log entry after a
    /// checkpoint truncation). The sequences below `seq` are covered by
    /// snapshot + replayed log, so the durable watermark advances too.
    pub fn advance_position(&self, seq: u64) {
        self.next_seq.fetch_max(seq + 1, Ordering::SeqCst);
        self.durable.lock().advance_to(seq);
    }

    /// Physically truncates every segment back to the entries with
    /// sequence ≤ `seq` and rewinds the allocator — the recovery-side
    /// repair of a crash tail: sequences past the last contiguous entry
    /// are dropped from *all* segments so siblings cannot carry orphaned
    /// later records, and appends continue at `seq + 1`. Returns the
    /// number of entries dropped. Recovery-only: callers must guarantee
    /// no concurrent appends.
    pub fn retain_up_to(&self, seq: u64) -> Result<usize, StorageError> {
        let mut dropped = 0usize;
        for seg in self.segments.iter() {
            let raw = seg.read_log()?;
            let keep: Vec<&String> = raw
                .lines
                .iter()
                .filter(|line| decode_entry(line).map(|e| e.seq <= seq).unwrap_or(false))
                .collect();
            if keep.len() == raw.lines.len() {
                continue;
            }
            dropped += raw.lines.len() - keep.len();
            seg.reset()?;
            for line in keep {
                seg.append_line(line)?;
            }
        }
        self.next_seq.store(seq + 1, Ordering::SeqCst);
        let mut durable = self.durable.lock();
        durable.upto = seq;
        durable.completed.clear();
        Ok(dropped)
    }

    /// The segment an entry sequence number maps to.
    #[inline]
    fn segment_of(&self, seq: u64) -> &dyn StorageBackend {
        &*self.segments[((seq - 1) & self.mask) as usize]
    }

    /// Allocates the next sequence number, encodes and appends to the
    /// owning segment. On failure the allocation is rolled back when no
    /// later sequence was handed out in the meantime; otherwise the
    /// abandoned number is plugged with a durable [`WalRecord::Abandoned`]
    /// tombstone (on its own segment, falling back to each sibling) so a
    /// transient medium error never leaves a sequence hole that recovery
    /// would have to treat as lost records. Only if *every* segment
    /// refuses the tombstone does the hole remain — the honest outcome of
    /// all mediums failing at once, and still repairable by recovery's
    /// crash-tail truncation if nothing lands after it.
    fn append_allocated(&self, record: WalRecord) -> Result<u64, StorageError> {
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let result = encode_entry(&WalEntry { seq, record })
            .and_then(|line| self.segment_of(seq).append_line(&line));
        match result {
            Ok(()) => {
                self.mark_durable(seq);
                Ok(seq)
            }
            Err(e) => {
                let rolled_back = self
                    .next_seq
                    .compare_exchange(seq + 1, seq, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok();
                if !rolled_back {
                    self.plug_abandoned(seq);
                }
                Err(e)
            }
        }
    }

    /// Durably records an [`WalRecord::Abandoned`] tombstone for a
    /// sequence number whose append failed and whose allocation could not
    /// be rolled back. Tries the owning segment first (its failure may
    /// have been transient), then every sibling — recovery merges by
    /// sequence and never checks which segment a sequence lives on.
    fn plug_abandoned(&self, seq: u64) {
        let Ok(line) = encode_entry(&WalEntry {
            seq,
            record: WalRecord::Abandoned,
        }) else {
            return;
        };
        let n = self.segments.len();
        let owner = ((seq - 1) & self.mask) as usize;
        for i in 0..n {
            if self.segments[(owner + i) % n].append_line(&line).is_ok() {
                self.mark_durable(seq);
                return;
            }
        }
    }

    /// Appends one record, assigning the next sequence number. On a
    /// disabled WAL this is a no-op returning 0. The record is durable
    /// (per the owning segment's sync policy) when this returns `Ok`.
    /// Concurrent appends contend only on the sequence atomic and their
    /// own segment's medium — never on a WAL-global lock.
    pub fn append(&self, record: WalRecord) -> Result<u64, StorageError> {
        if self.segments.is_empty() {
            return Ok(0);
        }
        self.append_allocated(record)
    }

    /// Appends a record that *carries a transaction*: `build` receives
    /// the next transaction sequence number (the audit numbering, 1-based
    /// and independent of entry sequence numbers) and returns the WAL
    /// record plus the transaction record to expose through the view.
    /// Assignment, append and view update happen under the view lock, so
    /// transaction numbering is race-free; on a backend failure the view
    /// is untouched and the error surfaces to the commit path. (Change
    /// commits are rare next to command journaling, so serialising them
    /// on the view lock costs nothing on the hot path.) Returns the
    /// assigned transaction sequence number.
    pub fn append_txn(
        &self,
        build: impl FnOnce(u64) -> (WalRecord, TxnRecord),
    ) -> Result<u64, StorageError> {
        let mut inner = self.inner.write();
        let txn_seq = inner.txns.last().map(|r| r.seq).unwrap_or(0) + 1;
        let (record, txn) = build(txn_seq);
        if !self.segments.is_empty() {
            self.append_allocated(record)?;
        }
        inner.txns.push(txn);
        Ok(txn_seq)
    }

    /// Seeds the transaction view from persisted records (snapshot
    /// restore). Existing view content is replaced.
    pub fn seed_txns(&self, mut records: Vec<TxnRecord>) {
        records.sort_by_key(|r| r.seq);
        self.inner.write().txns = records;
    }

    /// Pushes a transaction record recovered from a replayed WAL entry
    /// into the view. Records already covered by the seeded snapshot
    /// (same or lower sequence number) are ignored, so replaying a tail
    /// that overlaps the snapshot stays idempotent.
    pub fn note_replayed_txn(&self, record: TxnRecord) {
        let mut inner = self.inner.write();
        let last = inner.txns.last().map(|r| r.seq).unwrap_or(0);
        if record.seq > last {
            inner.txns.push(record);
        }
    }

    /// A snapshot of the transaction view, in commit order.
    pub fn txn_records(&self) -> Vec<TxnRecord> {
        self.inner.read().txns.clone()
    }

    /// Number of transactions in the view.
    pub fn txn_len(&self) -> usize {
        self.inner.read().txns.len()
    }

    /// Forces every segment to stable storage (no-op when disabled).
    pub fn sync(&self) -> Result<(), StorageError> {
        for seg in self.segments.iter() {
            seg.sync()?;
        }
        Ok(())
    }

    /// Truncates every segment's log to empty while keeping the position
    /// watermark and the transaction view — the checkpoint step after a
    /// snapshot carrying `wal_seq == durable_position()` has been
    /// persisted. Future appends continue the sequence, so recovery can
    /// verify contiguity across the checkpoint.
    pub fn truncate(&self) -> Result<(), StorageError> {
        for seg in self.segments.iter() {
            seg.reset()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{MemoryBackend, RawLog};
    use crate::txnlog::TxnTarget;

    fn txn(seq: u64) -> TxnRecord {
        TxnRecord {
            seq,
            target: TxnTarget::Instance(InstanceId(7)),
            ops: vec![],
            inverses: vec![],
        }
    }

    #[test]
    fn disabled_wal_keeps_view_only() {
        let wal = WriteAheadLog::disabled();
        assert!(!wal.enabled());
        assert!(!wal.fallible());
        assert_eq!(wal.position(), 0);
        let s = wal
            .append_txn(|seq| (WalRecord::Txn { record: txn(seq) }, txn(seq)))
            .unwrap();
        assert_eq!(s, 1);
        assert_eq!(wal.position(), 0, "disabled appends don't advance");
        assert_eq!(wal.txn_len(), 1);
        assert_eq!(
            wal.append(WalRecord::Removed { id: InstanceId(1) })
                .unwrap(),
            0
        );
    }

    #[test]
    fn append_assigns_contiguous_sequence() {
        let wal = WriteAheadLog::create(Box::new(MemoryBackend::new())).unwrap();
        assert!(wal.enabled());
        let s1 = wal
            .append(WalRecord::Removed { id: InstanceId(1) })
            .unwrap();
        let s2 = wal
            .append(WalRecord::Removed { id: InstanceId(2) })
            .unwrap();
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(wal.position(), 2);
    }

    #[test]
    fn open_decodes_entries_and_continues_sequence() {
        let medium = MemoryBackend::new();
        {
            let wal = WriteAheadLog::create(Box::new(medium.clone())).unwrap();
            wal.append(WalRecord::Removed { id: InstanceId(1) })
                .unwrap();
            wal.append_txn(|seq| (WalRecord::Txn { record: txn(seq) }, txn(seq)))
                .unwrap();
        }
        let (wal, entries, torn) = WriteAheadLog::open(Box::new(medium)).unwrap();
        assert_eq!(torn, 0);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 1);
        assert!(matches!(entries[1].record, WalRecord::Txn { .. }));
        assert_eq!(wal.position(), 2);
        assert_eq!(
            wal.append(WalRecord::Removed { id: InstanceId(9) })
                .unwrap(),
            3
        );
    }

    #[test]
    fn create_refuses_nonempty_backend() {
        let medium = MemoryBackend::new();
        medium.append_line("{\"seq\":1}").unwrap();
        let err = WriteAheadLog::create(Box::new(medium)).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));
    }

    #[test]
    fn interior_corruption_is_hard_error() {
        let medium = MemoryBackend::new();
        {
            let wal = WriteAheadLog::create(Box::new(medium.clone())).unwrap();
            wal.append(WalRecord::Removed { id: InstanceId(1) })
                .unwrap();
            wal.append(WalRecord::Removed { id: InstanceId(2) })
                .unwrap();
        }
        // Damage the FIRST record (complete line, undecodable content).
        let raw = medium.raw();
        let text = String::from_utf8(raw).unwrap();
        let corrupted = text.replacen("\"seq\":1", "\"seq\":garbage", 1);
        medium.set_raw(corrupted.as_bytes());
        let err = WriteAheadLog::open(Box::new(medium)).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn torn_tail_is_reported_and_dropped() {
        let medium = MemoryBackend::new();
        {
            let wal = WriteAheadLog::create(Box::new(medium.clone())).unwrap();
            wal.append(WalRecord::Removed { id: InstanceId(1) })
                .unwrap();
            wal.append(WalRecord::Removed { id: InstanceId(2) })
                .unwrap();
        }
        let raw = medium.raw();
        medium.set_raw(&raw[..raw.len() - 6]);
        let (wal, entries, torn) = WriteAheadLog::open(Box::new(medium)).unwrap();
        assert_eq!(entries.len(), 1, "only the complete record survives");
        assert!(torn > 0);
        assert_eq!(wal.position(), 1);
    }

    #[test]
    fn truncate_keeps_position_and_view() {
        let wal = WriteAheadLog::create(Box::new(MemoryBackend::new())).unwrap();
        wal.append_txn(|seq| (WalRecord::Txn { record: txn(seq) }, txn(seq)))
            .unwrap();
        let pos = wal.position();
        wal.truncate().unwrap();
        assert_eq!(wal.position(), pos, "position survives the checkpoint");
        assert_eq!(wal.txn_len(), 1, "audit view survives the checkpoint");
        assert_eq!(
            wal.append(WalRecord::Removed { id: InstanceId(3) })
                .unwrap(),
            pos + 1,
            "sequence continues across the checkpoint"
        );
    }

    #[test]
    fn segmented_appends_round_robin_and_merge_on_open() {
        let mediums: Vec<MemoryBackend> = (0..4).map(|_| MemoryBackend::new()).collect();
        {
            let wal = WriteAheadLog::create_segmented(
                mediums
                    .iter()
                    .map(|m| Box::new(m.clone()) as Box<dyn StorageBackend>)
                    .collect(),
            )
            .unwrap();
            assert_eq!(wal.segment_count(), 4);
            for i in 1..=8u64 {
                let seq = wal
                    .append(WalRecord::Removed { id: InstanceId(i) })
                    .unwrap();
                assert_eq!(seq, i, "sequence stays globally ordered");
            }
            assert_eq!(wal.position(), 8);
        }
        // Each segment holds exactly its round-robin share.
        for m in &mediums {
            assert_eq!(m.read_log().unwrap().lines.len(), 2);
        }
        // Reopening merges the segments back into sequence order.
        let (wal, entries, torn) = WriteAheadLog::open_segmented(
            mediums
                .iter()
                .map(|m| Box::new(m.clone()) as Box<dyn StorageBackend>)
                .collect(),
        )
        .unwrap();
        assert_eq!(torn, 0);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (1..=8).collect::<Vec<u64>>());
        assert_eq!(wal.position(), 8);
        assert_eq!(
            wal.append(WalRecord::Removed { id: InstanceId(9) })
                .unwrap(),
            9
        );
    }

    #[test]
    fn single_segment_matches_legacy_layout() {
        let single = MemoryBackend::new();
        let seg = MemoryBackend::new();
        let a = WriteAheadLog::create(Box::new(single.clone())).unwrap();
        let b = WriteAheadLog::create_segmented(vec![Box::new(seg.clone())]).unwrap();
        for i in 1..=3u64 {
            a.append(WalRecord::Removed { id: InstanceId(i) }).unwrap();
            b.append(WalRecord::Removed { id: InstanceId(i) }).unwrap();
        }
        assert_eq!(single.raw(), seg.raw(), "one segment = the old layout");
    }

    #[test]
    fn segment_count_must_be_power_of_two() {
        let backends = |n: usize| -> Vec<Box<dyn StorageBackend>> {
            (0..n)
                .map(|_| Box::new(MemoryBackend::new()) as Box<dyn StorageBackend>)
                .collect()
        };
        assert!(WriteAheadLog::create_segmented(backends(3)).is_err());
        assert!(WriteAheadLog::create_segmented(backends(4)).is_ok());
        assert!(WriteAheadLog::open_segmented(backends(6)).is_err());
    }

    #[test]
    fn duplicate_seq_across_segments_is_corrupt() {
        let a = MemoryBackend::new();
        let b = MemoryBackend::new();
        let entry = encode_entry(&WalEntry {
            seq: 1,
            record: WalRecord::Removed { id: InstanceId(1) },
        })
        .unwrap();
        a.append_line(&entry).unwrap();
        b.append_line(&entry).unwrap();
        let err = WriteAheadLog::open_segmented(vec![Box::new(a), Box::new(b)]).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn segmented_torn_tail_repairs_its_segment_only() {
        let mediums: Vec<MemoryBackend> = (0..2).map(|_| MemoryBackend::new()).collect();
        {
            let wal = WriteAheadLog::create_segmented(
                mediums
                    .iter()
                    .map(|m| Box::new(m.clone()) as Box<dyn StorageBackend>)
                    .collect(),
            )
            .unwrap();
            for i in 1..=4u64 {
                wal.append(WalRecord::Removed { id: InstanceId(i) })
                    .unwrap();
            }
        }
        // Seq 4 lives in segment 1 ((4-1) & 1); tear it mid-record.
        let raw = mediums[1].raw();
        mediums[1].set_raw(&raw[..raw.len() - 6]);
        let (wal, entries, torn) = WriteAheadLog::open_segmented(
            mediums
                .iter()
                .map(|m| Box::new(m.clone()) as Box<dyn StorageBackend>)
                .collect(),
        )
        .unwrap();
        assert!(torn > 0);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3], "only the torn record is lost");
        assert_eq!(wal.position(), 3);
    }

    #[test]
    fn durable_marks_close_out_of_order_chains() {
        let mut d = Durable::default();
        d.mark(2);
        assert_eq!(d.upto, 0, "seq 1 still in flight");
        d.mark(1);
        assert_eq!(d.upto, 2, "chain closed through the buffered completion");
        d.mark(4);
        d.mark(5);
        assert_eq!(d.upto, 2);
        d.mark(3);
        assert_eq!(d.upto, 5);
    }

    #[test]
    fn retain_up_to_truncates_all_segments_and_rewinds() {
        let mediums: Vec<MemoryBackend> = (0..2).map(|_| MemoryBackend::new()).collect();
        let wal = WriteAheadLog::create_segmented(
            mediums
                .iter()
                .map(|m| Box::new(m.clone()) as Box<dyn StorageBackend>)
                .collect(),
        )
        .unwrap();
        for i in 1..=6u64 {
            wal.append(WalRecord::Removed { id: InstanceId(i) })
                .unwrap();
        }
        let dropped = wal.retain_up_to(3).unwrap();
        assert_eq!(dropped, 3, "seqs 4..=6 removed across both segments");
        assert_eq!(wal.position(), 3);
        assert_eq!(wal.durable_position(), 3);
        assert_eq!(
            wal.append(WalRecord::Removed { id: InstanceId(9) })
                .unwrap(),
            4,
            "sequence resumes after the cut"
        );
        let (_, entries, _) = WriteAheadLog::open_segmented(
            mediums
                .iter()
                .map(|m| Box::new(m.clone()) as Box<dyn StorageBackend>)
                .collect(),
        )
        .unwrap();
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4], "the cut is physical");
    }

    /// A backend that fails exactly one append — and holds that append
    /// until released, so a test can deterministically arrange a later
    /// sequence to become durable first (the CAS-rollback-impossible
    /// window).
    #[derive(Debug)]
    struct FailingOnce {
        inner: MemoryBackend,
        armed: std::sync::atomic::AtomicBool,
        entered: OrderedMutex<std::sync::mpsc::Sender<()>>,
        release: OrderedMutex<std::sync::mpsc::Receiver<()>>,
    }

    impl StorageBackend for FailingOnce {
        fn append_line(&self, line: &str) -> Result<(), StorageError> {
            if self.armed.swap(false, Ordering::SeqCst) {
                self.entered.lock().send(()).unwrap();
                self.release.lock().recv().unwrap();
                return Err(StorageError::corrupt("injected append failure"));
            }
            self.inner.append_line(line)
        }
        fn sync(&self) -> Result<(), StorageError> {
            self.inner.sync()
        }
        fn read_log(&self) -> Result<RawLog, StorageError> {
            self.inner.read_log()
        }
        fn reset(&self) -> Result<(), StorageError> {
            self.inner.reset()
        }
        fn kind(&self) -> &'static str {
            "failing-once"
        }
    }

    #[test]
    fn failed_append_with_later_durable_seq_plugs_a_tombstone() {
        let flaky_medium = MemoryBackend::new();
        let other = MemoryBackend::new();
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        let flaky = FailingOnce {
            inner: flaky_medium.clone(),
            armed: std::sync::atomic::AtomicBool::new(true),
            entered: OrderedMutex::new(&classes::TEST_SUPPORT, entered_tx),
            release: OrderedMutex::new(&classes::TEST_SUPPORT, release_rx),
        };
        let wal = std::sync::Arc::new(
            WriteAheadLog::create_segmented(vec![Box::new(flaky), Box::new(other.clone())])
                .unwrap(),
        );
        let w = wal.clone();
        // Seq 1 → segment 0 (the failing medium); the appender parks
        // inside the backend holding its allocation.
        let t = std::thread::spawn(move || w.append(WalRecord::Removed { id: InstanceId(1) }));
        entered_rx.recv().unwrap();
        // Seq 2 → segment 1, durable. Now seq 1 can no longer be rolled
        // back by the CAS.
        wal.append(WalRecord::Removed { id: InstanceId(2) })
            .unwrap();
        assert_eq!(wal.durable_position(), 0, "seq 1 still pending");
        release_tx.send(()).unwrap();
        assert!(t.join().unwrap().is_err(), "the append itself still fails");
        assert_eq!(wal.position(), 2);
        assert_eq!(
            wal.durable_position(),
            2,
            "the tombstone closed the chain under seq 2"
        );
        // The abandoned sequence is durably plugged: a reopen sees a
        // contiguous log with a no-op at seq 1.
        let (_, entries, _) =
            WriteAheadLog::open_segmented(vec![Box::new(flaky_medium), Box::new(other)]).unwrap();
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert!(matches!(entries[0].record, WalRecord::Abandoned));
    }

    #[test]
    fn replayed_txns_dedupe_against_seed() {
        let wal = WriteAheadLog::disabled();
        wal.seed_txns(vec![txn(2), txn(1)]);
        assert_eq!(wal.txn_records()[0].seq, 1, "seed is sorted");
        wal.note_replayed_txn(txn(2)); // covered by seed → ignored
        wal.note_replayed_txn(txn(3));
        assert_eq!(wal.txn_len(), 3);
    }
}
