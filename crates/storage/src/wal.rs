//! The write-ahead log: every engine mutation as one durable JSONL record.
//!
//! The WAL is the engine's source of durability *between* snapshots:
//! every committed change transaction and every state-mutating command
//! outcome is appended here — encoded as one compact JSON line — **before**
//! it becomes visible engine state. Recovery loads the latest snapshot and
//! replays the WAL tail (`seq > snapshot.wal_seq`) to reconstruct the
//! exact pre-crash engine; see the crate-level "Durability & recovery"
//! section.
//!
//! Records carry **physical post-images** (the full instance record or
//! runtime state after the mutation), not logical commands: replay is a
//! sequence of idempotent upserts, so it converges byte-for-byte without
//! re-running drivers, guards or compliance checks. Change transactions
//! additionally embed their audit [`TxnRecord`] in the *same* line as the
//! post-image — one append, so a crash can never separate a change from
//! its audit trail.
//!
//! The WAL also **is** the transaction log: [`crate::TxnLog`] is a view
//! over the `txns` projection maintained here, replacing the old
//! standalone locked `Vec` and its separate global sequence.

use crate::backend::StorageBackend;
use crate::error::StorageError;
use crate::persist::InstanceRecord;
use crate::txnlog::TxnRecord;
use adept_model::{InstanceId, ProcessSchema};
use adept_state::InstanceState;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// One durable engine mutation. Post-image records (`Created`,
/// `StateChanged`, `ChangeCommitted`, `Migrated`) carry the complete
/// resulting state, so replay is an upsert and re-applying a record is
/// harmless.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A process type was deployed (version 1). Carries the deployed
    /// schema verbatim, id included.
    Deployed {
        /// The deployed version-1 schema.
        schema: ProcessSchema,
    },
    /// A type evolution committed: `name` gained the version after
    /// `base_version`, produced by the embedded transaction's operations.
    Evolved {
        /// Process type name.
        name: String,
        /// The version the evolution was based on.
        base_version: u32,
        /// The audit record (ops + inverses) of the committed evolution.
        txn: TxnRecord,
    },
    /// An instance was created (initial state post-image).
    Created {
        /// The new instance.
        id: InstanceId,
        /// Its process type.
        type_name: String,
        /// The version it was created on.
        version: u32,
        /// Its initial runtime state.
        state: InstanceState,
    },
    /// A command (or command segment) mutated an instance's runtime
    /// state; `state` is the post-command image.
    StateChanged {
        /// The instance.
        id: InstanceId,
        /// Runtime state after the command segment.
        state: InstanceState,
    },
    /// An ad-hoc change transaction committed on one instance: the full
    /// instance post-image plus the audit record, atomically in one line.
    ChangeCommitted {
        /// The instance after the commit (bias, subst, state included).
        record: InstanceRecord,
        /// The audit record of the committed transaction.
        txn: TxnRecord,
    },
    /// An instance migrated one version hop (full post-image).
    Migrated {
        /// The instance after the hop.
        record: InstanceRecord,
    },
    /// An instance was removed (cancelled / archived).
    Removed {
        /// The removed instance.
        id: InstanceId,
    },
    /// A standalone audit transaction record (no state side effect —
    /// the compatibility path of [`crate::TxnLog::append`]).
    Txn {
        /// The audit record.
        record: TxnRecord,
    },
}

/// One WAL entry: a globally sequenced record. `seq` is contiguous and
/// 1-based; recovery verifies contiguity and treats gaps as corruption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalEntry {
    /// Position in the log (1-based, contiguous).
    pub seq: u64,
    /// The recorded mutation.
    pub record: WalRecord,
}

/// Encodes one entry as its compact one-line JSON form (the shared codec:
/// snapshots embed transaction records with the same serializer).
pub fn encode_entry(entry: &WalEntry) -> Result<String, StorageError> {
    serde_json::to_string(entry).map_err(|e| StorageError::Encode {
        detail: format!("wal entry #{}: {e}", entry.seq),
    })
}

/// Decodes one line back into an entry. A complete line that does not
/// decode is **interior corruption** (torn tails never produce complete
/// lines) and therefore a hard error.
pub fn decode_entry(line: &str) -> Result<WalEntry, StorageError> {
    serde_json::from_str(line).map_err(|e| StorageError::Corrupt {
        detail: format!("undecodable wal record: {e}"),
    })
}

/// State behind the WAL's lock: the optional backend (None = disabled,
/// audit-view only), the materialised transaction-log view, and the next
/// entry sequence number.
#[derive(Debug)]
struct WalInner {
    backend: Option<Box<dyn StorageBackend>>,
    txns: Vec<TxnRecord>,
    next_seq: u64,
}

/// The engine's write-ahead log.
///
/// Disabled by default ([`WriteAheadLog::disabled`]): a disabled WAL
/// maintains only the transaction-log *view* (the audit trail every
/// engine keeps) and performs no encoding or I/O — the hot path of
/// non-durable engines is untouched. Durable engines attach a
/// [`StorageBackend`] via [`WriteAheadLog::create`] (fresh log) or
/// [`WriteAheadLog::open`] (recovery).
#[derive(Debug)]
pub struct WriteAheadLog {
    inner: RwLock<WalInner>,
}

impl Default for WriteAheadLog {
    fn default() -> Self {
        Self::disabled()
    }
}

impl WriteAheadLog {
    /// A WAL without a backend: appends maintain the transaction view
    /// only, [`WriteAheadLog::position`] stays 0, nothing is encoded.
    pub fn disabled() -> Self {
        Self {
            inner: RwLock::new(WalInner {
                backend: None,
                txns: Vec::new(),
                next_seq: 1,
            }),
        }
    }

    /// Attaches a backend for a **fresh** engine. The backend must be
    /// empty (a non-empty log would silently be orphaned — recovering
    /// from it is [`WriteAheadLog::open`]'s job).
    pub fn create(backend: Box<dyn StorageBackend>) -> Result<Self, StorageError> {
        let raw = backend.read_log()?;
        if !raw.lines.is_empty() {
            return Err(StorageError::corrupt(format!(
                "backend already holds {} wal record(s); recover from it instead of \
                 attaching it to a fresh engine",
                raw.lines.len()
            )));
        }
        Ok(Self {
            inner: RwLock::new(WalInner {
                backend: Some(backend),
                txns: Vec::new(),
                next_seq: 1,
            }),
        })
    }

    /// Opens an existing log for recovery: reads every entry (after the
    /// backend's torn-tail repair), verifies they decode, and returns the
    /// WAL positioned after the last entry plus the decoded entries and
    /// the number of torn bytes dropped. The transaction view starts
    /// empty — recovery seeds it from the snapshot and the replayed
    /// records.
    pub fn open(
        backend: Box<dyn StorageBackend>,
    ) -> Result<(Self, Vec<WalEntry>, usize), StorageError> {
        let raw = backend.read_log()?;
        let mut entries = Vec::with_capacity(raw.lines.len());
        for line in &raw.lines {
            entries.push(decode_entry(line)?);
        }
        let next_seq = entries.last().map(|e| e.seq).unwrap_or(0) + 1;
        let wal = Self {
            inner: RwLock::new(WalInner {
                backend: Some(backend),
                txns: Vec::new(),
                next_seq,
            }),
        };
        Ok((wal, entries, raw.torn_tail_bytes))
    }

    /// Whether a backend is attached (appends encode and persist).
    pub fn enabled(&self) -> bool {
        self.inner.read().backend.is_some()
    }

    /// Whether appends can fail (an attached, fallible backend). Callers
    /// use this to decide whether a rollback pre-image is worth cloning.
    pub fn fallible(&self) -> bool {
        self.inner
            .read()
            .backend
            .as_ref()
            .is_some_and(|b| !b.infallible())
    }

    /// The attached backend's kind (`"memory"`, `"file"`), if any.
    pub fn backend_kind(&self) -> Option<&'static str> {
        self.inner.read().backend.as_ref().map(|b| b.kind())
    }

    /// The sequence number of the most recently appended entry (0 =
    /// nothing appended). Snapshots record this as their `wal_seq`
    /// watermark.
    pub fn position(&self) -> u64 {
        self.inner.read().next_seq - 1
    }

    /// Advances the position watermark to at least `seq` (recovery: the
    /// snapshot may be newer than the last surviving log entry after a
    /// checkpoint truncation).
    pub fn advance_position(&self, seq: u64) {
        let mut inner = self.inner.write();
        inner.next_seq = inner.next_seq.max(seq + 1);
    }

    /// Appends one record, assigning the next sequence number. On a
    /// disabled WAL this is a no-op returning 0. The record is durable
    /// (per the backend's sync policy) when this returns `Ok`.
    pub fn append(&self, record: WalRecord) -> Result<u64, StorageError> {
        let mut inner = self.inner.write();
        if inner.backend.is_none() {
            return Ok(0);
        }
        let seq = inner.next_seq;
        let line = encode_entry(&WalEntry { seq, record })?;
        inner
            .backend
            .as_ref()
            .expect("checked above")
            .append_line(&line)?;
        inner.next_seq = seq + 1;
        Ok(seq)
    }

    /// Appends a record that *carries a transaction*: `build` receives
    /// the next transaction sequence number (the audit numbering, 1-based
    /// and independent of entry sequence numbers) and returns the WAL
    /// record plus the transaction record to expose through the view.
    /// Assignment, append and view update happen under one lock, so
    /// transaction numbering is race-free; on a backend failure the view
    /// is untouched and the error surfaces to the commit path. Returns
    /// the assigned transaction sequence number.
    pub fn append_txn(
        &self,
        build: impl FnOnce(u64) -> (WalRecord, TxnRecord),
    ) -> Result<u64, StorageError> {
        let mut inner = self.inner.write();
        let txn_seq = inner.txns.last().map(|r| r.seq).unwrap_or(0) + 1;
        let (record, txn) = build(txn_seq);
        if inner.backend.is_some() {
            let seq = inner.next_seq;
            let line = encode_entry(&WalEntry { seq, record })?;
            inner
                .backend
                .as_ref()
                .expect("checked above")
                .append_line(&line)?;
            inner.next_seq = seq + 1;
        }
        inner.txns.push(txn);
        Ok(txn_seq)
    }

    /// Seeds the transaction view from persisted records (snapshot
    /// restore). Existing view content is replaced.
    pub fn seed_txns(&self, mut records: Vec<TxnRecord>) {
        records.sort_by_key(|r| r.seq);
        self.inner.write().txns = records;
    }

    /// Pushes a transaction record recovered from a replayed WAL entry
    /// into the view. Records already covered by the seeded snapshot
    /// (same or lower sequence number) are ignored, so replaying a tail
    /// that overlaps the snapshot stays idempotent.
    pub fn note_replayed_txn(&self, record: TxnRecord) {
        let mut inner = self.inner.write();
        let last = inner.txns.last().map(|r| r.seq).unwrap_or(0);
        if record.seq > last {
            inner.txns.push(record);
        }
    }

    /// A snapshot of the transaction view, in commit order.
    pub fn txn_records(&self) -> Vec<TxnRecord> {
        self.inner.read().txns.clone()
    }

    /// Number of transactions in the view.
    pub fn txn_len(&self) -> usize {
        self.inner.read().txns.len()
    }

    /// Forces the backend to stable storage (no-op when disabled).
    pub fn sync(&self) -> Result<(), StorageError> {
        match self.inner.read().backend.as_ref() {
            Some(b) => b.sync(),
            None => Ok(()),
        }
    }

    /// Truncates the backend's log to empty while keeping the position
    /// watermark and the transaction view — the checkpoint step after a
    /// snapshot carrying `wal_seq == position()` has been persisted.
    /// Future appends continue the sequence, so recovery can verify
    /// contiguity across the checkpoint.
    pub fn truncate(&self) -> Result<(), StorageError> {
        match self.inner.read().backend.as_ref() {
            Some(b) => b.reset(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use crate::txnlog::TxnTarget;

    fn txn(seq: u64) -> TxnRecord {
        TxnRecord {
            seq,
            target: TxnTarget::Instance(InstanceId(7)),
            ops: vec![],
            inverses: vec![],
        }
    }

    #[test]
    fn disabled_wal_keeps_view_only() {
        let wal = WriteAheadLog::disabled();
        assert!(!wal.enabled());
        assert!(!wal.fallible());
        assert_eq!(wal.position(), 0);
        let s = wal
            .append_txn(|seq| (WalRecord::Txn { record: txn(seq) }, txn(seq)))
            .unwrap();
        assert_eq!(s, 1);
        assert_eq!(wal.position(), 0, "disabled appends don't advance");
        assert_eq!(wal.txn_len(), 1);
        assert_eq!(
            wal.append(WalRecord::Removed { id: InstanceId(1) })
                .unwrap(),
            0
        );
    }

    #[test]
    fn append_assigns_contiguous_sequence() {
        let wal = WriteAheadLog::create(Box::new(MemoryBackend::new())).unwrap();
        assert!(wal.enabled());
        let s1 = wal
            .append(WalRecord::Removed { id: InstanceId(1) })
            .unwrap();
        let s2 = wal
            .append(WalRecord::Removed { id: InstanceId(2) })
            .unwrap();
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(wal.position(), 2);
    }

    #[test]
    fn open_decodes_entries_and_continues_sequence() {
        let medium = MemoryBackend::new();
        {
            let wal = WriteAheadLog::create(Box::new(medium.clone())).unwrap();
            wal.append(WalRecord::Removed { id: InstanceId(1) })
                .unwrap();
            wal.append_txn(|seq| (WalRecord::Txn { record: txn(seq) }, txn(seq)))
                .unwrap();
        }
        let (wal, entries, torn) = WriteAheadLog::open(Box::new(medium)).unwrap();
        assert_eq!(torn, 0);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 1);
        assert!(matches!(entries[1].record, WalRecord::Txn { .. }));
        assert_eq!(wal.position(), 2);
        assert_eq!(
            wal.append(WalRecord::Removed { id: InstanceId(9) })
                .unwrap(),
            3
        );
    }

    #[test]
    fn create_refuses_nonempty_backend() {
        let medium = MemoryBackend::new();
        medium.append_line("{\"seq\":1}").unwrap();
        let err = WriteAheadLog::create(Box::new(medium)).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));
    }

    #[test]
    fn interior_corruption_is_hard_error() {
        let medium = MemoryBackend::new();
        {
            let wal = WriteAheadLog::create(Box::new(medium.clone())).unwrap();
            wal.append(WalRecord::Removed { id: InstanceId(1) })
                .unwrap();
            wal.append(WalRecord::Removed { id: InstanceId(2) })
                .unwrap();
        }
        // Damage the FIRST record (complete line, undecodable content).
        let raw = medium.raw();
        let text = String::from_utf8(raw).unwrap();
        let corrupted = text.replacen("\"seq\":1", "\"seq\":garbage", 1);
        medium.set_raw(corrupted.as_bytes());
        let err = WriteAheadLog::open(Box::new(medium)).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn torn_tail_is_reported_and_dropped() {
        let medium = MemoryBackend::new();
        {
            let wal = WriteAheadLog::create(Box::new(medium.clone())).unwrap();
            wal.append(WalRecord::Removed { id: InstanceId(1) })
                .unwrap();
            wal.append(WalRecord::Removed { id: InstanceId(2) })
                .unwrap();
        }
        let raw = medium.raw();
        medium.set_raw(&raw[..raw.len() - 6]);
        let (wal, entries, torn) = WriteAheadLog::open(Box::new(medium)).unwrap();
        assert_eq!(entries.len(), 1, "only the complete record survives");
        assert!(torn > 0);
        assert_eq!(wal.position(), 1);
    }

    #[test]
    fn truncate_keeps_position_and_view() {
        let wal = WriteAheadLog::create(Box::new(MemoryBackend::new())).unwrap();
        wal.append_txn(|seq| (WalRecord::Txn { record: txn(seq) }, txn(seq)))
            .unwrap();
        let pos = wal.position();
        wal.truncate().unwrap();
        assert_eq!(wal.position(), pos, "position survives the checkpoint");
        assert_eq!(wal.txn_len(), 1, "audit view survives the checkpoint");
        assert_eq!(
            wal.append(WalRecord::Removed { id: InstanceId(3) })
                .unwrap(),
            pos + 1,
            "sequence continues across the checkpoint"
        );
    }

    #[test]
    fn replayed_txns_dedupe_against_seed() {
        let wal = WriteAheadLog::disabled();
        wal.seed_txns(vec![txn(2), txn(1)]);
        assert_eq!(wal.txn_records()[0].seq, 1, "seed is sorted");
        wal.note_replayed_txn(txn(2)); // covered by seed → ignored
        wal.note_replayed_txn(txn(3));
        assert_eq!(wal.txn_len(), 3);
    }
}
