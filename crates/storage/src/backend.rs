//! Pluggable storage backends for the write-ahead log.
//!
//! A [`StorageBackend`] is a minimal append-only line store: the WAL
//! encodes one record per line (JSONL) and relies on the backend for
//! nothing but ordered durable appends and a full read-back with
//! **torn-tail repair**. Two implementations ship:
//!
//! * [`MemoryBackend`] — a shared in-memory buffer. Infallible, cheap,
//!   clonable (clones share the medium, which is how tests simulate a
//!   process restart against the "same disk"). Used by tests and benches.
//! * [`FileBackend`] — an embedded durable file with a configurable
//!   [`SyncPolicy`] (fsync every append, every N appends, or never).
//!
//! # Torn tails vs. interior corruption
//!
//! A crash (`kill -9`, power loss) during an append leaves a **prefix**
//! of the final line on the medium — every append writes `line + '\n'`
//! in one call, so an incomplete append is exactly a final chunk without
//! a terminating newline. [`StorageBackend::read_log`] repairs this by
//! truncating the medium back to the last complete line and reporting how
//! many bytes were dropped. A *complete* line that does not decode, by
//! contrast, cannot be produced by a torn append — it means the medium
//! was damaged in place, and the WAL layer treats it as a hard error.

use crate::error::StorageError;
use crate::ordered::{classes, OrderedMutex};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// When a [`FileBackend`] flushes appended records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every append — maximum durability, every committed
    /// record survives a crash.
    Always,
    /// `fsync` every `n` appends — bounded loss window, amortised cost.
    Interval(u64),
    /// Never `fsync` explicitly; the OS flushes on its own schedule.
    /// Survives process crashes (the page cache persists), not power
    /// loss.
    Never,
}

/// The raw content of a backend's log after torn-tail repair.
#[derive(Debug, Clone, Default)]
pub struct RawLog {
    /// The complete lines, in append order, without terminators.
    pub lines: Vec<String>,
    /// Bytes of a torn (incomplete) final append that were truncated
    /// away. `0` means the log ended cleanly.
    pub torn_tail_bytes: usize,
}

/// An append-only line store the write-ahead log runs on.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Appends one line (the terminator is the backend's job) and applies
    /// the backend's durability policy.
    fn append_line(&self, line: &str) -> Result<(), StorageError>;

    /// Forces everything appended so far to stable storage.
    fn sync(&self) -> Result<(), StorageError>;

    /// Reads the whole log back, **repairing a torn tail in place**: an
    /// incomplete final append is truncated off the medium (so later
    /// appends cannot concatenate onto the torn fragment) and reported
    /// in [`RawLog::torn_tail_bytes`].
    fn read_log(&self) -> Result<RawLog, StorageError>;

    /// Truncates the log to empty (checkpointing: a fresh snapshot has
    /// superseded the recorded tail).
    fn reset(&self) -> Result<(), StorageError>;

    /// A short name for reports and monitor events (`"memory"`,
    /// `"file"`).
    fn kind(&self) -> &'static str;

    /// Whether appends can actually fail. Infallible backends let the
    /// engine skip defensive pre-images on the hot path.
    fn infallible(&self) -> bool {
        false
    }
}

/// Splits a raw byte buffer into complete lines plus the torn tail.
fn split_lines(bytes: &[u8]) -> (Vec<String>, usize) {
    let complete_up_to = match bytes.iter().rposition(|b| *b == b'\n') {
        Some(pos) => pos + 1,
        None => 0,
    };
    let torn = bytes.len() - complete_up_to;
    let lines = bytes[..complete_up_to]
        .split(|b| *b == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| String::from_utf8_lossy(l).into_owned())
        .collect();
    (lines, torn)
}

// ---------------------------------------------------------------------
// MemoryBackend
// ---------------------------------------------------------------------

/// An in-memory backend: a shared byte buffer behind an `Arc`.
///
/// Clones share the buffer, so `backend.clone()` models "reopen the same
/// medium after a restart" — the crash-recovery tests drive both engines
/// against one buffer. [`MemoryBackend::set_raw`] / [`MemoryBackend::raw`]
/// expose the medium for fault injection (truncating mid-record simulates
/// a torn append).
#[derive(Debug, Clone)]
pub struct MemoryBackend {
    buf: std::sync::Arc<OrderedMutex<Vec<u8>>>,
}

impl Default for MemoryBackend {
    fn default() -> Self {
        Self {
            buf: std::sync::Arc::new(OrderedMutex::new(&classes::WAL_MEMORY_BUF, Vec::new())),
        }
    }
}

impl MemoryBackend {
    /// An empty in-memory medium.
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw bytes currently on the medium (fault-injection hook).
    pub fn raw(&self) -> Vec<u8> {
        self.buf.lock().clone()
    }

    /// Replaces the raw bytes on the medium (fault-injection hook: a
    /// `kill -9` mid-append is `set_raw(&raw[..n])`).
    pub fn set_raw(&self, bytes: &[u8]) {
        *self.buf.lock() = bytes.to_vec();
    }
}

impl StorageBackend for MemoryBackend {
    fn append_line(&self, line: &str) -> Result<(), StorageError> {
        let mut buf = self.buf.lock();
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        Ok(())
    }

    fn sync(&self) -> Result<(), StorageError> {
        Ok(())
    }

    fn read_log(&self) -> Result<RawLog, StorageError> {
        let mut buf = self.buf.lock();
        let (lines, torn) = split_lines(&buf);
        if torn > 0 {
            let keep = buf.len() - torn;
            buf.truncate(keep);
        }
        Ok(RawLog {
            lines,
            torn_tail_bytes: torn,
        })
    }

    fn reset(&self) -> Result<(), StorageError> {
        self.buf.lock().clear();
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "memory"
    }

    fn infallible(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// FileBackend
// ---------------------------------------------------------------------

/// State behind the file backend's mutex: the lazily opened append
/// handle (shared `Arc` so fsync can run outside this lock), the
/// unsynced-append counter for [`SyncPolicy::Interval`], the count
/// of completed appends (the group-commit cover mark), and the
/// partial-write bookkeeping: `len` is the file length after the last
/// *successful* append, `dirty` marks that a failed `write_all` may have
/// left partial bytes past `len`. The next append truncates back to
/// `len` first — otherwise a retried record would concatenate onto the
/// partial fragment into one complete-but-undecodable line, which the
/// WAL layer must treat as interior corruption rather than a torn tail.
#[derive(Debug, Default)]
struct FileState {
    file: Option<std::sync::Arc<File>>,
    unsynced: u64,
    written: u64,
    len: u64,
    dirty: bool,
}

/// An embedded durable file backend (JSONL, append-only).
///
/// The file is created on first append; reads open their own handle, so
/// a backend can be constructed against a path that does not exist yet
/// (recovery of a fresh system finds an empty log).
///
/// # Group commit
///
/// Under [`SyncPolicy::Always`] the fsync runs **outside** the write
/// lock: an appender notes how many appends had completed when it wrote,
/// and before issuing its own fsync checks whether a concurrent
/// appender's fsync already covered that mark. Under concurrent load one
/// physical fsync commits a whole batch of appends — each caller still
/// returns only once *its* record is durable, so the policy's guarantee
/// is unchanged while the fsync cost is amortised across the group.
#[derive(Debug)]
pub struct FileBackend {
    path: PathBuf,
    policy: SyncPolicy,
    state: OrderedMutex<FileState>,
    /// Appends covered by a completed fsync (group-commit bookkeeping,
    /// compared against `FileState::written`). Separate lock so a slow
    /// fsync never blocks concurrent writes.
    synced: OrderedMutex<u64>,
}

impl FileBackend {
    /// A file backend writing to `path` with [`SyncPolicy::Always`].
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self::with_policy(path, SyncPolicy::Always)
    }

    /// A file backend with an explicit fsync policy.
    pub fn with_policy(path: impl Into<PathBuf>, policy: SyncPolicy) -> Self {
        Self {
            path: path.into(),
            policy,
            state: OrderedMutex::new(&classes::WAL_FILE_STATE, FileState::default()),
            synced: OrderedMutex::new(&classes::WAL_FILE_SYNCED, 0),
        }
    }

    /// `n` file backends for a segmented WAL: `base` with a `.segNN`
    /// suffix per segment, all sharing one fsync policy. Returned boxed,
    /// ready for `WriteAheadLog::create_segmented` / `open_segmented` and
    /// the engine's segmented constructors. Pass the same base and count
    /// to recovery so every segment is found.
    pub fn segments(
        base: impl Into<PathBuf>,
        n: usize,
        policy: SyncPolicy,
    ) -> Vec<Box<dyn StorageBackend>> {
        let base = base.into();
        (0..n.max(1))
            .map(|i| {
                let mut path = base.clone().into_os_string();
                path.push(format!(".seg{i:02}"));
                Box::new(FileBackend::with_policy(PathBuf::from(path), policy))
                    as Box<dyn StorageBackend>
            })
            .collect()
    }

    /// The path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The backend's fsync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    fn open_append(state: &mut FileState, path: &Path) -> Result<(), StorageError> {
        if state.file.is_none() {
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| StorageError::io("open", &e))?;
            state.len = f
                .metadata()
                .map_err(|e| StorageError::io("stat", &e))?
                .len();
            state.dirty = false;
            state.file = Some(std::sync::Arc::new(f));
        }
        Ok(())
    }
}

impl StorageBackend for FileBackend {
    fn append_line(&self, line: &str) -> Result<(), StorageError> {
        let (file, my_mark) = {
            let mut state = self.state.lock();
            Self::open_append(&mut state, &self.path)?;
            let file = state
                .file
                .clone()
                .expect("invariant: open_append populated the handle just above");
            if state.dirty {
                // A previous append failed mid-write; cut any partial
                // bytes off before writing so the new record starts on a
                // record boundary (O_APPEND writes land at the new end).
                file.set_len(state.len)
                    .map_err(|e| StorageError::io("truncate", &e))?;
                state.dirty = false;
            }
            // One write call for line + terminator: a crash mid-append
            // leaves a prefix, which read_log identifies by the missing
            // newline.
            let mut bytes = Vec::with_capacity(line.len() + 1);
            bytes.extend_from_slice(line.as_bytes());
            bytes.push(b'\n');
            if let Err(e) = (&*file).write_all(&bytes) {
                state.dirty = true;
                return Err(StorageError::io("append", &e));
            }
            state.len += bytes.len() as u64;
            state.written += 1;
            match self.policy {
                SyncPolicy::Always => (file, state.written),
                SyncPolicy::Interval(n) => {
                    state.unsynced += 1;
                    if state.unsynced >= n.max(1) {
                        file.sync_data()
                            .map_err(|e| StorageError::io("fsync", &e))?;
                        state.unsynced = 0;
                    }
                    return Ok(());
                }
                SyncPolicy::Never => return Ok(()),
            }
        };
        // Group commit (Always): fsync outside the write lock. If a
        // concurrent appender's fsync started after our write completed,
        // its completion already made our record durable — skip the
        // syscall entirely.
        let mut synced = self.synced.lock();
        if *synced >= my_mark {
            return Ok(());
        }
        // Everything written before the fsync starts is covered by it.
        let cover = self.state.lock().written;
        file.sync_data()
            .map_err(|e| StorageError::io("fsync", &e))?;
        *synced = (*synced).max(cover);
        Ok(())
    }

    fn sync(&self) -> Result<(), StorageError> {
        let (file, cover) = {
            let mut state = self.state.lock();
            state.unsynced = 0;
            match state.file.clone() {
                Some(f) => {
                    let cover = state.written;
                    (f, cover)
                }
                None => return Ok(()),
            }
        };
        file.sync_data()
            .map_err(|e| StorageError::io("fsync", &e))?;
        let mut synced = self.synced.lock();
        *synced = (*synced).max(cover);
        Ok(())
    }

    fn read_log(&self) -> Result<RawLog, StorageError> {
        let mut state = self.state.lock();
        let mut bytes = Vec::new();
        match File::open(&self.path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)
                    .map_err(|e| StorageError::io("read", &e))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(RawLog::default());
            }
            Err(e) => return Err(StorageError::io("open", &e)),
        }
        let (lines, torn) = split_lines(&bytes);
        if torn > 0 {
            // Repair: drop the torn fragment from the medium so later
            // appends start on a record boundary.
            let keep = (bytes.len() - torn) as u64;
            OpenOptions::new()
                .write(true)
                .open(&self.path)
                .and_then(|f| f.set_len(keep))
                .map_err(|e| StorageError::io("truncate", &e))?;
        }
        // Resync the partial-write bookkeeping with what is actually on
        // the medium (repair above, or fault injection outside this
        // handle).
        if state.file.is_some() {
            state.len = (bytes.len() - torn) as u64;
            state.dirty = false;
        }
        drop(state);
        Ok(RawLog {
            lines,
            torn_tail_bytes: torn,
        })
    }

    fn reset(&self) -> Result<(), StorageError> {
        // synced before state, matching the group-commit path in
        // append_line — machine-checked, see docs/LOCK_ORDER.md.
        let mut synced = self.synced.lock();
        let mut state = self.state.lock();
        state.file = None;
        state.unsynced = 0;
        state.written = 0;
        state.len = 0;
        state.dirty = false;
        *synced = 0;
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StorageError::io("reset", &e)),
        }
    }

    fn kind(&self) -> &'static str {
        "file"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A unique temp path per test invocation (no tempfile crate in the
    /// offline workspace).
    pub(crate) fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("adept-wal-{}-{tag}-{n}.jsonl", std::process::id()))
    }

    #[test]
    fn memory_roundtrip_and_reset() {
        let b = MemoryBackend::new();
        b.append_line("one").unwrap();
        b.append_line("two").unwrap();
        let log = b.read_log().unwrap();
        assert_eq!(log.lines, vec!["one", "two"]);
        assert_eq!(log.torn_tail_bytes, 0);
        assert!(b.infallible());
        b.reset().unwrap();
        assert!(b.read_log().unwrap().lines.is_empty());
    }

    #[test]
    fn memory_clone_shares_medium() {
        let a = MemoryBackend::new();
        a.append_line("shared").unwrap();
        let b = a.clone();
        assert_eq!(b.read_log().unwrap().lines, vec!["shared"]);
    }

    #[test]
    fn memory_torn_tail_is_truncated() {
        let b = MemoryBackend::new();
        b.append_line("complete").unwrap();
        b.append_line("doomed").unwrap();
        let raw = b.raw();
        // Chop mid-way through the second record (keep its first 3 bytes).
        b.set_raw(&raw[..raw.len() - 4]);
        let log = b.read_log().unwrap();
        assert_eq!(log.lines, vec!["complete"]);
        assert_eq!(log.torn_tail_bytes, 3);
        // The medium was repaired: appending continues cleanly.
        b.append_line("after").unwrap();
        let log = b.read_log().unwrap();
        assert_eq!(log.lines, vec!["complete", "after"]);
        assert_eq!(log.torn_tail_bytes, 0);
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let path = temp_path("roundtrip");
        let b = FileBackend::new(&path);
        assert!(
            b.read_log().unwrap().lines.is_empty(),
            "missing file = empty"
        );
        b.append_line("alpha").unwrap();
        b.append_line("beta").unwrap();
        b.sync().unwrap();
        let log = b.read_log().unwrap();
        assert_eq!(log.lines, vec!["alpha", "beta"]);
        assert_eq!(b.kind(), "file");
        assert!(!b.infallible());
        b.reset().unwrap();
        assert!(b.read_log().unwrap().lines.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_torn_tail_repaired_on_disk() {
        let path = temp_path("torn");
        let b = FileBackend::with_policy(&path, SyncPolicy::Never);
        b.append_line("keep me").unwrap();
        b.append_line("torn away").unwrap();
        b.sync().unwrap();
        // Simulate kill -9 mid-append: truncate the file mid-record.
        let bytes = std::fs::read(&path).unwrap();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(bytes.len() as u64 - 5).unwrap();
        drop(f);
        let log = b.read_log().unwrap();
        assert_eq!(log.lines, vec!["keep me"]);
        assert!(log.torn_tail_bytes > 0);
        // Physically repaired: the file now ends at the last boundary.
        let repaired = std::fs::read(&path).unwrap();
        assert!(repaired.ends_with(b"keep me\n"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interval_policy_counts_appends() {
        let path = temp_path("interval");
        let b = FileBackend::with_policy(&path, SyncPolicy::Interval(3));
        for i in 0..7 {
            b.append_line(&format!("r{i}")).unwrap();
        }
        assert_eq!(b.read_log().unwrap().lines.len(), 7);
        assert_eq!(b.policy(), SyncPolicy::Interval(3));
        let _ = std::fs::remove_file(&path);
    }
}
