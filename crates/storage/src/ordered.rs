//! Ordered lock wrappers — the machine-checked lock-discipline layer.
//!
//! Every lock in `adept-storage` and `adept-engine` is an
//! [`OrderedRwLock`] or [`OrderedMutex`] carrying a static [`LockClass`]
//! with a rank in the global acquisition order (the authoritative DAG
//! lives in `docs/LOCK_ORDER.md`). Under
//! `cfg(any(debug_assertions, feature = "lock-order-check"))` a
//! thread-local held-lock stack validates every acquisition:
//!
//! * **Rank ordering** — a thread may only acquire a class whose rank is
//!   strictly greater than every rank it already holds. Violations panic
//!   with *both* acquisition sites.
//! * **One shard per table** — a second lock of the *same* class is
//!   refused, except through the explicit ascending sweep API
//!   ([`OrderedRwLock::read_sweep`], used by coherent all-shards passes
//!   such as the worklist delta scan), which requires strictly increasing
//!   shard indices.
//!
//! Independently of the per-thread validation, a process-global recorder
//! accumulates every *observed* class-pair edge (with one example
//! acquisition-site pair each). [`check`] runs a DFS over the observed
//! graph and reports any cycle; [`dump`] renders the class table and the
//! observed edges — the generator for `docs/LOCK_ORDER.md`.
//!
//! In release builds without the `lock-order-check` feature the wrappers
//! compile to transparent newtypes over the `parking_lot` lock types:
//! no class storage, no thread-local, no drop glue.

// The one module allowed to own raw lock types (see clippy.toml).
#![allow(clippy::disallowed_types)]

use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A lock class: a name for diagnostics and a rank in the global
/// acquisition order. Classes are `'static` and compared by identity;
/// every rank is unique to its class (two classes of equal rank would
/// make the order ambiguous, so the checker treats that as a violation
/// too).
#[derive(Debug)]
pub struct LockClass {
    /// Diagnostic name, also the node label in the dumped DAG.
    pub name: &'static str,
    /// Position in the global acquisition order; lower ranks are
    /// acquired first.
    pub rank: u16,
}

impl LockClass {
    /// A new class. Declare these as `static` items in [`classes`].
    pub const fn new(name: &'static str, rank: u16) -> Self {
        Self { name, rank }
    }
}

/// The declared lock classes — the single authoritative acquisition
/// order, lowest rank first. `docs/LOCK_ORDER.md` renders this table
/// with the rationale for each edge.
pub mod classes {
    use super::LockClass;

    /// Engine execution-context cache shards (`ShardedMap`). Consulted
    /// before or after store access, never inside it.
    pub static ENGINE_CTX_CACHE: LockClass = LockClass::new("engine.ctx-cache", 10);
    /// Engine worklist-failure dedupe shards (`ShardedMap`).
    pub static ENGINE_WL_FAILURES: LockClass = LockClass::new("engine.wl-failures", 12);
    /// Instance-store shards. The root of every mutation path: commands,
    /// migrations and journaled installs all start here.
    pub static STORE_SHARD: LockClass = LockClass::new("store.shard", 20);
    /// Worklist-index shards. The command path draws its install epoch
    /// *inside* the store critical section (store shard → index shard).
    pub static WORKLIST_INDEX: LockClass = LockClass::new("worklist.index-shard", 30);
    /// Schema-repository type shards. `install_type` and evolutions
    /// nest them above the deployed shards and the WAL.
    pub static REPO_TYPES: LockClass = LockClass::new("repo.types-shard", 40);
    /// Schema-repository deployed-version shards. Read while a store
    /// shard is held (`schema_of`) and while a types shard is held
    /// (`install_type`).
    pub static REPO_DEPLOYED: LockClass = LockClass::new("repo.deployed-shard", 42);
    /// Schema-repository compiled-arena cache shards. Populated lazily
    /// from deployments (a miss releases the shard, reads the deployed
    /// shard, then re-acquires to insert) and evicted under the types +
    /// deployed write locks when a version is redeployed or rolled back.
    pub static REPO_COMPILED: LockClass = LockClass::new("repo.compiled-shard", 44);
    /// Monitor event-log ring segments. Recorded outside every other
    /// critical section.
    pub static MONITOR_SEGMENT: LockClass = LockClass::new("monitor.segment", 50);
    /// The WAL transaction view. `append_txn` holds it across the
    /// segment append so transaction numbering matches append order.
    pub static WAL_VIEW: LockClass = LockClass::new("wal.txn-view", 60);
    /// `FileBackend` fsync watermark. Group commit holds it while
    /// re-reading the written watermark: synced → state.
    pub static WAL_FILE_SYNCED: LockClass = LockClass::new("wal.file-synced", 70);
    /// `FileBackend` file state (handle + written watermark).
    pub static WAL_FILE_STATE: LockClass = LockClass::new("wal.file-state", 72);
    /// `MemoryBackend` buffer.
    pub static WAL_MEMORY_BUF: LockClass = LockClass::new("wal.memory-buf", 74);
    /// The WAL contiguous-durability watermark, advanced after the
    /// segment append returns.
    pub static WAL_DURABLE: LockClass = LockClass::new("wal.durable", 80);
    /// Test-support locks (fault-injection backends and similar). Ranked
    /// above every production class so instrumentation can be driven
    /// from inside any append path.
    pub static TEST_SUPPORT: LockClass = LockClass::new("test.support", 250);

    /// Every declared class, in rank order.
    pub fn all() -> [&'static LockClass; 14] {
        [
            &ENGINE_CTX_CACHE,
            &ENGINE_WL_FAILURES,
            &STORE_SHARD,
            &WORKLIST_INDEX,
            &REPO_TYPES,
            &REPO_DEPLOYED,
            &REPO_COMPILED,
            &MONITOR_SEGMENT,
            &WAL_VIEW,
            &WAL_FILE_SYNCED,
            &WAL_FILE_STATE,
            &WAL_MEMORY_BUF,
            &WAL_DURABLE,
            &TEST_SUPPORT,
        ]
    }
}

/// The active checker: thread-local held-lock stack + process-global
/// observed-edge recorder.
#[cfg(any(debug_assertions, feature = "lock-order-check"))]
mod chk {
    use super::LockClass;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex as StdMutex, OnceLock};

    struct Held {
        class: &'static LockClass,
        index: Option<u32>,
        site: &'static Location<'static>,
        token: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

    /// Observed class-pair edges with one example site pair each:
    /// `(held class, acquired class) → (held site, acquiring site)`.
    type Edges = BTreeMap<(&'static str, &'static str), (String, String)>;

    fn graph() -> &'static StdMutex<Edges> {
        static GRAPH: OnceLock<StdMutex<Edges>> = OnceLock::new();
        GRAPH.get_or_init(|| StdMutex::new(BTreeMap::new()))
    }

    fn edges() -> Edges {
        graph()
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone()
    }

    /// Pops its held-stack entry when the owning guard drops. Guards may
    /// drop out of LIFO order (sweeps collect guards into a `Vec`), so
    /// removal is by token, not by popping the top.
    pub struct Token(u64);

    impl Drop for Token {
        fn drop(&mut self) {
            let token = self.0;
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|e| e.token == token) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Validates one acquisition against the held-lock stack, records
    /// the observed edges, and pushes the new entry. Panics (with both
    /// acquisition sites) on a rank inversion or an undeclared
    /// same-class double acquisition.
    #[track_caller]
    pub fn acquire(class: &'static LockClass, index: Option<u32>, sweep: bool) -> Token {
        let site = Location::caller();
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            for e in held.iter() {
                let same = std::ptr::eq(e.class, class);
                if e.class.rank > class.rank || (e.class.rank == class.rank && !same) {
                    panic!(
                        "lock-order violation: acquiring `{}` (rank {}) at {site} \
                         while holding `{}` (rank {}) acquired at {} — \
                         classes must be acquired in ascending rank order \
                         (see docs/LOCK_ORDER.md)",
                        class.name, class.rank, e.class.name, e.class.rank, e.site,
                    );
                }
                if same {
                    let ascending =
                        sweep && matches!((e.index, index), (Some(p), Some(n)) if n > p);
                    if !ascending {
                        panic!(
                            "one-shard-per-table violation: acquiring a second `{}` lock \
                             at {site} while one is already held (acquired at {}) — \
                             cross-shard passes must use the ascending sweep API \
                             (see docs/LOCK_ORDER.md)",
                            class.name, e.site,
                        );
                    }
                }
            }
            {
                let mut graph = graph().lock().unwrap_or_else(|poison| poison.into_inner());
                for e in held.iter() {
                    if !std::ptr::eq(e.class, class) {
                        graph
                            .entry((e.class.name, class.name))
                            .or_insert_with(|| (e.site.to_string(), site.to_string()));
                    }
                }
            }
            let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
            held.push(Held {
                class,
                index,
                site,
                token,
            });
            Token(token)
        })
    }

    /// DFS cycle detection over the observed edge graph. Recursion depth
    /// is bounded by the number of declared classes.
    pub fn check() -> Result<(), String> {
        // 0 / absent = unvisited, 1 = on the current DFS path, 2 = done.
        fn visit<'a>(
            node: &'a str,
            adj: &BTreeMap<&'a str, Vec<&'a str>>,
            color: &mut BTreeMap<&'a str, u8>,
            path: &mut Vec<&'a str>,
        ) -> Option<Vec<&'a str>> {
            color.insert(node, 1);
            path.push(node);
            for &succ in adj.get(node).into_iter().flatten() {
                match color.get(succ).copied().unwrap_or(0) {
                    1 => {
                        let mut cycle: Vec<&str> =
                            path.iter().copied().skip_while(|&n| n != succ).collect();
                        cycle.push(succ);
                        return Some(cycle);
                    }
                    0 => {
                        if let Some(cycle) = visit(succ, adj, color, path) {
                            return Some(cycle);
                        }
                    }
                    _ => {}
                }
            }
            path.pop();
            color.insert(node, 2);
            None
        }

        let edges = edges();
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (from, to) in edges.keys() {
            adj.entry(from).or_default().push(to);
            adj.entry(to).or_default();
        }
        let nodes: Vec<&str> = adj.keys().copied().collect();
        let mut color: BTreeMap<&str, u8> = BTreeMap::new();
        for start in nodes {
            if color.get(start).copied().unwrap_or(0) != 0 {
                continue;
            }
            if let Some(cycle) = visit(start, &adj, &mut color, &mut Vec::new()) {
                let sites = cycle
                    .windows(2)
                    .filter_map(|pair| {
                        let (held, acq) = edges.get(&(pair[0], pair[1]))?;
                        Some(format!(
                            "  {} → {}: held at {held}, acquired at {acq}",
                            pair[0], pair[1]
                        ))
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
                return Err(format!(
                    "lock acquisition cycle observed: {}\n{sites}",
                    cycle.join(" → "),
                ));
            }
        }
        Ok(())
    }

    /// The class table plus every observed edge, in deterministic order —
    /// the raw material for `docs/LOCK_ORDER.md`.
    pub fn dump() -> String {
        let mut out = String::from("lock classes (rank order):\n");
        for class in super::classes::all() {
            out.push_str(&format!("  {:3}  {}\n", class.rank, class.name));
        }
        out.push_str("observed acquisition edges (held → acquired):\n");
        for ((from, to), (site_from, site_to)) in edges() {
            out.push_str(&format!(
                "  {from} → {to}\n    held at      {site_from}\n    acquired at  {site_to}\n",
            ));
        }
        out
    }
}

/// No-op checker for release builds without `lock-order-check`: the
/// token is a zero-sized type with no drop glue, so guards compile down
/// to the raw `parking_lot` guards.
#[cfg(not(any(debug_assertions, feature = "lock-order-check")))]
mod chk {
    pub struct Token;

    pub fn check() -> Result<(), String> {
        Ok(())
    }

    pub fn dump() -> String {
        String::from(
            "lock-order checking is compiled out \
             (release build without the `lock-order-check` feature)\n",
        )
    }
}

/// Verifies the process-global observed acquisition graph is acyclic.
/// Call at the end of a test (or any quiesced point); with checking
/// compiled out this is trivially `Ok`.
pub fn check() -> Result<(), String> {
    chk::check()
}

/// Renders the declared class table and every observed acquisition edge
/// (with example sites) — the generator for `docs/LOCK_ORDER.md`.
pub fn dump() -> String {
    chk::dump()
}

/// An [`RwLock`] carrying a [`LockClass`], validated against the global
/// acquisition order on every acquisition when checking is compiled in.
pub struct OrderedRwLock<T> {
    #[cfg(any(debug_assertions, feature = "lock-order-check"))]
    class: &'static LockClass,
    #[cfg(any(debug_assertions, feature = "lock-order-check"))]
    index: Option<u32>,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// A new lock of the given class.
    pub fn new(class: &'static LockClass, value: T) -> Self {
        Self::build(class, None, value)
    }

    /// A new lock of the given class carrying a shard index — required
    /// for participation in ascending sweeps ([`OrderedRwLock::read_sweep`]).
    pub fn with_index(class: &'static LockClass, index: u32, value: T) -> Self {
        Self::build(class, Some(index), value)
    }

    fn build(class: &'static LockClass, index: Option<u32>, value: T) -> Self {
        #[cfg(not(any(debug_assertions, feature = "lock-order-check")))]
        let _ = (class, index);
        Self {
            #[cfg(any(debug_assertions, feature = "lock-order-check"))]
            class,
            #[cfg(any(debug_assertions, feature = "lock-order-check"))]
            index,
            inner: RwLock::new(value),
        }
    }

    #[cfg(any(debug_assertions, feature = "lock-order-check"))]
    #[track_caller]
    fn acquire(&self, sweep: bool) -> chk::Token {
        chk::acquire(self.class, self.index, sweep)
    }

    #[cfg(not(any(debug_assertions, feature = "lock-order-check")))]
    #[inline(always)]
    fn acquire(&self, _sweep: bool) -> chk::Token {
        chk::Token
    }

    /// Shared access. Checked against the held-lock stack.
    #[track_caller]
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        OrderedRwLockReadGuard {
            _token: self.acquire(false),
            inner: self.inner.read(),
        }
    }

    /// Shared access as part of an **ascending cross-shard sweep**: the
    /// one sanctioned way to hold several locks of the same class, used
    /// by coherent all-shards passes. The lock must carry an index
    /// ([`OrderedRwLock::with_index`]) strictly greater than every
    /// same-class index already held.
    #[track_caller]
    pub fn read_sweep(&self) -> OrderedRwLockReadGuard<'_, T> {
        OrderedRwLockReadGuard {
            _token: self.acquire(true),
            inner: self.inner.read(),
        }
    }

    /// Exclusive access. Checked against the held-lock stack.
    #[track_caller]
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        OrderedRwLockWriteGuard {
            _token: self.acquire(false),
            inner: self.inner.write(),
        }
    }

    /// Consumes the lock, returning the value (no locking, no checking).
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Exclusive access through `&mut` (no locking, no checking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

/// Shared guard of an [`OrderedRwLock`]; pops its held-stack entry on
/// drop when checking is compiled in.
pub struct OrderedRwLockReadGuard<'a, T> {
    _token: chk::Token,
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T> Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard of an [`OrderedRwLock`]; pops its held-stack entry on
/// drop when checking is compiled in.
pub struct OrderedRwLockWriteGuard<'a, T> {
    _token: chk::Token,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A [`Mutex`] carrying a [`LockClass`], validated against the global
/// acquisition order on every acquisition when checking is compiled in.
pub struct OrderedMutex<T> {
    #[cfg(any(debug_assertions, feature = "lock-order-check"))]
    class: &'static LockClass,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// A new mutex of the given class.
    pub fn new(class: &'static LockClass, value: T) -> Self {
        #[cfg(not(any(debug_assertions, feature = "lock-order-check")))]
        let _ = class;
        Self {
            #[cfg(any(debug_assertions, feature = "lock-order-check"))]
            class,
            inner: Mutex::new(value),
        }
    }

    #[cfg(any(debug_assertions, feature = "lock-order-check"))]
    #[track_caller]
    fn acquire(&self) -> chk::Token {
        chk::acquire(self.class, None, false)
    }

    #[cfg(not(any(debug_assertions, feature = "lock-order-check")))]
    #[inline(always)]
    fn acquire(&self) -> chk::Token {
        chk::Token
    }

    /// Exclusive access. Checked against the held-lock stack.
    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        OrderedMutexGuard {
            _token: self.acquire(),
            inner: self.inner.lock(),
        }
    }

    /// Consumes the mutex, returning the value (no locking, no checking).
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Exclusive access through `&mut` (no locking, no checking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

/// Guard of an [`OrderedMutex`]; pops its held-stack entry on drop when
/// checking is compiled in.
pub struct OrderedMutexGuard<'a, T> {
    _token: chk::Token,
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The unit tests here only exercise patterns that are LEGAL under
    // the checker (the violation panics are covered by the dedicated
    // `lock_discipline` integration suite, where `catch_unwind` noise
    // does not interleave with other unit tests' acquisitions).

    #[test]
    fn ascending_acquisition_is_legal_and_recorded() {
        let a = OrderedRwLock::new(&classes::STORE_SHARD, 1u32);
        let b = OrderedMutex::new(&classes::WAL_DURABLE, 2u32);
        let ga = a.read();
        let gb = b.lock();
        assert_eq!((*ga, *gb), (1, 2));
        drop(gb);
        drop(ga);
        assert!(check().is_ok());
        if cfg!(any(debug_assertions, feature = "lock-order-check")) {
            assert!(
                dump().contains("store.shard → wal.durable"),
                "edge recorded:\n{}",
                dump()
            );
        }
    }

    #[test]
    fn sweep_allows_ascending_same_class() {
        let locks: Vec<_> = (0..4u32)
            .map(|i| OrderedRwLock::with_index(&classes::MONITOR_SEGMENT, i, i))
            .collect();
        let guards: Vec<_> = locks.iter().map(|l| l.read_sweep()).collect();
        assert_eq!(guards.iter().map(|g| **g).sum::<u32>(), 6);
    }

    #[test]
    fn reacquire_after_release_is_legal() {
        let l = OrderedRwLock::new(&classes::STORE_SHARD, 0u32);
        for _ in 0..3 {
            let mut g = l.write();
            *g += 1;
        }
        assert_eq!(*l.read(), 3);
    }

    #[test]
    fn declared_ranks_are_unique_and_ascending() {
        let all = classes::all();
        for pair in all.windows(2) {
            assert!(
                pair[0].rank < pair[1].rank,
                "{} ({}) must rank strictly below {} ({})",
                pair[0].name,
                pair[0].rank,
                pair[1].name,
                pair[1].rank
            );
        }
    }
}
