//! The schema repository: process types and their version chains.

use crate::error::JournaledError;
use crate::error::StorageError;
use crate::ordered::classes;
use crate::shards::Shards;
use adept_core::{ChangeError, ChangeOp, Delta, ProcessType};
use adept_model::{Blocks, CompiledSchema, ProcessSchema, SchemaId};
use adept_state::Execution;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A deployed schema version with its pre-computed block structure, shared
/// by every unbiased instance of that version (the redundant-free side of
/// paper Fig. 2).
#[derive(Debug, Clone)]
pub struct DeployedSchema {
    /// The schema.
    pub schema: Arc<ProcessSchema>,
    /// Its block structure (computed once at deployment).
    pub blocks: Arc<Blocks>,
}

impl DeployedSchema {
    fn new(schema: ProcessSchema) -> Result<Self, ChangeError> {
        let blocks = Blocks::analyze(&schema)
            .map_err(|e| ChangeError::Precondition(format!("block analysis failed: {e}")))?;
        Ok(Self {
            schema: Arc::new(schema),
            blocks: Arc::new(blocks),
        })
    }

    /// An interpreter borrowing this deployment (schema *and* block
    /// structure — nothing is cloned).
    pub fn execution(&self) -> Execution<'_> {
        Execution::with_blocks_ref(&self.schema, &self.blocks)
    }
}

/// Shard count of the repository's type and deployment tables.
const REPO_SHARDS: usize = 16;

/// FNV-1a over the type name — both tables shard on it, so a type's
/// `ProcessType` entry and all its deployed versions co-locate.
fn name_key(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The repository of process types. Thread-safe: migrations read schema
/// versions from many worker threads.
///
/// Both tables are sharded over [`Shards`] by a hash of the type name, so
/// `schema_of` cache misses during mass adaptation of instances of
/// *different* types stop serializing on one global lock — the same
/// discipline the instance store uses. Lock order is machine-checked:
/// the tables carry the `repo.types-shard` / `repo.deployed-shard` /
/// `repo.compiled-shard` classes (installs hold the first two across the
/// double insert so readers never observe a type without its deployment);
/// see `docs/LOCK_ORDER.md` for the authoritative class DAG.
///
/// The `compiled` table caches the [`CompiledSchema`] arena of each
/// committed `(type, version)` — the flat execution core every unbiased
/// instance of that version shares. It fills lazily on first demand
/// ([`SchemaRepository::compiled`]) and is evicted when a redeploy resets
/// a type's version chain; evolutions only append fresh version keys, so
/// they never invalidate an existing arena.
#[derive(Debug)]
pub struct SchemaRepository {
    types: Shards<BTreeMap<String, ProcessType>>,
    deployed: Shards<BTreeMap<(String, u32), DeployedSchema>>,
    compiled: Shards<BTreeMap<(String, u32), Arc<CompiledSchema>>>,
    next_schema_id: AtomicU32,
}

impl Default for SchemaRepository {
    fn default() -> Self {
        Self {
            types: Shards::new(&classes::REPO_TYPES, REPO_SHARDS),
            deployed: Shards::new(&classes::REPO_DEPLOYED, REPO_SHARDS),
            compiled: Shards::new(&classes::REPO_COMPILED, REPO_SHARDS),
            next_schema_id: AtomicU32::new(0),
        }
    }
}

impl SchemaRepository {
    /// An empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploys a new process type (version 1). The schema must verify.
    pub fn deploy(&self, mut schema: ProcessSchema) -> Result<String, ChangeError> {
        let id = self.next_schema_id.fetch_add(1, Ordering::Relaxed) + 1;
        schema.id = SchemaId(id);
        self.deploy_assigned(schema)
    }

    /// Deploys a schema **keeping its embedded id** — the restore/replay
    /// path: a recovered world must end up with the exact schema ids of
    /// the pre-crash one (post-images in the WAL reference them), so the
    /// id counter advances past the recorded id instead of reassigning.
    pub fn deploy_recorded(&self, schema: ProcessSchema) -> Result<String, ChangeError> {
        self.next_schema_id
            .fetch_max(schema.id.0, Ordering::Relaxed);
        self.deploy_assigned(schema)
    }

    fn deploy_assigned(&self, schema: ProcessSchema) -> Result<String, ChangeError> {
        let name = schema.name.clone();
        let pt = ProcessType::new(schema)?;
        let dep = DeployedSchema::new(pt.latest().clone())?;
        self.install_type(name.clone(), pt, dep);
        Ok(name)
    }

    /// Installs a verified type + its V1 deployment atomically: both shard
    /// locks (types → deployed, the documented order) are held across the
    /// double insert, so no reader observes the type without its deployed
    /// schema.
    fn install_type(&self, name: String, pt: ProcessType, dep: DeployedSchema) {
        let k = name_key(&name);
        let mut types = self.types.for_raw(k).write();
        let mut deployed = self.deployed.for_raw(k).write();
        deployed.insert((name.clone(), 1), dep);
        // A redeploy resets the version chain: every cached arena of the
        // old chain is stale. Evicted under the types + deployed write
        // locks (ranks 40, 42 → 44, the documented ascending order), so
        // no reader can re-populate from the outgoing deployment.
        self.compiled
            .for_raw(k)
            .write()
            .retain(|(n, _), _| n != &name);
        types.insert(name, pt);
    }

    /// Deploys a new type with a write-ahead journaling hook: `journal`
    /// runs after the schema has verified and analysed, **before** the
    /// deployment becomes visible. If journaling fails nothing is
    /// installed.
    pub fn deploy_journaled(
        &self,
        mut schema: ProcessSchema,
        journal: impl FnOnce(&ProcessSchema) -> Result<(), StorageError>,
    ) -> Result<String, JournaledError> {
        let id = self.next_schema_id.fetch_add(1, Ordering::Relaxed) + 1;
        schema.id = SchemaId(id);
        let name = schema.name.clone();
        let pt = ProcessType::new(schema)?;
        let dep = DeployedSchema::new(pt.latest().clone())?;
        journal(&dep.schema)?;
        self.install_type(name.clone(), pt, dep);
        Ok(name)
    }

    /// Evolves a type to a new version and returns `(new_version, delta)`.
    pub fn evolve(&self, name: &str, ops: &[ChangeOp]) -> Result<(u32, Delta), ChangeError> {
        let k = name_key(name);
        let mut types = self.types.for_raw(k).write();
        let pt = types
            .get_mut(name)
            .ok_or_else(|| ChangeError::Precondition(format!("unknown process type {name:?}")))?;
        let (v, delta) = pt.evolve(ops)?;
        let dep = DeployedSchema::new(pt.latest().clone())?;
        self.deployed
            .for_raw(k)
            .write()
            .insert((name.to_string(), v), dep);
        Ok((v, delta))
    }

    /// Installs an **already-verified** evolved schema as the next version
    /// of a type (the change-transaction commit path; see
    /// [`adept_core::ProcessType::push_prepared`]). `expected_base` guards
    /// against racing evolutions: if another transaction committed first,
    /// the install is rejected and nothing changes. Returns the new
    /// version number.
    pub fn install_evolution(
        &self,
        name: &str,
        expected_base: u32,
        schema: ProcessSchema,
        delta: Delta,
    ) -> Result<u32, ChangeError> {
        let k = name_key(name);
        let mut types = self.types.for_raw(k).write();
        let pt = types
            .get_mut(name)
            .ok_or_else(|| ChangeError::Precondition(format!("unknown process type {name:?}")))?;
        if pt.version_count() != expected_base {
            return Err(ChangeError::Precondition(format!(
                "concurrent evolution: \"{name}\" is at V{}, transaction began on V{expected_base}",
                pt.version_count()
            )));
        }
        let v = pt.push_prepared(schema, delta)?;
        match DeployedSchema::new(pt.latest().clone()) {
            Ok(dep) => {
                self.deployed
                    .for_raw(k)
                    .write()
                    .insert((name.to_string(), v), dep);
                Ok(v)
            }
            Err(e) => {
                // Keep the install atomic: a schema whose block structure
                // does not analyze must not leave a half-pushed version.
                pt.pop_prepared();
                Err(e)
            }
        }
    }

    /// [`SchemaRepository::install_evolution`] with a write-ahead
    /// journaling hook. `journal` receives the new version number and
    /// runs after the evolution has fully validated (version pushed,
    /// block structure analysed) but while the types shard lock is still
    /// held — i.e. **before** any reader can observe the new version, so
    /// the WAL records evolutions in their visibility order. If
    /// journaling fails the pushed version is rolled back and nothing is
    /// installed.
    pub fn install_evolution_journaled(
        &self,
        name: &str,
        expected_base: u32,
        schema: ProcessSchema,
        delta: Delta,
        journal: impl FnOnce(u32) -> Result<(), StorageError>,
    ) -> Result<u32, JournaledError> {
        let k = name_key(name);
        let mut types = self.types.for_raw(k).write();
        let pt = types
            .get_mut(name)
            .ok_or_else(|| ChangeError::Precondition(format!("unknown process type {name:?}")))?;
        if pt.version_count() != expected_base {
            return Err(ChangeError::Precondition(format!(
                "concurrent evolution: \"{name}\" is at V{}, transaction began on V{expected_base}",
                pt.version_count()
            ))
            .into());
        }
        let v = pt.push_prepared(schema, delta)?;
        let dep = match DeployedSchema::new(pt.latest().clone()) {
            Ok(dep) => dep,
            Err(e) => {
                pt.pop_prepared();
                return Err(e.into());
            }
        };
        if let Err(e) = journal(v) {
            pt.pop_prepared();
            return Err(e.into());
        }
        self.deployed
            .for_raw(k)
            .write()
            .insert((name.to_string(), v), dep);
        Ok(v)
    }

    /// The deployed schema of a specific version.
    pub fn deployed(&self, name: &str, version: u32) -> Option<DeployedSchema> {
        self.deployed
            .for_raw(name_key(name))
            .read()
            .get(&(name.to_string(), version))
            .cloned()
    }

    /// The compiled arena of a deployed `(type, version)` — the shared
    /// immutable execution core for unbiased instances. Compiled on first
    /// demand and cached; `None` when the version is not deployed.
    ///
    /// Lock discipline: a cache miss *releases* the compiled shard before
    /// reading the deployed shard (rank 44 must never be held while
    /// acquiring 42), compiles outside both locks, then re-acquires the
    /// compiled shard to insert. Racing missers may compile twice; the
    /// first insert wins and both return the same arena.
    pub fn compiled(&self, name: &str, version: u32) -> Option<Arc<CompiledSchema>> {
        let k = name_key(name);
        let key = (name.to_string(), version);
        if let Some(c) = self.compiled.for_raw(k).read().get(&key) {
            return Some(Arc::clone(c));
        }
        let dep = self.deployed(name, version)?;
        let arena = Arc::new(CompiledSchema::compile(&dep.schema, &dep.blocks));
        let mut shard = self.compiled.for_raw(k).write();
        Some(Arc::clone(shard.entry(key).or_insert(arena)))
    }

    /// Approximate bytes held by the compiled-arena cache (memory
    /// accounting next to [`SchemaRepository::schema_bytes`]).
    pub fn compiled_bytes(&self) -> usize {
        self.compiled
            .iter()
            .map(|s| s.read().values().map(|c| c.approx_size()).sum::<usize>())
            .sum()
    }

    /// The newest version number of a type.
    pub fn latest_version(&self, name: &str) -> Option<u32> {
        self.types
            .for_raw(name_key(name))
            .read()
            .get(name)
            .map(|t| t.version_count())
    }

    /// The delta transforming `from` into `from + 1`.
    pub fn delta_between(&self, name: &str, from: u32) -> Option<Delta> {
        self.types
            .for_raw(name_key(name))
            .read()
            .get(name)
            .and_then(|t| t.delta_between(from).cloned())
    }

    /// A snapshot of a whole process type (for reports and tests).
    pub fn process_type(&self, name: &str) -> Option<ProcessType> {
        self.types.for_raw(name_key(name)).read().get(name).cloned()
    }

    /// All deployed type names, sorted. Visits shards one at a time
    /// (release before next acquire) like the instance store's whole-store
    /// reads.
    pub fn type_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .types
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }

    /// Total bytes of all deployed schema versions (Fig. 2 accounting:
    /// schemas are stored once, not per instance).
    pub fn schema_bytes(&self) -> usize {
        self.deployed
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .map(|d| d.schema.approx_size())
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_core::NewActivity;
    use adept_model::SchemaBuilder;

    fn schema() -> ProcessSchema {
        let mut b = SchemaBuilder::new("t");
        b.activity("a");
        b.activity("b");
        b.build().unwrap()
    }

    #[test]
    fn deploy_and_evolve() {
        let repo = SchemaRepository::new();
        let name = repo.deploy(schema()).unwrap();
        assert_eq!(repo.latest_version(&name), Some(1));
        let v1 = repo.deployed(&name, 1).unwrap();
        let a = v1.schema.node_by_name("a").unwrap().id;
        let b = v1.schema.node_by_name("b").unwrap().id;
        let (v, delta) = repo
            .evolve(
                &name,
                &[ChangeOp::SerialInsert {
                    activity: NewActivity::named("x"),
                    pred: a,
                    succ: b,
                }],
            )
            .unwrap();
        assert_eq!(v, 2);
        assert_eq!(delta.len(), 1);
        assert_eq!(repo.latest_version(&name), Some(2));
        assert!(repo
            .deployed(&name, 2)
            .unwrap()
            .schema
            .node_by_name("x")
            .is_some());
        assert!(repo.delta_between(&name, 1).is_some());
        assert_eq!(repo.type_names(), vec![name]);
        assert!(repo.schema_bytes() > 0);
    }

    #[test]
    fn compiled_arena_cached_and_evicted() {
        let repo = SchemaRepository::new();
        let name = repo.deploy(schema()).unwrap();
        assert!(repo.compiled(&name, 2).is_none());
        let c1 = repo.compiled(&name, 1).unwrap();
        let c2 = repo.compiled(&name, 1).unwrap();
        assert!(Arc::ptr_eq(&c1, &c2), "cache must return the shared arena");
        assert_eq!(
            c1.node_count(),
            repo.deployed(&name, 1).unwrap().schema.node_count()
        );
        assert!(repo.compiled_bytes() > 0);
        // A redeploy resets the version chain: the old arena is evicted
        // and the next demand compiles from the new deployment.
        repo.deploy(schema()).unwrap();
        let c3 = repo.compiled(&name, 1).unwrap();
        assert!(!Arc::ptr_eq(&c1, &c3), "stale arena survived redeploy");
    }

    #[test]
    fn unknown_type_errors() {
        let repo = SchemaRepository::new();
        assert!(repo.evolve("nope", &[]).is_err());
        assert!(repo.deployed("nope", 1).is_none());
    }

    #[test]
    fn broken_schema_rejected_at_deploy() {
        let mut b = SchemaBuilder::new("bad");
        let d = b.data("x", adept_model::ValueType::Int);
        let r = b.activity("r");
        b.read(r, d); // never written
        let s = b.build().unwrap();
        let repo = SchemaRepository::new();
        assert!(repo.deploy(s).is_err());
    }

    #[test]
    fn names_spread_across_shards_and_compose() {
        let repo = SchemaRepository::new();
        let mut names = Vec::new();
        for i in 0..64 {
            let mut b = SchemaBuilder::new(format!("type-{i}"));
            b.activity("a");
            names.push(repo.deploy(b.build().unwrap()).unwrap());
        }
        names.sort();
        assert_eq!(repo.type_names(), names);
        // Schema ids stay unique under the atomic allocator.
        let mut ids: Vec<u32> = names
            .iter()
            .map(|n| repo.deployed(n, 1).unwrap().schema.id.0)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 64);
    }
}
