//! # adept-storage — hybrid schema/instance storage (paper Fig. 2)
//!
//! *"The implementation of ADEPT2 has raised many challenges, e.g., with
//! respect to storage representation of schema and instance data: Unchanged
//! instances are stored in a redundant-free manner by referencing their
//! original schema and by capturing instance-specific data (e.g., activity
//! states). ... For each biased instance we maintain a minimal substitution
//! block that captures all changes applied to it so far. This block is then
//! used to overlay parts of the original schema when accessing the
//! instance."*
//!
//! * [`SchemaRepository`] — deployed process types and version chains;
//!   every version's schema + block structure is stored exactly once.
//! * [`SubstitutionBlock`] — the minimal overlay of a biased instance and
//!   its pure-graph-patch [`SubstitutionBlock::overlay`].
//! * [`InstanceStore`] — instances under one of three representation
//!   strategies (the two alternatives the paper dismisses and the hybrid
//!   approach it adopts), with access statistics and byte-level memory
//!   accounting for the Fig. 2 experiments.
//! * [`TxnLog`] — the append-only log of committed change transactions
//!   (ops + recorded inverses), embedded in persistence snapshots.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod instances;
pub mod persist;
pub mod repo;
pub mod subst;
pub mod txnlog;

pub use instances::{AccessStats, InstanceStore, MemoryBreakdown, Representation, StoredInstance};
pub use persist::{
    from_json, restore, restore_with_txns, snapshot, snapshot_with_txns, to_json, Snapshot,
};
pub use repo::{DeployedSchema, SchemaRepository};
pub use subst::SubstitutionBlock;
pub use txnlog::{TxnLog, TxnRecord, TxnTarget};
