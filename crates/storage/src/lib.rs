//! # adept-storage — hybrid schema/instance storage (paper Fig. 2)
//!
//! *"The implementation of ADEPT2 has raised many challenges, e.g., with
//! respect to storage representation of schema and instance data: Unchanged
//! instances are stored in a redundant-free manner by referencing their
//! original schema and by capturing instance-specific data (e.g., activity
//! states). ... For each biased instance we maintain a minimal substitution
//! block that captures all changes applied to it so far. This block is then
//! used to overlay parts of the original schema when accessing the
//! instance."*
//!
//! * [`SchemaRepository`] — deployed process types and version chains;
//!   every version's schema + block structure is stored exactly once.
//! * [`SubstitutionBlock`] — the minimal overlay of a biased instance and
//!   its pure-graph-patch [`SubstitutionBlock::overlay`].
//! * [`InstanceStore`] — instances under one of three representation
//!   strategies (the two alternatives the paper dismisses and the hybrid
//!   approach it adopts), with access statistics and byte-level memory
//!   accounting for the Fig. 2 experiments.
//! * [`TxnLog`] — the append-only log of committed change transactions
//!   (ops + recorded inverses), embedded in persistence snapshots.
//!
//! # Concurrency: the sharded instance store
//!
//! The paper's core promise is executing and migrating **thousands of
//! concurrent instances** on the fly, so the instance store is built for
//! multi-threaded traffic rather than wrapped in one global lock:
//!
//! * **N-way sharding** — instances are spread over
//!   [`instances::DEFAULT_SHARD_COUNT`] independent `RwLock`-protected
//!   maps, keyed by `InstanceId::hash64()`. Per-instance operations
//!   (get, update, the compare-and-set installs `set_bias_if` /
//!   `migrate_if`) touch exactly one shard; commands on different
//!   instances proceed in parallel.
//! * **Lock-free id allocation** — a single `AtomicU64`. The old
//!   allocator was a `RwLock<u32>` that silently wrapped at `u32::MAX`;
//!   the 64-bit space cannot realistically be exhausted.
//! * **Atomic access stats** — [`AccessStats`] is a snapshot of relaxed
//!   atomic counters. Cache-hit schema reads no longer take a stats
//!   *write* lock (let alone one nested inside the instances read lock).
//! * **Per-shard type index** — [`InstanceStore::instances_of`] is served
//!   from a per-shard `type name → ids` index instead of scanning every
//!   instance in the store.
//! * **Cross-shard composition** — `ids()`, `len()`, `memory()`, `all()`
//!   and snapshotting visit shards one at a time (release before next
//!   acquire), so whole-store reads never block the write hot path behind
//!   a global barrier.
//!
//! Lock order: **machine-checked**. Every lock in this crate (and in
//! `adept-engine`) is an [`ordered::OrderedRwLock`] /
//! [`ordered::OrderedMutex`] carrying a declared [`ordered::LockClass`];
//! debug and `--features lock-order-check` builds validate every
//! acquisition against the class DAG and panic (with both acquisition
//! sites) on a rank inversion or a second same-class shard outside the
//! ascending sweep API. The single authoritative class table and its
//! rationale live in `docs/LOCK_ORDER.md`.
//! `InstanceStore::with_shards(_, 1)` reproduces the old single-map
//! behaviour and serves as the contention baseline in the
//! `store_throughput` benchmark.
//!
//! # Durability & recovery
//!
//! ADEPT2 is a *production-grade* engine: instance state, change
//! transactions and migration outcomes must survive an engine crash, not
//! just a polite shutdown. The durability subsystem provides exactly
//! that, in three layers:
//!
//! * **[`StorageBackend`]** ([`backend`]) — the pluggable medium: an
//!   append-only line store with `append_line` / `sync` / `read_log` /
//!   `reset`. Two implementations ship: [`MemoryBackend`] (shared
//!   in-memory buffer with fault-injection hooks, for tests and benches)
//!   and [`FileBackend`] (an embedded durable file with a configurable
//!   [`SyncPolicy`] — fsync every append, every N appends, or never).
//!   Under `SyncPolicy::Always` the file backend **group-commits**:
//!   concurrent appenders write under the state lock but fsync outside
//!   it, and an appender whose write is already covered by a later
//!   fsync skips its own — N concurrent durable appends cost far fewer
//!   than N fsyncs, with no durability loss (an append returns only
//!   once a sync covering its record has completed).
//! * **[`WriteAheadLog`]** ([`wal`]) — every committed change transaction
//!   and every state-mutating command outcome is appended as one compact
//!   JSON line ([`WalEntry`]) **before** it becomes visible engine state.
//!   Records carry physical post-images, so replay is a sequence of
//!   idempotent upserts. The WAL *is* the transaction log: [`TxnLog`] is
//!   a view over its transaction projection. The log can be
//!   **segmented** over several backends
//!   ([`WriteAheadLog::create_segmented`], a power-of-two count):
//!   sequence `s` lands on segment `(s − 1) mod N`, allocation is one
//!   atomic `fetch_add`, and an append locks only its own segment —
//!   concurrent journaling from different store shards stops
//!   serializing on a single backend lock. One segment is byte-identical
//!   to the unsegmented layout; `open_segmented` merges segments back
//!   into one globally ordered stream and refuses duplicate sequences.
//! * **Snapshots + replay** ([`persist`]) — format-3 snapshots record the
//!   WAL watermark (`wal_seq`) they cover. Recovery loads the latest
//!   snapshot, replays the WAL tail (`seq > wal_seq`) onto it, and ends
//!   at the exact pre-crash engine — byte-for-byte equal to an
//!   uninterrupted run's snapshot. Format-2 and format-1 documents still
//!   restore.
//!
//! Crash semantics: a record is appended with a single write of
//! `line + '\n'`, so a crash mid-append leaves a *torn tail* — bytes
//! after the last newline. [`StorageBackend::read_log`] truncates the
//! torn tail (on the medium) and recovery proceeds from the last complete
//! record. With segments the same rule applies per segment, and the
//! replay layer then classifies any gap left in the *merged* stream: a
//! bounded gap near the global tail is the normal crash residue of
//! concurrent segmented appends (an earlier-allocated record torn or
//! unwritten while a later sequence is already durable in a sibling) and
//! is repaired by truncating every segment back to the last contiguous
//! sequence; a wide gap (a lost segment leaves periodic holes across the
//! whole stream) or a leading gap with no snapshot covering the start is
//! refused as corruption. A failed append whose sequence cannot be
//! returned to the allocator is plugged with a durable no-op tombstone
//! ([`WalRecord::Abandoned`]), so transient backend errors never leave
//! permanent holes; snapshots record the WAL's **durable position** (the
//! highest contiguous successfully-appended sequence,
//! [`WriteAheadLog::durable_position`]) rather than the raw allocator, so
//! a watermark never claims coverage of an in-flight append. A *complete*
//! line that does not decode cannot be produced by a crash; it means the
//! medium was damaged, and recovery refuses to start
//! ([`StorageError::Corrupt`]). All failures on the persistence path are
//! typed ([`error`]): backend I/O, corrupt streams, and encode failures
//! are distinguishable, and a journaling failure during a commit aborts
//! the commit instead of silently diverging from the log.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod error;
pub mod instances;
pub mod ordered;
pub mod persist;
pub mod repo;
pub mod shards;
pub mod subst;
pub mod txnlog;
pub mod wal;

pub use backend::{FileBackend, MemoryBackend, RawLog, StorageBackend, SyncPolicy};
pub use error::{JournaledError, StorageError};
pub use instances::{
    AccessStats, InstanceStore, MemoryBreakdown, Representation, StoredInstance,
    DEFAULT_SHARD_COUNT,
};
pub use ordered::{LockClass, OrderedMutex, OrderedRwLock};
pub use persist::{
    from_json, restore, restore_with_txns, snapshot, snapshot_with_txns, to_json, InstanceRecord,
    Snapshot,
};
pub use repo::{DeployedSchema, SchemaRepository};
pub use shards::Shards;
pub use subst::SubstitutionBlock;
pub use txnlog::{TxnLog, TxnRecord, TxnTarget};
pub use wal::{WalEntry, WalRecord, WriteAheadLog};
