//! Change sessions: the engine's transactional change surface.
//!
//! A [`ChangeSession`] wraps an [`adept_core::ChangeTxn`] with the
//! engine-side bookkeeping for one target — a running instance
//! ([`ProcessEngine::begin_change`]) or a process type
//! ([`ProcessEngine::begin_evolution`]) — and drives the
//! stage → preview → commit lifecycle:
//!
//! * [`ChangeSession::stage`] applies one operation to the session's
//!   private working overlay (structural preconditions only — the
//!   expensive checks are deferred);
//! * [`ChangeSession::preview`] is a **pure dry run**: per-op diagnostics,
//!   the single full verification pass, and the Fig.-1 fast-compliance
//!   verdict against the instance's *current* marking, without mutating
//!   engine state;
//! * [`ChangeSession::commit`] re-runs both gates once and atomically
//!   installs the outcome — schema swap or bias update, local state
//!   adaptation, monitor events, and a [`adept_storage::TxnLog`] record.
//!   A failed commit leaves instance and repository bit-identical;
//! * [`ChangeSession::abort`] drops everything (staging never touched the
//!   engine, so abort is free).
//!
//! Committing `N` staged operations costs **one** verification pass and
//! one compliance pass — the amortisation that makes multi-op changes
//! practical at population scale.

use crate::engine::{EngineError, ProcessEngine};
use crate::monitor::{EngineEvent, FailureKind};
use adept_core::{
    adapt_instance_state, ChangeError, ChangeOp, ChangeTxn, Delta, StagedOp, TxnPreview, Verdict,
};
use adept_model::{Blocks, InstanceId, NodeId};
use adept_state::Execution;
use adept_storage::{InstanceRecord, TxnRecord, TxnTarget, WalRecord};

/// What a session changes.
#[derive(Debug, Clone)]
enum SessionTarget {
    /// An ad-hoc change of one instance. The bias and version observed at
    /// `begin_change` guard against concurrent modification at commit.
    Instance {
        id: InstanceId,
        bias_at_begin: Delta,
        version_at_begin: u32,
    },
    /// A type evolution based on `base_version`.
    Type { name: String, base_version: u32 },
}

/// A staged multi-operation change against one instance or process type.
///
/// Obtained from [`ProcessEngine::begin_change`] /
/// [`ProcessEngine::begin_evolution`]; consumed by
/// [`ChangeSession::commit`] or [`ChangeSession::abort`]. Dropping the
/// session without committing is equivalent to aborting.
#[derive(Debug)]
pub struct ChangeSession<'e> {
    engine: &'e ProcessEngine,
    target: SessionTarget,
    txn: ChangeTxn,
    blocks: Blocks,
}

/// The receipt of a committed change transaction.
#[derive(Debug, Clone)]
pub struct TxnReceipt {
    /// Sequence number in the engine's transaction log.
    pub seq: u64,
    /// Number of committed operations.
    pub ops: usize,
    /// For type evolutions: the version the commit produced.
    pub new_version: Option<u32>,
    /// The composed change log, in staging order.
    pub delta: Delta,
}

impl ProcessEngine {
    /// Opens a change session for an ad-hoc modification of one running
    /// instance. The session stages against a private overlay of the
    /// instance's *current* (possibly already biased) schema; the engine
    /// is not touched until [`ChangeSession::commit`].
    pub fn begin_change(&self, id: InstanceId) -> Result<ChangeSession<'_>, EngineError> {
        let (current, blocks) = self.change_context(id)?;
        let inst = self
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        let mut base = current;
        base.reserve_private_id_space();
        Ok(ChangeSession {
            engine: self,
            target: SessionTarget::Instance {
                id,
                bias_at_begin: inst.bias,
                version_at_begin: inst.version,
            },
            txn: ChangeTxn::begin(base),
            blocks,
        })
    }

    /// Opens a change session evolving a process type. Staging happens on
    /// a private overlay of the newest version; committing installs the
    /// result as the next version (rejecting the commit if another
    /// evolution won the race in between).
    pub fn begin_evolution(&self, type_name: &str) -> Result<ChangeSession<'_>, EngineError> {
        let version = self
            .repo
            .latest_version(type_name)
            .ok_or_else(|| EngineError::NotFound(format!("process type {type_name:?}")))?;
        let dep = self
            .repo
            .deployed(type_name, version)
            .ok_or_else(|| EngineError::NotFound(format!("version {version}")))?;
        Ok(ChangeSession {
            engine: self,
            target: SessionTarget::Type {
                name: type_name.to_string(),
                base_version: version,
            },
            txn: ChangeTxn::begin((*dep.schema).clone()),
            blocks: (*dep.blocks).clone(),
        })
    }
}

impl ChangeSession<'_> {
    /// Stages one operation on the session's working overlay. Structural
    /// preconditions are checked immediately; the full verification and
    /// compliance gates run once, at preview/commit. On failure nothing is
    /// staged and the session remains usable.
    pub fn stage(&mut self, op: &ChangeOp) -> Result<adept_core::AppliedOp, EngineError> {
        match self.txn.stage(op) {
            Ok(rec) => Ok(rec.clone()),
            Err(e) => {
                if let SessionTarget::Instance { id, .. } = &self.target {
                    self.engine.monitor.record(EngineEvent::AdHocRejected {
                        instance: *id,
                        op: op.to_string(),
                        node: e.failing_node(),
                        kind: FailureKind::of_change(&e),
                        reason: e.to_string(),
                    });
                }
                Err(e.into())
            }
        }
    }

    /// Rolls back the most recently staged operation. The remaining
    /// records are replayed from the session's base overlay — deliberately
    /// *not* undone via the recorded inverse, which would renumber
    /// overlay-created nodes and break the id correspondence of the
    /// records that stay staged (see `ChangeTxn::unstage_last`).
    pub fn unstage_last(&mut self) -> Result<adept_core::AppliedOp, EngineError> {
        self.txn.unstage_last().map_err(EngineError::from)
    }

    /// The staged operations, in staging order.
    pub fn staged(&self) -> &[StagedOp] {
        self.txn.staged()
    }

    /// Number of staged operations.
    pub fn len(&self) -> usize {
        self.txn.len()
    }

    /// Whether nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.txn.is_empty()
    }

    /// The composed delta of all staged operations.
    pub fn delta(&self) -> Delta {
        self.txn.delta()
    }

    /// A pure dry run of the commit gates: per-op diagnostics, the single
    /// verification pass over the final overlay and — for instance
    /// sessions — the fast-compliance verdict against the instance's
    /// *current* marking. No engine state is mutated; previewing and then
    /// aborting leaves the world bit-identical.
    ///
    /// Like [`ChangeSession::commit`], the dry run fails with a
    /// concurrent-change error if the instance was modified since the
    /// session began — its verdicts would otherwise mix the session's
    /// schema with a marking that belongs to a different one.
    pub fn preview(&self) -> Result<TxnPreview, EngineError> {
        match &self.target {
            SessionTarget::Instance {
                id,
                bias_at_begin,
                version_at_begin,
            } => {
                let inst = self
                    .engine
                    .store
                    .get(*id)
                    .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
                if inst.version != *version_at_begin || inst.bias != *bias_at_begin {
                    return Err(EngineError::Change(ChangeError::Precondition(format!(
                        "concurrent change: {id} was modified since the session began"
                    ))));
                }
                Ok(self.txn.preview(Some((&self.blocks, &inst.state))))
            }
            SessionTarget::Type { name, base_version } => {
                if self.engine.repo.latest_version(name) != Some(*base_version) {
                    return Err(EngineError::Change(ChangeError::Precondition(format!(
                        "concurrent evolution: \"{name}\" is no longer at V{base_version}"
                    ))));
                }
                Ok(self.txn.preview(None))
            }
        }
    }

    /// Commits all staged operations atomically: exactly one full
    /// verification pass over the final overlay, one Fig.-1 compliance
    /// pass against the current instance marking (instance sessions), then
    /// the installation — bias + adapted state, or the new type version —
    /// a `TxnCommitted` monitor event and a transaction-log record.
    ///
    /// Any gate failure returns the error with **no observable effect**:
    /// instance, repository, bias and state are untouched.
    pub fn commit(self) -> Result<TxnReceipt, EngineError> {
        match self.target {
            SessionTarget::Instance {
                id,
                bias_at_begin,
                version_at_begin,
            } => Self::commit_instance(
                self.engine,
                self.txn,
                self.blocks,
                id,
                bias_at_begin,
                version_at_begin,
            ),
            SessionTarget::Type { name, base_version } => {
                Self::commit_evolution(self.engine, self.txn, name, base_version)
            }
        }
    }

    /// Abandons the session. Staging never touched the engine, so this
    /// only records the abort for the monitoring component.
    pub fn abort(self) {
        let target = match &self.target {
            SessionTarget::Instance { id, .. } => id.to_string(),
            SessionTarget::Type { name, .. } => format!("\"{name}\""),
        };
        self.engine.monitor.record(EngineEvent::TxnAborted {
            target,
            staged: self.txn.len(),
        });
    }

    fn commit_instance(
        engine: &ProcessEngine,
        txn: ChangeTxn,
        blocks: Blocks,
        id: InstanceId,
        bias_at_begin: Delta,
        version_at_begin: u32,
    ) -> Result<TxnReceipt, EngineError> {
        let inst = engine
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        // Concurrency guard: the session staged against the schema
        // observed at begin; if another change or a migration rebased the
        // instance since, the overlay no longer applies.
        if inst.version != version_at_begin || inst.bias != bias_at_begin {
            return Err(EngineError::Change(ChangeError::Precondition(format!(
                "concurrent change: {id} was modified since the session began"
            ))));
        }

        // Gate 1 — state compliance: one pass of the per-operation Fig. 1
        // conditions over the staged records, against the *current*
        // marking.
        if let Err((idx, verdict)) = txn.check_compliance(&blocks, &inst.state) {
            let rec = &txn.staged()[idx].rec;
            let (kind, reason) = match &verdict {
                Verdict::NotCompliant(c) => (FailureKind::from(&c.kind), c.to_string()),
                Verdict::Compliant => unreachable!("conflict verdicts only"),
            };
            let anchor = rec.anchor_nodes().first().copied();
            engine.monitor.record(EngineEvent::AdHocRejected {
                instance: id,
                op: rec.op.to_string(),
                node: anchor,
                kind,
                reason: reason.clone(),
            });
            return Err(EngineError::Change(ChangeError::StatePrecondition {
                node: anchor.unwrap_or(NodeId(0)),
                reason,
            }));
        }

        // Gate 2 — the single full verification pass over the overlay.
        let committed = match txn.commit_schema() {
            Ok(c) => c,
            Err((txn, e)) => {
                engine.monitor.record(EngineEvent::AdHocRejected {
                    instance: id,
                    op: txn.delta().summary(),
                    node: e.failing_node(),
                    kind: FailureKind::of_change(&e),
                    reason: e.to_string(),
                });
                return Err(e.into());
            }
        };

        // Local state adaptation on the verified overlay.
        let new_ex = Execution::new(&committed.schema)
            .map_err(|e| EngineError::Change(ChangeError::Precondition(e.to_string())))?;
        let mut st = inst.state.clone();
        adapt_instance_state(&committed.base, &blocks, &new_ex, &committed.delta, &mut st)?;

        // Installation: one store mutation makes the whole batch visible.
        // The version/bias/state snapshot every gate above validated
        // against is re-checked under the store's write lock
        // (compare-and-set), so a commit, migration or execution step
        // racing in after the `get` cannot be clobbered.
        let mut bias = bias_at_begin;
        let ops: Vec<ChangeOp> = committed.delta.ops.iter().map(|r| r.op.clone()).collect();
        let n = committed.delta.len();
        for rec in &committed.delta.ops {
            bias.push(rec.clone());
        }
        bias.purge();
        // Write-ahead: the candidate post-image plus the transaction
        // record are journaled while the shard lock is held, *before* the
        // candidate replaces the visible instance — a commit the WAL
        // could not record never becomes visible.
        let wal = engine.txn_log.wal();
        let mut seq = 0u64;
        let installed = engine.store.set_bias_if_journaled(
            id,
            inst.version,
            &inst.bias,
            &inst.state,
            bias,
            &committed.schema,
            st,
            |candidate| {
                wal.append_txn(|txn_seq| {
                    let txn = TxnRecord {
                        seq: txn_seq,
                        target: TxnTarget::Instance(id),
                        ops: ops.clone(),
                        inverses: committed.inverses.clone(),
                    };
                    (
                        WalRecord::ChangeCommitted {
                            record: InstanceRecord::of(candidate),
                            txn: txn.clone(),
                        },
                        txn,
                    )
                })
                .map(|s| seq = s)
            },
        )?;
        if !installed {
            return Err(EngineError::Change(ChangeError::Precondition(format!(
                "concurrent change: {id} was modified while the transaction committed"
            ))));
        }
        // Commit → worklist hook: the instance now runs on a different
        // schema, so its cached execution context and worklist entry are
        // stale (core reports which nodes the transaction touched).
        engine.note_committed_change(id, &committed);
        for rec in &committed.delta.ops {
            engine.monitor.record(EngineEvent::AdHocChanged {
                instance: id,
                op: rec.op.to_string(),
            });
        }
        engine.monitor.record(EngineEvent::TxnCommitted {
            target: id.to_string(),
            ops: n,
            seq,
        });
        Ok(TxnReceipt {
            seq,
            ops: n,
            new_version: None,
            delta: committed.delta,
        })
    }

    fn commit_evolution(
        engine: &ProcessEngine,
        txn: ChangeTxn,
        name: String,
        base_version: u32,
    ) -> Result<TxnReceipt, EngineError> {
        // The single full verification pass over the evolved overlay.
        let committed = match txn.commit_schema() {
            Ok(c) => c,
            Err((_txn, e)) => {
                engine.monitor.record(EngineEvent::EvolutionRejected {
                    type_name: name,
                    kind: FailureKind::of_change(&e),
                    reason: e.to_string(),
                });
                return Err(e.into());
            }
        };
        let ops: Vec<ChangeOp> = committed.delta.ops.iter().map(|r| r.op.clone()).collect();
        let n = committed.delta.len();
        // Atomic install: the repository re-checks the base version under
        // its types lock, so a racing evolution cannot interleave — and
        // the WAL record plus transaction record are journaled inside that
        // critical section, *before* the new version becomes visible.
        let wal = engine.txn_log.wal();
        let mut seq = 0u64;
        let v = match engine.repo.install_evolution_journaled(
            &name,
            base_version,
            committed.schema,
            committed.delta.clone(),
            |v| {
                wal.append_txn(|txn_seq| {
                    let txn = TxnRecord {
                        seq: txn_seq,
                        target: TxnTarget::Type {
                            name: name.clone(),
                            new_version: v,
                        },
                        ops: ops.clone(),
                        inverses: committed.inverses.clone(),
                    };
                    (
                        WalRecord::Evolved {
                            name: name.clone(),
                            base_version,
                            txn: txn.clone(),
                        },
                        txn,
                    )
                })
                .map(|s| seq = s)
            },
        ) {
            Ok(v) => v,
            Err(e) => {
                let kind = match &e {
                    adept_storage::JournaledError::Change(c) => FailureKind::of_change(c),
                    adept_storage::JournaledError::Storage(_) => FailureKind::Internal,
                };
                engine.monitor.record(EngineEvent::EvolutionRejected {
                    type_name: name,
                    kind,
                    reason: e.to_string(),
                });
                return Err(e.into());
            }
        };
        engine.monitor.record(EngineEvent::TypeEvolved {
            type_name: name,
            version: v,
        });
        engine.monitor.record(EngineEvent::TxnCommitted {
            target: format!("V{v}"),
            ops: n,
            seq,
        });
        Ok(TxnReceipt {
            seq,
            ops: n,
            new_version: Some(v),
            delta: committed.delta,
        })
    }
}
