//! Work items and the incremental worklist index: the user-facing side of
//! the engine.
//!
//! Activated activities are offered as work items; actors claim them by
//! role. This is the minimal faithful model of ADEPT2's worklist
//! management (the demo system distributed these via client components).
//!
//! The [`WorklistIndex`] keeps a per-instance snapshot of offered items,
//! maintained by command outcomes and invalidated by change-transaction
//! commits, migrations and undos — so serving the global worklist is an
//! index walk instead of an O(instances × nodes) recompute.

use adept_model::{InstanceId, NodeId, ProcessSchema};
use adept_storage::ordered::{classes, OrderedRwLock};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// One offered unit of work: an activated activity of some instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkItem {
    /// The instance the work belongs to.
    pub instance: InstanceId,
    /// The activity node.
    pub node: NodeId,
    /// Activity name.
    pub activity: String,
    /// Staff assignment rule (role), if any.
    pub role: Option<String>,
    /// Process type name.
    pub type_name: String,
    /// Schema version the instance currently runs on.
    pub version: u32,
}

impl WorkItem {
    /// Whether an actor with the given role may claim this item. Items
    /// without a role are claimable by anyone.
    pub fn claimable_by(&self, role: &str) -> bool {
        self.role.as_deref().is_none_or(|r| r == role)
    }
}

impl fmt::Display for WorkItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} v{}] {} \"{}\"",
            self.instance, self.version, self.node, self.activity
        )?;
        if let Some(r) = &self.role {
            write!(f, " (role: {r})")?;
        }
        Ok(())
    }
}

/// The work items an instance currently offers: its enabled activities
/// (as computed by whichever execution path the caller ran — compiled or
/// interpreted, both produce the same id-ordered set), annotated with
/// name, role and version for claiming.
pub(crate) fn items_for(
    schema: &ProcessSchema,
    enabled: &[NodeId],
    instance: InstanceId,
    type_name: &str,
    version: u32,
) -> Vec<WorkItem> {
    let mut items = Vec::new();
    for &node in enabled {
        let Ok(n) = schema.node(node) else {
            continue;
        };
        items.push(WorkItem {
            instance,
            node,
            activity: n.name.clone(),
            role: n.attrs.role.clone(),
            type_name: type_name.to_string(),
            version,
        });
    }
    items
}

/// The incrementally maintained enabled-set index.
///
/// One entry per instance, carrying the instance's current work items and
/// the **epoch** of the install. Epochs for command installs are drawn
/// while the instance's store shard lock is held, so they order exactly
/// like store commits; lazy recomputes (worklist reads that miss the
/// index) use the epoch observed *before* reading, which makes a racing
/// command's newer install always win. An absent entry means "recompute
/// on next read" — that is the invalidation signal change commits,
/// migrations and undos send. Invalidation leaves a **tombstone
/// watermark** (the epoch at invalidation time), so an in-flight
/// recompute or command that read the *pre-change* state — its epoch
/// predates the watermark — cannot resurrect stale items afterwards.
///
/// Like the store, the index is sharded by [`InstanceId::hash64`]: every
/// command installs into the index, so one global entry lock would
/// re-serialise the sharded store's write path. The epoch counter is a
/// single atomic (cheap, contention-free); only the entry/tombstone maps
/// are sharded. [`WorklistIndex::collect`] briefly holds **all** shard
/// read locks at once to serve one coherent pass over the population —
/// readers don't block each other, and writers (one shard write each)
/// never hold a second index shard, so the order is acyclic.
#[derive(Debug)]
pub(crate) struct WorklistIndex {
    epoch: AtomicU64,
    shards: adept_storage::Shards<IndexState>,
}

impl Default for WorklistIndex {
    fn default() -> Self {
        Self {
            epoch: AtomicU64::new(0),
            shards: adept_storage::Shards::new(
                &classes::WORKLIST_INDEX,
                adept_storage::DEFAULT_SHARD_COUNT,
            ),
        }
    }
}

/// An epoch-stamped delta of the worklist since a consumer's last poll —
/// what [`crate::ProcessEngine::worklist_delta`] returns.
///
/// Replaying deltas from epoch 0 reconstructs exactly the full worklist:
/// each `added` entry is the instance's complete current item set
/// (replace, don't merge), and each `invalidated` id has no offered items
/// any more (drop it). Pass `epoch` as the next poll's `since`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorklistDelta {
    /// Instances whose item set changed since `since`, with their full
    /// current item sets (empty set = instance offers nothing right
    /// now). Sorted by instance id.
    pub added: Vec<(InstanceId, Vec<WorkItem>)>,
    /// Instances invalidated (removed, or changed with no live entry)
    /// since `since`. Sorted by instance id.
    pub invalidated: Vec<InstanceId>,
    /// The epoch this delta is current through — the next `since`.
    pub epoch: u64,
}

/// Raw index-side delta: entries/tombstones past `since`, plus the ids
/// that need a read-side recompute before the delta is complete.
#[derive(Debug, Default)]
pub(crate) struct IndexDelta {
    /// Epoch the scan is complete through (min pending install − 1).
    pub epoch: u64,
    /// Live entries installed after `since` (full item sets).
    pub updated: Vec<(InstanceId, Vec<WorkItem>)>,
    /// Ids tombstoned after `since` that are no longer in the store.
    pub invalidated: Vec<InstanceId>,
    /// Store ids with no live entry — recompute these.
    pub misses: Vec<InstanceId>,
}

#[derive(Debug, Default)]
struct IndexState {
    entries: BTreeMap<InstanceId, IndexEntry>,
    /// Invalidation watermarks: installs stamped with an epoch at or
    /// below the watermark are rejected (their items predate the change
    /// that invalidated the entry). Cleared by the next accepted install.
    tombstones: BTreeMap<InstanceId, u64>,
    /// Epochs drawn by [`WorklistIndex::begin_install`] whose install
    /// has not landed yet. A delta scan must not report completeness
    /// past the lowest pending epoch, or the in-flight install would be
    /// lost to every cursor forever.
    pending: BTreeSet<u64>,
}

#[derive(Debug)]
struct IndexEntry {
    epoch: u64,
    items: Vec<WorkItem>,
}

impl WorklistIndex {
    #[inline]
    fn shard(&self, id: InstanceId) -> &OrderedRwLock<IndexState> {
        self.shards.for_id(id)
    }

    /// Draws the next epoch (no pending registration — internal; see
    /// [`WorklistIndex::begin_install`]).
    fn bump(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The epoch a lazy (read-side) recompute must stamp its install with
    /// — observed **before** reading the instance state.
    pub fn current(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Draws the next install epoch *and registers it pending* so a delta
    /// scan can't declare completeness past it before the matching
    /// [`WorklistIndex::finish_install`] lands. Call while holding the
    /// instance's store shard write lock so epoch order equals commit
    /// order; the epoch is drawn under the *index* shard write lock,
    /// which [`WorklistIndex::delta`] holds for reading — so a scan
    /// either sees the pending epoch or completes before it exists.
    pub fn begin_install(&self, id: InstanceId) -> u64 {
        let mut state = self.shard(id).write();
        let epoch = self.bump();
        state.pending.insert(epoch);
        epoch
    }

    /// Lands an install begun with [`WorklistIndex::begin_install`]:
    /// clears the pending registration and installs the items unless a
    /// newer install already landed or an invalidation watermark says
    /// the items were computed from pre-invalidation state.
    pub fn finish_install(&self, id: InstanceId, epoch: u64, items: Vec<WorkItem>) {
        let mut state = self.shard(id).write();
        state.pending.remove(&epoch);
        Self::install_locked(&mut state, id, epoch, items);
    }

    /// Abandons an install begun with [`WorklistIndex::begin_install`]
    /// without installing anything (the guarded mutation failed). The
    /// pending epoch must not leak, or delta cursors would stall at it
    /// forever. Currently every engine path journals *before* drawing
    /// the epoch, so no production caller can fail between begin and
    /// finish — this stays as the safety valve a future fallible path
    /// must call.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn abort_install(&self, id: InstanceId, epoch: u64) {
        self.shard(id).write().pending.remove(&epoch);
    }

    /// Installs items from a **lazy** (read-side) recompute, stamped
    /// with a previously observed [`WorklistIndex::current`]. Unlike
    /// [`WorklistIndex::finish_install`] this never touches the pending
    /// set: a lazy stamp can numerically equal a command's in-flight
    /// epoch, and must not deregister it.
    pub fn install_lazy(&self, id: InstanceId, epoch: u64, items: Vec<WorkItem>) {
        let mut state = self.shard(id).write();
        Self::install_locked(&mut state, id, epoch, items);
    }

    fn install_locked(state: &mut IndexState, id: InstanceId, epoch: u64, items: Vec<WorkItem>) {
        // Strictly below the watermark = computed from pre-invalidation
        // state. An epoch equal to the watermark is fine: it was observed
        // after the invalidation bump, hence after the change installed.
        if state.tombstones.get(&id).is_some_and(|w| *w > epoch) {
            return;
        }
        match state.entries.get(&id) {
            Some(e) if e.epoch > epoch => {}
            _ => {
                state.tombstones.remove(&id);
                state.entries.insert(id, IndexEntry { epoch, items });
            }
        }
    }

    /// Drops an instance's entry and leaves a watermark so concurrent
    /// installs computed from the pre-invalidation state are rejected.
    /// The entry is recomputed on the next worklist read. The watermark
    /// is drawn *inside* the shard write lock, so a delta scan (which
    /// holds every shard read lock) either sees the tombstone or
    /// completes at an epoch below it — an invalidation can never fall
    /// into a cursor gap.
    ///
    /// This is also the **removal** path: a removed instance's watermark
    /// must stay behind, or an in-flight recompute that read the instance
    /// before the removal could re-install an entry that nothing would
    /// ever clear again (the id no longer appears in `store.ids()`, so no
    /// later invalidation fires). The watermark is a few bytes per
    /// removed id; a resurrected entry would hold a whole item vector.
    pub fn invalidate(&self, id: InstanceId) {
        let mut state = self.shard(id).write();
        let watermark = self.bump();
        state.entries.remove(&id);
        state.tombstones.insert(id, watermark);
    }

    /// The indexed items of an instance, if the entry is live.
    #[cfg(test)]
    pub fn get(&self, id: InstanceId) -> Option<Vec<WorkItem>> {
        self.shard(id)
            .read()
            .entries
            .get(&id)
            .map(|e| e.items.clone())
    }

    /// Collects the items of every indexed id into `out` and the ids
    /// without a live entry into `misses` — one lock acquisition **per
    /// shard** for the whole population instead of one per instance. All
    /// shard read guards are held together so the pass is coherent.
    pub fn collect(
        &self,
        ids: &[InstanceId],
        out: &mut Vec<WorkItem>,
        misses: &mut Vec<InstanceId>,
    ) {
        let guards = self.shards.read_all();
        for id in ids {
            match guards[self.shards.index_of(*id)].entries.get(id) {
                Some(e) => out.extend(e.items.iter().cloned()),
                None => misses.push(*id),
            }
        }
    }

    /// One coherent delta scan: everything that changed after `since`,
    /// plus the store ids (`ids`) that currently have no live entry and
    /// therefore need a read-side recompute before the delta is served.
    ///
    /// All shard read guards are held together, which blocks every
    /// epoch draw ([`WorklistIndex::begin_install`] and
    /// [`WorklistIndex::invalidate`] draw under a shard *write* lock) —
    /// so the set of epochs is frozen for the pass. The reported epoch
    /// is `min(pending) − 1` when installs are in flight (their results
    /// aren't visible yet; the next poll picks them up), otherwise the
    /// frozen counter value.
    ///
    /// `since == 0` is the bootstrap scan: *every* live entry is
    /// reported, including epoch-0 entries a restored engine stamps.
    pub fn delta(&self, since: u64, ids: &[InstanceId]) -> IndexDelta {
        let guards = self.shards.read_all();
        let epoch_now = self.current();
        let min_pending = guards
            .iter()
            .filter_map(|g| g.pending.iter().next().copied())
            .min();
        let epoch = match min_pending {
            Some(p) => p - 1,
            None => epoch_now,
        };
        let mut out = IndexDelta {
            epoch,
            ..IndexDelta::default()
        };
        let live: BTreeSet<InstanceId> = ids.iter().copied().collect();
        for g in &guards {
            for (id, e) in &g.entries {
                if since == 0 || e.epoch > since {
                    out.updated.push((*id, e.items.clone()));
                }
            }
            for (id, w) in &g.tombstones {
                if *w > since && !live.contains(id) {
                    out.invalidated.push(*id);
                }
            }
        }
        for id in ids {
            if !guards[self.shards.index_of(*id)].entries.contains_key(id) {
                out.misses.push(*id);
            }
        }
        drop(guards);
        out.updated.sort_by_key(|(id, _)| *id);
        out.invalidated.sort();
        out
    }

    /// Number of live entries (diagnostics).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().entries.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(role: Option<&str>) -> WorkItem {
        WorkItem {
            instance: InstanceId(1),
            node: NodeId(2),
            activity: "confirm order".into(),
            role: role.map(str::to_string),
            type_name: "order".into(),
            version: 1,
        }
    }

    #[test]
    fn role_claims() {
        assert!(item(None).claimable_by("anyone"));
        assert!(item(Some("clerk")).claimable_by("clerk"));
        assert!(!item(Some("clerk")).claimable_by("physician"));
    }

    #[test]
    fn display() {
        let s = item(Some("clerk")).to_string();
        assert!(s.contains("confirm order"));
        assert!(s.contains("clerk"));
    }

    #[test]
    fn index_orders_installs_by_epoch() {
        let idx = WorklistIndex::default();
        let e1 = idx.begin_install(InstanceId(1));
        let e2 = idx.begin_install(InstanceId(1));
        idx.finish_install(InstanceId(1), e2, vec![item(None)]);
        // A stale install (older epoch) must not clobber the newer entry.
        idx.finish_install(InstanceId(1), e1, vec![]);
        assert_eq!(idx.get(InstanceId(1)).unwrap().len(), 1);
        idx.invalidate(InstanceId(1));
        assert!(idx.get(InstanceId(1)).is_none());
        assert_eq!(idx.len(), 0);
        // Lazy installs stamped with the pre-read epoch are accepted when
        // nothing newer landed.
        idx.install_lazy(InstanceId(2), idx.current(), vec![item(Some("clerk"))]);
        assert_eq!(idx.get(InstanceId(2)).unwrap().len(), 1);
    }

    #[test]
    fn invalidation_tombstones_reject_stale_installs() {
        let idx = WorklistIndex::default();
        // A reader observes the epoch, then a change invalidates.
        let stale_epoch = idx.current();
        idx.invalidate(InstanceId(1));
        // The reader's install was computed from pre-change state: dropped.
        idx.install_lazy(InstanceId(1), stale_epoch, vec![item(None)]);
        assert!(idx.get(InstanceId(1)).is_none());
        // A reader that starts after the invalidation is accepted (and
        // clears the tombstone for later, even older-epoch re-installs).
        idx.install_lazy(InstanceId(1), idx.current(), vec![item(Some("clerk"))]);
        assert_eq!(idx.get(InstanceId(1)).unwrap().len(), 1);
    }

    #[test]
    fn delta_reports_updates_invalidations_and_misses() {
        let idx = WorklistIndex::default();
        let a = InstanceId(1);
        let b = InstanceId(2);
        let e = idx.begin_install(a);
        idx.finish_install(a, e, vec![item(None)]);
        // Bootstrap scan (since 0) returns all entries; b has no entry.
        let d0 = idx.delta(0, &[a, b]);
        assert_eq!(d0.updated.len(), 1);
        assert_eq!(d0.updated[0].0, a);
        assert_eq!(d0.misses, vec![b]);
        assert!(d0.invalidated.is_empty());
        assert_eq!(d0.epoch, e);
        // Nothing since d0.epoch.
        let d1 = idx.delta(d0.epoch, &[a, b]);
        assert!(d1.updated.is_empty());
        // Invalidate a (instance removed: not in ids any more).
        idx.invalidate(a);
        let d2 = idx.delta(d1.epoch, &[b]);
        assert_eq!(d2.invalidated, vec![a]);
        assert!(d2.updated.is_empty());
        // A tombstoned id still in the store is reported as a miss
        // (recompute), not as invalidated.
        idx.invalidate(b);
        let d3 = idx.delta(d2.epoch, &[b]);
        assert!(d3.invalidated.is_empty());
        assert_eq!(d3.misses, vec![b]);
    }

    #[test]
    fn pending_installs_hold_back_the_delta_epoch() {
        let idx = WorklistIndex::default();
        let a = InstanceId(1);
        let e1 = idx.begin_install(a);
        let e2 = idx.begin_install(a);
        idx.finish_install(a, e2, vec![item(None)]);
        // e1 is still in flight: completeness stops just below it, so the
        // install that *did* land (e2 > e1) will be re-scanned next poll
        // rather than lost behind a premature cursor.
        let d = idx.delta(0, &[a]);
        assert_eq!(d.epoch, e1 - 1);
        idx.abort_install(a, e1);
        let d = idx.delta(0, &[a]);
        assert_eq!(d.epoch, e2);
        // A lazy install stamped with current() must not deregister a
        // numerically equal pending command epoch.
        let e3 = idx.begin_install(a);
        assert_eq!(e3, idx.current());
        idx.install_lazy(a, idx.current(), vec![item(None)]);
        assert_eq!(idx.delta(0, &[a]).epoch, e3 - 1);
        idx.finish_install(a, e3, vec![item(None)]);
        assert_eq!(idx.delta(0, &[a]).epoch, e3);
    }
}
