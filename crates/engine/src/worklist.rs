//! Work items: the user-facing side of the engine.
//!
//! Activated activities are offered as work items; actors claim them by
//! role. This is the minimal faithful model of ADEPT2's worklist
//! management (the demo system distributed these via client components).

use adept_model::{InstanceId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One offered unit of work: an activated activity of some instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkItem {
    /// The instance the work belongs to.
    pub instance: InstanceId,
    /// The activity node.
    pub node: NodeId,
    /// Activity name.
    pub activity: String,
    /// Staff assignment rule (role), if any.
    pub role: Option<String>,
    /// Process type name.
    pub type_name: String,
    /// Schema version the instance currently runs on.
    pub version: u32,
}

impl WorkItem {
    /// Whether an actor with the given role may claim this item. Items
    /// without a role are claimable by anyone.
    pub fn claimable_by(&self, role: &str) -> bool {
        self.role.as_deref().is_none_or(|r| r == role)
    }
}

impl fmt::Display for WorkItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} v{}] {} \"{}\"",
            self.instance, self.version, self.node, self.activity
        )?;
        if let Some(r) = &self.role {
            write!(f, " (role: {r})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(role: Option<&str>) -> WorkItem {
        WorkItem {
            instance: InstanceId(1),
            node: NodeId(2),
            activity: "confirm order".into(),
            role: role.map(str::to_string),
            type_name: "order".into(),
            version: 1,
        }
    }

    #[test]
    fn role_claims() {
        assert!(item(None).claimable_by("anyone"));
        assert!(item(Some("clerk")).claimable_by("clerk"));
        assert!(!item(Some("clerk")).claimable_by("physician"));
    }

    #[test]
    fn display() {
        let s = item(Some("clerk")).to_string();
        assert!(s.contains("confirm order"));
        assert!(s.contains("clerk"));
    }
}
