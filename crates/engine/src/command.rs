//! The unified command/event execution API.
//!
//! Every state transition of a running instance — creation, activity
//! starts/completions, XOR and loop decisions, automatic drives — is a
//! typed [`EngineCommand`] submitted through **one code path**
//! ([`ProcessEngine::submit`] / [`ProcessEngine::submit_batch`]). The
//! command path
//!
//! * resolves the instance's `(schema, blocks)` context **once** through a
//!   per-instance cache (shared with the worklist index),
//! * applies discrete transitions **in place under the store's write
//!   lock**, validated against the context's `(version, bias)` snapshot —
//!   the compare-and-set that closes the lost-update race of the old
//!   get → clone → update verbs (drives run on a cloned state outside the
//!   lock, since drivers are user code, and install via the same CAS),
//! * records a complete monitor event stream (decisions included), and
//! * maintains the incremental worklist index from the post-command
//!   enabled set.
//!
//! [`ProcessEngine::submit_batch`] groups commands per instance and applies
//! each group under a **single** store update with one context resolution
//! — the batching surface that makes heavy-traffic workloads cheap.

use crate::engine::{EngineError, ProcessEngine};
use crate::monitor::EngineEvent;
use crate::worklist::items_for;
use adept_core::{ChangeError, Delta};
use adept_model::{Blocks, CompiledSchema, DataId, InstanceId, NodeId, ProcessSchema, Value};
use adept_state::{
    enabled_diff, CompiledExecution, DefaultDriver, Driver, Execution, InstanceState, RunEvent,
    RuntimeError,
};
use adept_storage::{StorageError, StoredInstance, WalRecord};
use std::fmt;
use std::sync::Arc;

/// A typed execution command, the single vocabulary every execution path
/// (interactive verbs, batch submission, simulation drivers) speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineCommand {
    /// Create an instance on the newest version of a process type.
    CreateInstance {
        /// The process type to instantiate.
        type_name: String,
    },
    /// Start an activated activity.
    Start {
        /// The instance.
        instance: InstanceId,
        /// The activity node.
        node: NodeId,
    },
    /// Complete a running activity with its output writes.
    Complete {
        /// The instance.
        instance: InstanceId,
        /// The activity node.
        node: NodeId,
        /// Output values, one per declared write edge.
        writes: Vec<(DataId, Value)>,
    },
    /// Fail a running activity: the node drops back to `Activated` (its
    /// `Started` history record withdrawn) and an
    /// [`EngineEvent::ActivityFailed`] is emitted — the signal the
    /// adaptation loop classifies deviations from.
    FailActivity {
        /// The instance.
        instance: InstanceId,
        /// The running activity node.
        node: NodeId,
        /// Application-level failure reason.
        reason: String,
    },
    /// Resolve a pending XOR decision.
    DecideXor {
        /// The instance.
        instance: InstanceId,
        /// The split node awaiting the decision.
        split: NodeId,
        /// The chosen branch target.
        branch_target: NodeId,
    },
    /// Resolve a pending loop decision.
    DecideLoop {
        /// The instance.
        instance: InstanceId,
        /// The loop end node awaiting the decision.
        loop_end: NodeId,
        /// Whether the loop iterates again.
        iterate: bool,
    },
    /// Drive the instance forward automatically, completing at most `max`
    /// activities (`None` = until the instance finishes). [`ProcessEngine::submit`]
    /// drives with the [`DefaultDriver`]; use
    /// [`ProcessEngine::submit_with_driver`] for custom drivers.
    Drive {
        /// The instance.
        instance: InstanceId,
        /// Maximum number of activities to complete.
        max: Option<usize>,
    },
}

impl EngineCommand {
    /// The instance the command targets (`None` for
    /// [`EngineCommand::CreateInstance`], whose instance does not exist
    /// yet).
    pub fn instance(&self) -> Option<InstanceId> {
        match self {
            EngineCommand::CreateInstance { .. } => None,
            EngineCommand::Start { instance, .. }
            | EngineCommand::Complete { instance, .. }
            | EngineCommand::FailActivity { instance, .. }
            | EngineCommand::DecideXor { instance, .. }
            | EngineCommand::DecideLoop { instance, .. }
            | EngineCommand::Drive { instance, .. } => Some(*instance),
        }
    }
}

impl fmt::Display for EngineCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineCommand::CreateInstance { type_name } => write!(f, "create {type_name:?}"),
            EngineCommand::Start { instance, node } => write!(f, "{instance}: start {node}"),
            EngineCommand::Complete {
                instance,
                node,
                writes,
            } => write!(f, "{instance}: complete {node} ({} writes)", writes.len()),
            EngineCommand::FailActivity {
                instance,
                node,
                reason,
            } => write!(f, "{instance}: fail {node} ({reason})"),
            EngineCommand::DecideXor {
                instance,
                split,
                branch_target,
            } => write!(f, "{instance}: decide {split} -> {branch_target}"),
            EngineCommand::DecideLoop {
                instance,
                loop_end,
                iterate,
            } => write!(
                f,
                "{instance}: decide {loop_end} {}",
                if *iterate { "iterate" } else { "exit" }
            ),
            EngineCommand::Drive { instance, max } => match max {
                Some(n) => write!(f, "{instance}: drive (max {n})"),
                None => write!(f, "{instance}: drive to completion"),
            },
        }
    }
}

/// What a submitted command did: the emitted monitor events, the
/// enabled-set delta, and the instance's liveness.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandOutcome {
    /// The affected instance (for [`EngineCommand::CreateInstance`], the
    /// newly created one).
    pub instance: InstanceId,
    /// The monitor events this command emitted, in order. They are also
    /// recorded in [`ProcessEngine::monitor`](crate::Monitor).
    pub events: Vec<EngineEvent>,
    /// Activities that became enabled through this command.
    pub newly_enabled: Vec<NodeId>,
    /// All activities enabled after this command, in node-id order.
    pub enabled: Vec<NodeId>,
    /// Number of activities this command completed (`1` for a
    /// [`EngineCommand::Complete`], the driven count for a
    /// [`EngineCommand::Drive`]).
    pub completed: usize,
    /// Whether the instance has reached its end node.
    pub finished: bool,
}

/// A cached per-instance execution context: the materialised schema, its
/// block structure, and the `(version, bias)` snapshot both were resolved
/// against. Commands and the worklist share these through
/// [`ProcessEngine::exec_context`]; a context is valid exactly as long as
/// the snapshot still matches the live instance (changes, migrations and
/// undos invalidate it).
#[derive(Debug)]
pub(crate) struct ExecCtx {
    /// The instance-specific schema (shared `Arc` for unbiased instances).
    pub schema: Arc<ProcessSchema>,
    /// Its block structure (shared `Arc`; never cloned per command).
    pub blocks: Arc<Blocks>,
    /// Schema version the context was resolved on.
    pub version: u32,
    /// Bias the context was resolved on.
    pub bias: Delta,
    /// Whether the activation fixpoint is total on this schema (no guarded
    /// XOR split without an else branch, no loop end without a usable
    /// continuation) — when it is, completions and decisions cannot fail
    /// after their up-front validation, so the command path skips the
    /// defensive state snapshot entirely.
    pub snapshot_free: bool,
    /// The shared compiled arena of the `(type, version)` this context
    /// resolved to — present exactly when the instance is unbiased and the
    /// engine's compiled path is enabled. Biased instances materialise an
    /// overlaid schema the arena does not describe, so they stay `None`
    /// and every command takes the interpreted path.
    pub compiled: Option<Arc<CompiledSchema>>,
}

/// Whether [`Execution::propagate`] can fail at runtime on this schema: a
/// fully guarded XOR split (all guards may evaluate false → dead end) or a
/// loop end without a loop edge / continuation condition. Computed once
/// per context, amortised over every command it serves.
fn propagate_is_total(schema: &ProcessSchema) -> bool {
    use adept_model::{EdgeKind, NodeKind};
    for n in schema.nodes() {
        match n.kind {
            NodeKind::XorSplit => {
                let mut guards = 0usize;
                let mut has_else = false;
                for e in schema.out_edges_kind(n.id, EdgeKind::Control) {
                    match &e.guard {
                        Some(_) => guards += 1,
                        None => has_else = true,
                    }
                }
                if guards > 0 && !has_else {
                    return false;
                }
            }
            NodeKind::LoopEnd => {
                let usable = schema
                    .out_edges_kind(n.id, EdgeKind::Loop)
                    .next()
                    .is_some_and(|e| e.loop_cond.is_some());
                if !usable {
                    return false;
                }
            }
            _ => {}
        }
    }
    true
}

impl ExecCtx {
    /// A zero-copy interpreter over this context.
    pub fn execution(&self) -> Execution<'_> {
        Execution::with_blocks_ref(&self.schema, &self.blocks)
    }

    /// The execution path for this context: the compiled core when the
    /// arena is cached (unbiased instance, compiled path enabled), the
    /// interpreter otherwise. Both are zero-copy over the context.
    pub fn exec(&self) -> ExecRef<'_> {
        match &self.compiled {
            Some(arena) => ExecRef::Compiled(CompiledExecution::new(&self.schema, arena)),
            None => ExecRef::Interp(Execution::with_blocks_ref(&self.schema, &self.blocks)),
        }
    }

    /// Whether the context still describes the live instance.
    pub fn matches(&self, inst: &StoredInstance) -> bool {
        inst.version == self.version && inst.bias == self.bias
    }
}

/// The command path's execution dispatch: the same operation vocabulary
/// over either tier of the two-tier execution core. Observationally
/// identical by construction (the equivalence suite drives both tiers
/// through full lifecycles and asserts byte-identical states), so the
/// command layer treats the choice as an implementation detail.
#[derive(Debug)]
pub(crate) enum ExecRef<'a> {
    /// The `BTreeMap`-backed interpreter (biased instances, fallback).
    Interp(Execution<'a>),
    /// The flat arena core (unbiased instances on a committed version).
    Compiled(CompiledExecution<'a>),
}

impl<'a> ExecRef<'a> {
    /// The schema both tiers execute.
    pub fn schema(&self) -> &'a ProcessSchema {
        match self {
            ExecRef::Interp(e) => e.schema,
            ExecRef::Compiled(c) => c.schema,
        }
    }

    /// Whether this is the compiled tier (for the path counters).
    pub fn is_compiled(&self) -> bool {
        matches!(self, ExecRef::Compiled(_))
    }

    /// See [`Execution::init`].
    pub fn init(&self) -> Result<InstanceState, RuntimeError> {
        match self {
            ExecRef::Interp(e) => e.init(),
            ExecRef::Compiled(c) => c.init(),
        }
    }

    /// See [`Execution::enabled`].
    pub fn enabled(&self, st: &InstanceState) -> Vec<NodeId> {
        match self {
            ExecRef::Interp(e) => e.enabled(st),
            ExecRef::Compiled(c) => c.enabled(st),
        }
    }

    /// See [`Execution::is_finished`].
    pub fn is_finished(&self, st: &InstanceState) -> bool {
        match self {
            ExecRef::Interp(e) => e.is_finished(st),
            ExecRef::Compiled(c) => c.is_finished(st),
        }
    }

    /// See [`Execution::start_activity`].
    pub fn start_activity(&self, st: &mut InstanceState, n: NodeId) -> Result<(), RuntimeError> {
        match self {
            ExecRef::Interp(e) => e.start_activity(st, n),
            ExecRef::Compiled(c) => c.start_activity(st, n),
        }
    }

    /// See [`Execution::fail_activity`].
    pub fn fail_activity(&self, st: &mut InstanceState, n: NodeId) -> Result<(), RuntimeError> {
        match self {
            ExecRef::Interp(e) => e.fail_activity(st, n),
            ExecRef::Compiled(c) => c.fail_activity(st, n),
        }
    }

    /// See [`Execution::complete_activity`].
    pub fn complete_activity(
        &self,
        st: &mut InstanceState,
        n: NodeId,
        writes: Vec<(DataId, Value)>,
    ) -> Result<(), RuntimeError> {
        match self {
            ExecRef::Interp(e) => e.complete_activity(st, n, writes),
            ExecRef::Compiled(c) => c.complete_activity(st, n, writes),
        }
    }

    /// See [`Execution::decide_xor`].
    pub fn decide_xor(
        &self,
        st: &mut InstanceState,
        split: NodeId,
        branch_target: NodeId,
    ) -> Result<(), RuntimeError> {
        match self {
            ExecRef::Interp(e) => e.decide_xor(st, split, branch_target),
            ExecRef::Compiled(c) => c.decide_xor(st, split, branch_target),
        }
    }

    /// See [`Execution::decide_loop`].
    pub fn decide_loop(
        &self,
        st: &mut InstanceState,
        loop_end: NodeId,
        iterate: bool,
    ) -> Result<(), RuntimeError> {
        match self {
            ExecRef::Interp(e) => e.decide_loop(st, loop_end, iterate),
            ExecRef::Compiled(c) => c.decide_loop(st, loop_end, iterate),
        }
    }

    /// See [`Execution::run_observed`].
    pub fn run_observed(
        &self,
        st: &mut InstanceState,
        driver: &mut dyn Driver,
        max_activities: Option<usize>,
        observe: &mut dyn FnMut(RunEvent),
    ) -> Result<usize, RuntimeError> {
        match self {
            ExecRef::Interp(e) => e.run_observed(st, driver, max_activities, observe),
            ExecRef::Compiled(c) => c.run_observed(st, driver, max_activities, observe),
        }
    }
}

/// How a group application ended inside the store's write lock.
enum GroupApply {
    /// The context no longer matches the instance; rebuild and retry.
    Stale,
    /// The group mutated state but its post-image could not be journaled;
    /// the mutation was rolled back and nothing is visible.
    Journal(StorageError),
    /// The group was applied; per-command results plus the post-group
    /// worklist snapshot (install epoch drawn under the lock).
    Applied {
        results: Vec<Result<CommandOutcome, EngineError>>,
        epoch: u64,
        items: Vec<crate::worklist::WorkItem>,
    },
}

/// Bounded retries against concurrent context invalidation. Each retry
/// re-resolves the context from the live instance, so starvation needs a
/// competing writer between every resolve and apply.
const MAX_GROUP_RETRIES: usize = 8;

impl ProcessEngine {
    /// Submits one command, driving [`EngineCommand::Drive`] with the
    /// [`DefaultDriver`]. Every state transition flows through this path:
    /// context resolution (cached), in-place application under the store
    /// lock, monitor events, worklist index maintenance.
    pub fn submit(&self, cmd: EngineCommand) -> Result<CommandOutcome, EngineError> {
        self.submit_with_driver(cmd, &mut DefaultDriver)
    }

    /// [`ProcessEngine::submit`] with a custom [`Driver`] resolving the
    /// decisions and output values of [`EngineCommand::Drive`].
    pub fn submit_with_driver(
        &self,
        cmd: EngineCommand,
        driver: &mut dyn Driver,
    ) -> Result<CommandOutcome, EngineError> {
        match cmd.instance() {
            None => {
                let EngineCommand::CreateInstance { type_name } = &cmd else {
                    unreachable!("only CreateInstance has no instance");
                };
                self.apply_create(type_name)
            }
            Some(id) => {
                let mut results = self.apply_group(id, std::slice::from_ref(&cmd), driver);
                results
                    .pop()
                    .expect("invariant: apply_group returns one result per command")
            }
        }
    }

    /// Submits a batch of commands, returning one result per command **in
    /// submission order**. Commands are grouped per instance (relative
    /// order within an instance preserved); each group resolves its
    /// instance context once and commits under a single atomic store
    /// update. A failed command yields its own `Err` without aborting the
    /// rest of its group — per instance, the observable semantics match
    /// submitting the commands one by one. Across instances the monitor
    /// may interleave differently than one-by-one submission would
    /// (creations execute first, then each instance's group in
    /// first-occurrence order); within one instance event order is always
    /// preserved.
    pub fn submit_batch(
        &self,
        cmds: Vec<EngineCommand>,
    ) -> Vec<Result<CommandOutcome, EngineError>> {
        self.submit_batch_with_driver(cmds, &mut DefaultDriver)
    }

    /// [`ProcessEngine::submit_batch`] with a custom [`Driver`] shared by
    /// every [`EngineCommand::Drive`] in the batch.
    pub fn submit_batch_with_driver(
        &self,
        cmds: Vec<EngineCommand>,
        driver: &mut dyn Driver,
    ) -> Vec<Result<CommandOutcome, EngineError>> {
        let mut results: Vec<Option<Result<CommandOutcome, EngineError>>> =
            (0..cmds.len()).map(|_| None).collect();
        // Group per instance, keeping each instance's command order and
        // the groups in first-occurrence order (the map only indexes into
        // the Vec, so grouping stays O(n log n) for huge mixed batches).
        let mut groups: Vec<(InstanceId, Vec<(usize, EngineCommand)>)> = Vec::new();
        let mut group_of: std::collections::BTreeMap<InstanceId, usize> =
            std::collections::BTreeMap::new();
        for (idx, cmd) in cmds.into_iter().enumerate() {
            match cmd.instance() {
                None => {
                    let EngineCommand::CreateInstance { type_name } = &cmd else {
                        unreachable!("only CreateInstance has no instance");
                    };
                    results[idx] = Some(self.apply_create(type_name));
                }
                Some(id) => match group_of.get(&id) {
                    Some(&g) => groups[g].1.push((idx, cmd)),
                    None => {
                        group_of.insert(id, groups.len());
                        groups.push((id, vec![(idx, cmd)]));
                    }
                },
            }
        }
        for (id, group) in groups {
            let batch: Vec<EngineCommand> = group.iter().map(|(_, c)| c.clone()).collect();
            let outs = self.apply_group(id, &batch, driver);
            for ((idx, _), out) in group.into_iter().zip(outs) {
                results[idx] = Some(out);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("invariant: every submitted command was routed to exactly one group"))
            .collect()
    }

    /// Creates an instance on the newest version of a type and seeds its
    /// worklist index entry.
    fn apply_create(&self, type_name: &str) -> Result<CommandOutcome, EngineError> {
        let version = self
            .repo
            .latest_version(type_name)
            .ok_or_else(|| EngineError::NotFound(format!("process type {type_name:?}")))?;
        let dep = self
            .repo
            .deployed(type_name, version)
            .ok_or_else(|| EngineError::NotFound(format!("version {version}")))?;
        let arena = self
            .compiled_enabled()
            .then(|| self.repo.compiled(type_name, version))
            .flatten();
        let ex = match &arena {
            Some(a) => ExecRef::Compiled(CompiledExecution::new(&dep.schema, a)),
            None => ExecRef::Interp(dep.execution()),
        };
        self.note_path(ex.is_compiled());
        let st = ex.init()?;
        let enabled = ex.enabled(&st);
        let finished = ex.is_finished(&st);
        // The id is allocated and journaled BEFORE the instance becomes
        // visible (write-ahead); a crash between journal and insert
        // replays as a fresh, untouched instance — indistinguishable from
        // a crash just after the insert.
        let id = self.store.allocate_id();
        self.journal(|| WalRecord::Created {
            id,
            type_name: type_name.to_string(),
            version,
            state: st.clone(),
        })?;
        let items = items_for(&dep.schema, &enabled, id, type_name, version);
        // The epoch is drawn BEFORE the instance becomes visible: any
        // concurrent command on the new id necessarily runs after
        // insert_new and therefore draws a larger epoch — its fresher
        // install beats this initial one, never the reverse.
        let epoch = self.wl_index.begin_install(id);
        self.store.insert_new(id, type_name, version, st);
        self.wl_index.finish_install(id, epoch, items);
        let events = vec![EngineEvent::InstanceCreated {
            instance: id,
            version,
        }];
        self.monitor.record_all(events.iter().cloned());
        Ok(CommandOutcome {
            instance: id,
            newly_enabled: enabled.clone(),
            enabled,
            completed: 0,
            finished,
            events,
        })
    }

    /// Applies a group of commands for one instance, in order. Discrete
    /// transitions (start/complete/decide) run in contiguous segments
    /// under a single store write lock; each [`EngineCommand::Drive`]
    /// runs **outside** the lock on a cloned state — its driver is
    /// arbitrary user code (calling back into the engine must not
    /// deadlock, and a long run must not stall every other instance) —
    /// and installs with a compare-and-set on the pre-drive state.
    pub(crate) fn apply_group(
        &self,
        id: InstanceId,
        cmds: &[EngineCommand],
        driver: &mut dyn Driver,
    ) -> Vec<Result<CommandOutcome, EngineError>> {
        let mut results = Vec::with_capacity(cmds.len());
        let mut i = 0;
        while i < cmds.len() {
            if matches!(cmds[i], EngineCommand::Drive { .. }) {
                results.push(self.apply_drive(id, &cmds[i], driver));
                i += 1;
            } else {
                let end = cmds[i..]
                    .iter()
                    .position(|c| matches!(c, EngineCommand::Drive { .. }))
                    .map(|p| i + p)
                    .unwrap_or(cmds.len());
                results.extend(self.apply_ops(id, &cmds[i..end]));
                i = end;
            }
        }
        results
    }

    /// Applies a segment of discrete commands: one context resolution,
    /// one store write lock, one worklist index install, one monitor
    /// append — however many commands the segment carries.
    fn apply_ops(
        &self,
        id: InstanceId,
        cmds: &[EngineCommand],
    ) -> Vec<Result<CommandOutcome, EngineError>> {
        for _ in 0..MAX_GROUP_RETRIES {
            let ctx = match self.exec_context(id) {
                Ok(ctx) => ctx,
                Err(e) => return cmds.iter().map(|_| Err(e.clone())).collect(),
            };
            let wal = self.txn_log.wal();
            let applied = self.store.update(id, |inst| {
                if !ctx.matches(inst) {
                    return GroupApply::Stale;
                }
                let ex = ctx.exec();
                self.note_path(ex.is_compiled());
                let mut was_finished = ex.is_finished(&inst.state);
                // The pre-image is kept only when the journal can actually
                // fail — the rollback that keeps an unjournaled mutation
                // from ever becoming visible.
                let pre = wal.fallible().then(|| inst.state.clone());
                // The post-command enabled set of command k is the
                // pre-command set of k+1 — scanned once, not twice.
                let mut carry_enabled = None;
                let results: Vec<Result<CommandOutcome, EngineError>> = cmds
                    .iter()
                    .map(|cmd| {
                        apply_cmd(
                            &ex,
                            inst,
                            cmd,
                            &mut was_finished,
                            ctx.snapshot_free,
                            &mut carry_enabled,
                        )
                    })
                    .collect();
                // One post-image per mutating group, appended while the
                // shard lock is held so WAL order equals visibility order.
                if wal.enabled() && results.iter().any(|r| r.is_ok()) {
                    if let Err(e) = wal.append(WalRecord::StateChanged {
                        id,
                        state: inst.state.clone(),
                    }) {
                        if let Some(pre) = pre {
                            inst.state = pre;
                        }
                        return GroupApply::Journal(e);
                    }
                }
                // The install epoch is drawn while the store lock is held,
                // so index installs order exactly like store commits. It
                // is registered pending (store shard → index shard, the
                // documented order) so delta cursors wait for the install
                // below rather than skip past it.
                // The last command's carried enabled set IS the post-group
                // set — no extra marking scan for the worklist install.
                let enabled = carry_enabled.unwrap_or_else(|| ex.enabled(&inst.state));
                GroupApply::Applied {
                    results,
                    epoch: self.wl_index.begin_install(id),
                    items: items_for(ex.schema(), &enabled, id, &inst.type_name, inst.version),
                }
            });
            match applied {
                None => {
                    let e = EngineError::NotFound(format!("{id}"));
                    return cmds.iter().map(|_| Err(e.clone())).collect();
                }
                Some(GroupApply::Stale) => {
                    self.invalidate_instance(id);
                    continue;
                }
                Some(GroupApply::Journal(e)) => {
                    let e = EngineError::Storage(e);
                    return cmds.iter().map(|_| Err(e.clone())).collect();
                }
                Some(GroupApply::Applied {
                    results,
                    epoch,
                    items,
                }) => {
                    self.wl_index.finish_install(id, epoch, items);
                    self.monitor.record_all(
                        results
                            .iter()
                            .filter_map(|r| r.as_ref().ok())
                            .flat_map(|o| o.events.iter().cloned()),
                    );
                    return results;
                }
            }
        }
        let e = EngineError::Change(ChangeError::Precondition(format!(
            "concurrent modification: context of {id} kept changing during submission"
        )));
        cmds.iter().map(|_| Err(e.clone())).collect()
    }

    /// Drives an instance with user driver code **outside every engine
    /// lock**: the run works on a cloned state and commits with a
    /// compare-and-set against the pre-drive snapshot, so a concurrent
    /// command neither deadlocks nor gets clobbered (a lost CAS retries
    /// the drive from the fresh state). A driver error leaves the store
    /// untouched, like the old `run_instance` did.
    fn apply_drive(
        &self,
        id: InstanceId,
        cmd: &EngineCommand,
        driver: &mut dyn Driver,
    ) -> Result<CommandOutcome, EngineError> {
        let EngineCommand::Drive { max, .. } = cmd else {
            unreachable!("apply_drive only receives Drive commands");
        };
        for _ in 0..MAX_GROUP_RETRIES {
            let ctx = self.exec_context(id)?;
            let pre = self
                .store
                .with_instance(id, |inst| ctx.matches(inst).then(|| inst.state.clone()))
                .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
            let Some(pre) = pre else {
                self.invalidate_instance(id);
                continue;
            };
            let ex = ctx.exec();
            self.note_path(ex.is_compiled());
            let was_finished = ex.is_finished(&pre);
            let before = ex.enabled(&pre);
            let mut st = pre.clone();
            let mut events = Vec::new();
            let completed = ex.run_observed(&mut st, driver, *max, &mut |ev| {
                events.push(match ev {
                    RunEvent::Started(n) => EngineEvent::ActivityStarted {
                        instance: id,
                        node: n,
                    },
                    RunEvent::Completed(n) => EngineEvent::ActivityCompleted {
                        instance: id,
                        node: n,
                    },
                    RunEvent::XorDecided { split, target } => EngineEvent::DecisionMade {
                        instance: id,
                        node: split,
                        choice: format!("branch {target}"),
                    },
                    RunEvent::LoopDecided { loop_end, iterate } => EngineEvent::DecisionMade {
                        instance: id,
                        node: loop_end,
                        choice: if iterate { "iterate" } else { "exit" }.to_string(),
                    },
                });
            })?;
            let after = ex.enabled(&st);
            let finished = ex.is_finished(&st);
            if finished && !was_finished {
                events.push(EngineEvent::InstanceFinished { instance: id });
            }
            let wal = self.txn_log.wal();
            let installed = self.store.update(id, |inst| {
                if !ctx.matches(inst) || inst.state != pre {
                    return None;
                }
                // Write-ahead: the driven post-image is journaled before
                // it replaces the visible state, so a journal failure
                // leaves the instance exactly at `pre` — no rollback.
                if wal.enabled() && st != pre {
                    if let Err(e) = wal.append(WalRecord::StateChanged {
                        id,
                        state: st.clone(),
                    }) {
                        return Some(Err(e));
                    }
                }
                inst.state = st;
                Some(Ok((
                    self.wl_index.begin_install(id),
                    items_for(ex.schema(), &after, id, &inst.type_name, inst.version),
                )))
            });
            match installed {
                None => return Err(EngineError::NotFound(format!("{id}"))),
                Some(None) => continue, // lost the CAS; re-drive from fresh state
                Some(Some(Err(e))) => return Err(EngineError::Storage(e)),
                Some(Some(Ok((epoch, items)))) => {
                    self.wl_index.finish_install(id, epoch, items);
                    self.monitor.record_all(events.iter().cloned());
                    return Ok(CommandOutcome {
                        instance: id,
                        newly_enabled: enabled_diff(&before, &after),
                        enabled: after,
                        completed,
                        finished,
                        events,
                    });
                }
            }
        }
        Err(EngineError::Change(ChangeError::Precondition(format!(
            "concurrent modification: {id} kept changing during the drive"
        ))))
    }

    /// Resolves (or returns the cached) execution context of an instance.
    pub(crate) fn exec_context(&self, id: InstanceId) -> Result<Arc<ExecCtx>, EngineError> {
        if let Some(ctx) = self.ctx_cache.get_cloned(id) {
            let live = self
                .store
                .with_instance(id, |inst| ctx.matches(inst))
                .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
            // A cached context is also stale when the path selector
            // flipped since it was built — rebuild so toggling the
            // compiled core takes effect on the next resolution.
            let path_current =
                ctx.compiled.is_some() == (ctx.bias.is_empty() && self.compiled_enabled());
            if live && path_current {
                return Ok(ctx);
            }
        }
        self.rebuild_context(id)
    }

    /// Builds a fresh context from the live instance and caches it.
    fn rebuild_context(&self, id: InstanceId) -> Result<Arc<ExecCtx>, EngineError> {
        let (type_name, version, bias) = self
            .store
            .with_instance(id, |inst| {
                (inst.type_name.clone(), inst.version, inst.bias.clone())
            })
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        let schema = self
            .store
            .schema_of(&self.repo, id)
            .ok_or_else(|| EngineError::NotFound(format!("schema of {id}")))?;
        let blocks = if bias.is_empty() {
            match self.repo.deployed(&type_name, version) {
                Some(dep) => dep.blocks,
                None => {
                    return Err(EngineError::NotFound(format!(
                        "deployed version {version} of {type_name:?}"
                    )))
                }
            }
        } else {
            Arc::new(
                Blocks::analyze(&schema)
                    .map_err(|e| EngineError::Change(ChangeError::Precondition(e.to_string())))?,
            )
        };
        // The compiled arena only describes committed versions: biased
        // instances (and engines with the compiled path disabled) leave it
        // out and every command falls back to the interpreter.
        let compiled = if bias.is_empty() && self.compiled_enabled() {
            self.repo.compiled(&type_name, version)
        } else {
            None
        };
        let ctx = Arc::new(ExecCtx {
            snapshot_free: propagate_is_total(&schema),
            schema,
            blocks,
            version,
            bias,
            compiled,
        });
        self.ctx_cache.insert(id, ctx.clone());
        // Closes the remove race: if `remove_instance` cleared the cache
        // between our store read and this insert, the entry would be
        // unreachable garbage forever (the id never reappears in
        // `store.ids()`, so nothing would evict it). Removal deletes the
        // store entry *before* clearing the cache, so re-checking the
        // store after inserting catches every interleaving.
        if self.store.with_instance(id, |_| ()).is_none() {
            self.ctx_cache.remove(id);
            return Err(EngineError::NotFound(format!("{id}")));
        }
        Ok(ctx)
    }

    /// Drops the cached context and worklist entry of an instance — the
    /// invalidation hook change-transaction commits, migrations and undos
    /// call after rebasing an instance onto a different schema.
    pub(crate) fn invalidate_instance(&self, id: InstanceId) {
        self.ctx_cache.remove(id);
        self.wl_index.invalidate(id);
    }

    /// The change-transaction commit → worklist hook: every commit drops
    /// the instance's cached context; a commit whose
    /// [`touched nodes`](adept_core::CommittedTxn::touched_nodes) include
    /// control structure additionally refreshes the worklist entry
    /// eagerly, so change-heavy workloads keep the index hot instead of
    /// paying the recompute on the next worklist read.
    pub(crate) fn note_committed_change(
        &self,
        id: InstanceId,
        committed: &adept_core::CommittedTxn,
    ) {
        self.invalidate_instance(id);
        if !committed.touched_nodes().is_empty() {
            let _ = self.compute_items(id);
        }
    }
}

/// Applies one command to an instance's state in place. On error the state
/// is left exactly as before the command, matching the discard-on-error
/// semantics of the old verbs: commands that can only fail *before*
/// mutating validate up front, and the remaining post-mutation failure
/// modes (a non-total activation fixpoint, a mid-run driver error) restore
/// a snapshot — which `snapshot_free` contexts skip entirely.
///
/// `carry_enabled` threads the post-command enabled set to the next
/// command of the same group, halving the marking scans of a batch.
fn apply_cmd(
    ex: &ExecRef<'_>,
    inst: &mut StoredInstance,
    cmd: &EngineCommand,
    was_finished: &mut bool,
    snapshot_free: bool,
    carry_enabled: &mut Option<Vec<NodeId>>,
) -> Result<CommandOutcome, EngineError> {
    let id = inst.id;
    let before = carry_enabled
        .take()
        .unwrap_or_else(|| ex.enabled(&inst.state));
    let mut events = Vec::new();
    let mut completed = 0usize;
    let fail = |e: EngineError,
                inst: &mut StoredInstance,
                snapshot: Option<adept_state::InstanceState>,
                carry: &mut Option<Vec<NodeId>>,
                before: Vec<NodeId>| {
        if let Some(s) = snapshot {
            inst.state = s;
        }
        // The state is unchanged, so the next command's "before" is too.
        *carry = Some(before);
        Err(e)
    };
    match cmd {
        EngineCommand::CreateInstance { .. } => {
            unreachable!("creates are resolved before grouping")
        }
        EngineCommand::Start { node, .. } => {
            // start_activity validates before mutating; never snapshots.
            if let Err(e) = ex.start_activity(&mut inst.state, *node) {
                return fail(e.into(), inst, None, carry_enabled, before);
            }
            events.push(EngineEvent::ActivityStarted {
                instance: id,
                node: *node,
            });
        }
        EngineCommand::Complete { node, writes, .. } => {
            let snapshot = (!snapshot_free).then(|| inst.state.clone());
            if let Err(e) = ex.complete_activity(&mut inst.state, *node, writes.clone()) {
                return fail(e.into(), inst, snapshot, carry_enabled, before);
            }
            events.push(EngineEvent::ActivityCompleted {
                instance: id,
                node: *node,
            });
            completed = 1;
        }
        EngineCommand::FailActivity { node, reason, .. } => {
            // fail_activity validates before mutating; never snapshots.
            if let Err(e) = ex.fail_activity(&mut inst.state, *node) {
                return fail(e.into(), inst, None, carry_enabled, before);
            }
            events.push(EngineEvent::ActivityFailed {
                instance: id,
                node: *node,
                reason: reason.clone(),
            });
        }
        EngineCommand::DecideXor {
            split,
            branch_target,
            ..
        } => {
            let snapshot = (!snapshot_free).then(|| inst.state.clone());
            if let Err(e) = ex.decide_xor(&mut inst.state, *split, *branch_target) {
                return fail(e.into(), inst, snapshot, carry_enabled, before);
            }
            events.push(EngineEvent::DecisionMade {
                instance: id,
                node: *split,
                choice: format!("branch {branch_target}"),
            });
        }
        EngineCommand::DecideLoop {
            loop_end, iterate, ..
        } => {
            let snapshot = (!snapshot_free).then(|| inst.state.clone());
            if let Err(e) = ex.decide_loop(&mut inst.state, *loop_end, *iterate) {
                return fail(e.into(), inst, snapshot, carry_enabled, before);
            }
            events.push(EngineEvent::DecisionMade {
                instance: id,
                node: *loop_end,
                choice: if *iterate { "iterate" } else { "exit" }.to_string(),
            });
        }
        EngineCommand::Drive { .. } => {
            unreachable!("drives run outside the store lock (apply_drive)")
        }
    }
    let after = ex.enabled(&inst.state);
    let finished = ex.is_finished(&inst.state);
    if finished && !*was_finished {
        events.push(EngineEvent::InstanceFinished { instance: id });
        *was_finished = true;
    }
    *carry_enabled = Some(after.clone());
    Ok(CommandOutcome {
        instance: id,
        newly_enabled: enabled_diff(&before, &after),
        enabled: after,
        completed,
        finished,
        events,
    })
}
