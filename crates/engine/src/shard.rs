//! Sharded per-instance side tables.
//!
//! The engine keeps several maps keyed by [`InstanceId`] next to the
//! (itself sharded) instance store: the execution-context cache, the
//! worklist index and the worklist-failure dedupe set. Guarding each with
//! one global `RwLock` would reintroduce exactly the contention the
//! sharded store removes — every command touches the context cache and
//! the worklist index — so they all build on the same
//! [`adept_storage::Shards`] primitive the store uses: one shard-selection
//! recipe, one hash, and an instance maps to the same shard *index* in
//! every table.
//!
//! Lock order: every table is built from [`adept_storage::ordered`]
//! locks carrying a declared [`LockClass`], so nesting between tables
//! (and against the store shards and WAL) is machine-checked in debug
//! builds and documented in `docs/LOCK_ORDER.md`.

use adept_model::InstanceId;
use adept_storage::ordered::LockClass;
use adept_storage::{Shards, DEFAULT_SHARD_COUNT};
use std::collections::BTreeMap;

/// A sharded `InstanceId → V` map. All operations take one shard lock.
#[derive(Debug)]
pub(crate) struct ShardedMap<V> {
    shards: Shards<BTreeMap<InstanceId, V>>,
}

impl<V> ShardedMap<V> {
    /// An empty map whose shard locks carry `class`.
    pub fn new(class: &'static LockClass) -> Self {
        Self {
            shards: Shards::new(class, DEFAULT_SHARD_COUNT),
        }
    }
    /// Clone of the value under `id`, if present (shard read lock).
    pub fn get_cloned(&self, id: InstanceId) -> Option<V>
    where
        V: Clone,
    {
        self.shards.for_id(id).read().get(&id).cloned()
    }

    /// Inserts, returning the previous value (shard write lock).
    pub fn insert(&self, id: InstanceId, value: V) -> Option<V> {
        self.shards.for_id(id).write().insert(id, value)
    }

    /// Removes, returning the previous value (shard write lock).
    pub fn remove(&self, id: InstanceId) -> Option<V> {
        self.shards.for_id(id).write().remove(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let map: ShardedMap<u32> = ShardedMap::new(&adept_storage::ordered::classes::TEST_SUPPORT);
        assert_eq!(map.shards.count(), DEFAULT_SHARD_COUNT);
        for i in 1..=100u64 {
            assert!(map.insert(InstanceId(i), i as u32).is_none());
        }
        assert_eq!(map.get_cloned(InstanceId(42)), Some(42));
        assert_eq!(map.insert(InstanceId(42), 7), Some(42), "returns previous");
        assert_eq!(map.remove(InstanceId(42)), Some(7));
        assert_eq!(map.get_cloned(InstanceId(42)), None);
        assert_eq!(map.remove(InstanceId(42)), None);
    }
}
