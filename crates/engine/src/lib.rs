//! # adept-engine — the ADEPT2 process engine
//!
//! The runtime facade tying the reproduction together (the paper's
//! "number of buildtime and runtime components"):
//!
//! * [`ProcessEngine`] — deploy templates, create and execute instances,
//!   serve worklists, apply **ad-hoc instance changes** with state
//!   preconditions, **evolve process types** and **migrate instance
//!   populations** (optionally with parallel worker threads);
//! * [`worklist`] — work items and role-based claiming;
//! * [`monitor`] — the monitoring component: an event log with logical
//!   timestamps plus DOT/text visualisation of instance states (the demo's
//!   Fig. 3 views).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod monitor;
pub mod worklist;

pub use engine::{EngineError, ProcessEngine};
pub use monitor::{render_instance_dot, render_instance_summary, EngineEvent, Monitor};
pub use worklist::WorkItem;
