//! # adept-engine — the ADEPT2 process engine
//!
//! The runtime facade tying the reproduction together (the paper's
//! "number of buildtime and runtime components"):
//!
//! * [`ProcessEngine`] — deploy templates, create and execute instances,
//!   serve worklists, **evolve process types** and **migrate instance
//!   populations** (optionally with parallel worker threads);
//! * [`session`] — the transactional change surface: every dynamic change
//!   — ad-hoc instance deviation or type evolution — is a **change
//!   session** driving the stage → preview → commit lifecycle;
//! * [`worklist`] — work items and role-based claiming;
//! * [`monitor`] — the monitoring component: an event log with logical
//!   timestamps plus DOT/text visualisation of instance states (the demo's
//!   Fig. 3 views).
//!
//! ## Changing a running instance: stage → preview → commit
//!
//! ```
//! use adept_core::{ChangeOp, NewActivity};
//! use adept_engine::ProcessEngine;
//! use adept_model::SchemaBuilder;
//!
//! let engine = ProcessEngine::new();
//! let mut b = SchemaBuilder::new("expense");
//! b.activity("submit");
//! b.activity("payout");
//! let name = engine.deploy(b.build().unwrap()).unwrap();
//! let id = engine.create_instance(&name).unwrap();
//! let v1 = engine.repo.deployed(&name, 1).unwrap();
//! let submit = v1.schema.node_by_name("submit").unwrap().id;
//! let payout = v1.schema.node_by_name("payout").unwrap().id;
//!
//! // Stage any number of operations against a private overlay.
//! let mut session = engine.begin_change(id).unwrap();
//! let audit = session.stage(&ChangeOp::SerialInsert {
//!     activity: NewActivity::named("audit"),
//!     pred: submit,
//!     succ: payout,
//! }).unwrap().inserted_activity().unwrap();
//! session.stage(&ChangeOp::SetActivityAttributes {
//!     node: audit,
//!     attrs: adept_model::ActivityAttributes { role: Some("auditor".into()), ..Default::default() },
//! }).unwrap();
//!
//! // Pure dry run: nothing in the engine changes.
//! let preview = session.preview().unwrap();
//! assert!(preview.is_committable());
//!
//! // Atomic commit: ONE verification pass + ONE compliance pass for the
//! // whole batch; a failure would leave the instance bit-identical.
//! let receipt = session.commit().unwrap();
//! assert_eq!(receipt.ops, 2);
//! assert_eq!(engine.txn_log.len(), 1);
//! ```
//!
//! Type evolutions use the same lifecycle via
//! [`ProcessEngine::begin_evolution`]; committed transactions land in the
//! persisted [`adept_storage::TxnLog`] (`engine.txn_log`) with their
//! recorded inverses. The single-op entry points
//! [`ProcessEngine::ad_hoc_change`] / [`ProcessEngine::evolve_type`]
//! remain as deprecated wrappers over one-op transactions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod monitor;
pub mod session;
pub mod worklist;

pub use engine::{EngineError, ProcessEngine};
pub use monitor::{render_instance_dot, render_instance_summary, EngineEvent, Monitor};
pub use session::{ChangeSession, TxnReceipt};
pub use worklist::WorkItem;
