//! # adept-engine — the ADEPT2 process engine
//!
//! The runtime facade tying the reproduction together (the paper's
//! "number of buildtime and runtime components"):
//!
//! * [`command`] — the **unified command/event execution API**: every
//!   state transition is a typed [`EngineCommand`] submitted through
//!   [`ProcessEngine::submit`] or, batched, through
//!   [`ProcessEngine::submit_batch`], returning a [`CommandOutcome`] with
//!   the emitted events, the enabled-set delta and a finished flag;
//! * [`session`] — the transactional change surface: every dynamic change
//!   — ad-hoc instance deviation or type evolution — is a **change
//!   session** driving the stage → preview → commit lifecycle;
//! * [`worklist`] — work items, role-based claiming, and the
//!   incrementally maintained worklist index command outcomes keep
//!   current;
//! * [`monitor`] — the monitoring component: an event log with logical
//!   timestamps plus DOT/text visualisation of instance states (the demo's
//!   Fig. 3 views). Decisions, starts, completions — driven or manual —
//!   all land here, gap-free.
//!
//! ## The hot path: compiled schema arenas
//!
//! Command execution resolves each instance's cached `ExecCtx` once per
//! batch and dispatches it to one of two observationally identical
//! tiers: the interpreted `adept_state::Execution`, or — for unbiased
//! instances of a committed version, the default — the **compiled**
//! core (`adept_state::CompiledExecution` over a shared
//! `Arc<adept_model::CompiledSchema>` arena cached in the schema
//! repository, one compile per version). Ad-hoc-biased instances always
//! fall back to the interpreter; redeploying a type evicts its arenas.
//! [`ProcessEngine::set_compiled_enabled`] flips the tier at run time
//! and [`ProcessEngine::exec_path_counts`] reports the split — see
//! `docs/EXECUTION_CORE.md` for the full invalidation and fallback
//! rules.
//!
//! ## Executing instances: submit / submit_batch
//!
//! ```
//! use adept_engine::{EngineCommand, ProcessEngine};
//! use adept_model::SchemaBuilder;
//!
//! let engine = ProcessEngine::new();
//! let mut b = SchemaBuilder::new("expense");
//! b.activity("submit");
//! b.activity("payout");
//! let name = engine.deploy(b.build().unwrap()).unwrap();
//!
//! // Every transition is a typed command; outcomes report what changed.
//! let created = engine.submit(EngineCommand::CreateInstance {
//!     type_name: name.clone(),
//! }).unwrap();
//! let id = created.instance;
//! let submit = created.newly_enabled[0];
//!
//! // Batched submission: the instance's (schema, blocks) context is
//! // resolved ONCE and the whole group commits under a single atomic
//! // store update — the per-verb get → clone → update round-trips (and
//! // their lost-update race) are gone.
//! let outcomes = engine.submit_batch(vec![
//!     EngineCommand::Start { instance: id, node: submit },
//!     EngineCommand::Complete { instance: id, node: submit, writes: vec![] },
//!     EngineCommand::Drive { instance: id, max: None },
//! ]);
//! assert!(outcomes.iter().all(|o| o.is_ok()));
//! assert!(outcomes[2].as_ref().unwrap().finished);
//!
//! // The worklist is served from an incrementally maintained index that
//! // command outcomes keep current (and change commits invalidate).
//! assert!(engine.worklist().is_empty());
//! ```
//!
//! The old per-verb entry points (`start_activity`, `complete_activity`,
//! `decide_xor`, `decide_loop`, `run_instance`) remain as deprecated thin
//! wrappers over `submit` — same transitions, same events, one code path.
//! Use [`ProcessEngine::try_worklist`] to surface instances whose store
//! entry or schema no longer resolves instead of skipping them.
//!
//! ## Streaming consumers: event and worklist cursors
//!
//! Pollers shouldn't clone the world. The monitor's event log is a
//! bounded, sharded ring: [`Monitor::subscribe`] returns an
//! [`EventCursor`] that drains only the events recorded since the last
//! poll, and a cursor that falls behind the retention window gets an
//! explicit [`EventLag`] error — never a silent gap. The worklist has
//! the same shape: [`ProcessEngine::worklist_delta`] returns what
//! changed since an epoch instead of every item.
//!
//! ```
//! use adept_engine::{EngineCommand, ProcessEngine};
//! use adept_model::SchemaBuilder;
//!
//! let engine = ProcessEngine::new();
//! let mut b = SchemaBuilder::new("expense");
//! b.activity("submit");
//! let name = engine.deploy(b.build().unwrap()).unwrap();
//!
//! // Tail the event stream: only events recorded after subscribing.
//! let mut events = engine.monitor.subscribe();
//! // Follow the worklist incrementally: epoch 0 bootstraps everything.
//! let mut delta = engine.worklist_delta(0);
//! assert!(delta.added.is_empty());
//!
//! let id = engine.create_instance(&name).unwrap();
//! assert!(!events.poll(&engine.monitor).unwrap().is_empty());
//!
//! // Only the change since the last poll comes back: apply it by
//! // dropping `invalidated` ids and replacing `added` item sets.
//! delta = engine.worklist_delta(delta.epoch);
//! assert_eq!(delta.added.len(), 1);
//! assert_eq!(delta.added[0].0, id);
//!
//! engine.submit(EngineCommand::Drive { instance: id, max: None }).unwrap();
//! delta = engine.worklist_delta(delta.epoch);
//! assert_eq!(delta.added, vec![(id, vec![])]); // finished: offers nothing
//! ```
//!
//! ## Changing a running instance: stage → preview → commit
//!
//! ```
//! use adept_core::{ChangeOp, NewActivity};
//! use adept_engine::ProcessEngine;
//! use adept_model::SchemaBuilder;
//!
//! let engine = ProcessEngine::new();
//! let mut b = SchemaBuilder::new("expense");
//! b.activity("submit");
//! b.activity("payout");
//! let name = engine.deploy(b.build().unwrap()).unwrap();
//! let id = engine.create_instance(&name).unwrap();
//! let v1 = engine.repo.deployed(&name, 1).unwrap();
//! let submit = v1.schema.node_by_name("submit").unwrap().id;
//! let payout = v1.schema.node_by_name("payout").unwrap().id;
//!
//! // Stage any number of operations against a private overlay.
//! let mut session = engine.begin_change(id).unwrap();
//! let audit = session.stage(&ChangeOp::SerialInsert {
//!     activity: NewActivity::named("audit"),
//!     pred: submit,
//!     succ: payout,
//! }).unwrap().inserted_activity().unwrap();
//! session.stage(&ChangeOp::SetActivityAttributes {
//!     node: audit,
//!     attrs: adept_model::ActivityAttributes { role: Some("auditor".into()), ..Default::default() },
//! }).unwrap();
//!
//! // Pure dry run: nothing in the engine changes.
//! let preview = session.preview().unwrap();
//! assert!(preview.is_committable());
//!
//! // Atomic commit: ONE verification pass + ONE compliance pass for the
//! // whole batch; a failure would leave the instance bit-identical.
//! let receipt = session.commit().unwrap();
//! assert_eq!(receipt.ops, 2);
//! assert_eq!(engine.txn_log.len(), 1);
//! ```
//!
//! Type evolutions use the same lifecycle via
//! [`ProcessEngine::begin_evolution`]; committed transactions land in the
//! persisted [`adept_storage::TxnLog`] (`engine.txn_log`) with their
//! recorded inverses, and their commits invalidate the affected
//! instance's cached execution context and worklist entry. The single-op
//! entry points [`ProcessEngine::ad_hoc_change`] /
//! [`ProcessEngine::evolve_type`] remain as deprecated wrappers over
//! one-op transactions.
//!
//! ## Durability: write-ahead log + crash recovery
//!
//! A durable engine ([`ProcessEngine::with_wal`]) journals every
//! committed mutation to an [`adept_storage::StorageBackend`] *before*
//! it becomes visible; [`recovery::recover_from`] rebuilds the exact
//! engine from the latest snapshot plus the log tail after a crash.
//! [`ProcessEngine::checkpoint_with`] persists a snapshot and truncates
//! the log only once the snapshot is safe.
//!
//! Under concurrent load the journal itself can be **segmented**
//! ([`ProcessEngine::with_segmented_wal`]): sequence `s` lands on
//! backend `(s − 1) mod N`, so appends from different store shards hit
//! different backend locks while the atomic allocator keeps one global
//! order. [`recovery::recover_segmented`] merges the segments back by
//! sequence and classifies any gap: the bounded tail gap a crash under
//! concurrent appends leaves (an earlier-allocated record dead while a
//! later one is durable in a sibling) is repaired by truncating back to
//! the last contiguous record, while a lost segment — periodic holes
//! wider than [`recovery::TAIL_REPAIR_WINDOW`] — is a refused gap, not
//! a silently thinner history. Every lock on these paths carries a
//! declared `adept_storage::ordered::LockClass` (store shard → wal
//! segment, machine-checked in debug builds); `docs/LOCK_ORDER.md` has
//! the authoritative acquisition DAG.
//!
//! ```
//! use adept_engine::{recovery, ProcessEngine};
//! use adept_model::SchemaBuilder;
//! use adept_storage::MemoryBackend;
//!
//! // `MemoryBackend` clones share one medium — the in-memory stand-in
//! // for a log file that survives the process. Production code uses
//! // `FileBackend::new(path)`.
//! let medium = MemoryBackend::new();
//! let engine = ProcessEngine::with_wal(Box::new(medium.clone())).unwrap();
//! let mut b = SchemaBuilder::new("expense");
//! b.activity("submit");
//! let name = engine.deploy(b.build().unwrap()).unwrap();
//! let id = engine.create_instance(&name).unwrap();
//! drop(engine); // crash: only the journaled log survives
//!
//! // Restart: replay the log (no snapshot here) into a fresh engine.
//! let (engine, report) = recovery::recover(Box::new(medium)).unwrap();
//! assert_eq!(report.replayed, 2); // deploy + create
//! assert!(report.divergent.is_empty());
//! assert!(engine.store.get(id).is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod command;
pub mod engine;
pub mod monitor;
pub mod recovery;
pub mod session;
pub(crate) mod shard;
pub mod worklist;

pub use command::{CommandOutcome, EngineCommand};
pub use engine::{EngineError, ProcessEngine};
pub use monitor::{
    render_instance_dot, render_instance_summary, EngineEvent, EventBatch, EventCursor, EventLag,
    FailureKind, Monitor, DEFAULT_EVENT_RETENTION,
};
pub use recovery::{
    recover, recover_from, recover_from_segmented, recover_segmented, RecoveryReport,
};
pub use session::{ChangeSession, TxnReceipt};
pub use worklist::{WorkItem, WorklistDelta};
