//! Crash recovery: rebuilding an engine from a snapshot plus the
//! write-ahead-log tail.
//!
//! A durable engine ([`ProcessEngine::with_wal`]) journals every
//! committed mutation as a full post-image *before* it becomes visible.
//! Recovery inverts that: [`recover_from`] restores the latest snapshot
//! (or starts from an empty world), then replays every WAL entry past
//! the snapshot's watermark through the same storage substrate the live
//! engine writes through. Because the records carry post-images, replay
//! is **idempotent** — an entry whose effect the snapshot already
//! contains simply overwrites it with the identical value — which is
//! what lets [`ProcessEngine::snapshot`] read the watermark before the
//! store state without a global barrier.
//!
//! Failure handling follows the crash semantics of the backends: a torn
//! final record (the crash hit mid-append) is truncated and reported; a
//! complete-but-undecodable record in the middle of the log is a hard
//! [`StorageError::Corrupt`] — silently skipping it would resurrect a
//! world that never existed. A **gap** in the merged sequence is
//! classified before replay: a bounded gap near the global tail is the
//! normal residue of a crash under concurrent segmented appends (an
//! earlier-allocated record torn or unwritten while a later sequence is
//! already durable in a sibling segment) and is repaired by truncating
//! every segment back to the last contiguous sequence — safe because a
//! record journals *before* its effect becomes visible, so a sequence
//! that never finished appending was never acknowledged to any caller.
//! A gap wider than [`TAIL_REPAIR_WINDOW`], or a gap at the very start
//! of a snapshot-less log, cannot be a crash tail (whole records that
//! once existed are missing, e.g. a lost segment or a truncated log
//! opened without its snapshot) and is refused as corruption. After
//! replay every instance's history is re-run through
//! [`adept_state::Execution::audit`]; divergence is reported (not fatal
//! — the post-images are authoritative, the audit is a consistency
//! check on the history substrate).
//!
//! The audit reads each instance's **own execution history** (carried in
//! its recovered state), never the monitor's event log — the monitor is
//! a bounded ring with eviction ([`crate::Monitor::set_retention`]), so
//! recovery correctness must not (and does not) depend on events it may
//! have evicted.

use crate::engine::{EngineError, ProcessEngine};
use crate::monitor::EngineEvent;
use adept_model::InstanceId;
use adept_storage::{
    restore, InstanceStore, Representation, SchemaRepository, Snapshot, StorageBackend,
    StorageError, StoredInstance, SubstitutionBlock, TxnLog, WalEntry, WalRecord, WriteAheadLog,
};
use std::sync::Arc;

/// The widest sequence gap recovery will repair as a crash tail, i.e.
/// the most trailing records it will truncate away to restore
/// contiguity. In-flight appends are bounded by the number of appender
/// threads, so a genuine crash tail spans at most a handful of
/// sequences; a gap wider than this means records that were once
/// durable are gone (a lost segment leaves periodic holes across the
/// whole stream) and recovery refuses rather than silently drop them.
pub const TAIL_REPAIR_WINDOW: u64 = 64;

/// What a recovery did: replay counts, repair evidence, and the audit
/// verdict. Returned next to the recovered engine so callers (and the
/// kill-and-restart tests) can assert on the exact recovery path taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL entries replayed on top of the snapshot.
    pub replayed: usize,
    /// Entries skipped because the snapshot watermark already covers them.
    pub skipped: usize,
    /// State-change entries whose instance no longer exists (it was
    /// removed later in the log) — harmless, counted for visibility.
    pub orphaned: usize,
    /// Bytes of a torn final record dropped by the crash repair.
    pub torn_tail_bytes: usize,
    /// Complete entries truncated away by the crash-tail repair: records
    /// past the last contiguous sequence, stranded in sibling segments
    /// when an earlier in-flight append died with the process. Their
    /// sequences were never acknowledged, so dropping them loses nothing
    /// a caller was promised.
    pub tail_dropped: usize,
    /// The highest WAL sequence number the recovered engine covers.
    pub last_seq: u64,
    /// Instances whose replayed history audit passed.
    pub audited: usize,
    /// Instances whose recorded history does not reproduce their
    /// recovered marking. The post-images win; this flags the divergence.
    pub divergent: Vec<InstanceId>,
}

/// Recovers an engine from a WAL alone (no snapshot): the world is
/// rebuilt purely by replaying the log from its first record. See
/// [`recover_from`].
pub fn recover(
    backend: Box<dyn StorageBackend>,
) -> Result<(ProcessEngine, RecoveryReport), EngineError> {
    recover_from(None, backend)
}

/// [`recover`] over a segmented WAL — see [`recover_from_segmented`].
pub fn recover_segmented(
    backends: Vec<Box<dyn StorageBackend>>,
) -> Result<(ProcessEngine, RecoveryReport), EngineError> {
    recover_from_segmented(None, backends)
}

/// Recovers an engine from an optional snapshot plus the WAL tail on
/// `backend`.
///
/// The snapshot (if any) is restored first; then every WAL entry with
/// `seq > snapshot.wal_seq` is replayed in log order. A gap in the
/// sequence is classified before replay: a bounded gap at the tail
/// (≤ [`TAIL_REPAIR_WINDOW`] sequences) is repaired by truncating the
/// log back to the last contiguous entry ([`RecoveryReport::tail_dropped`]
/// counts the stranded records removed); a wider gap, or a log that
/// starts after sequence 1 with no snapshot to cover the start, means
/// records were lost and recovery refuses with [`StorageError::Corrupt`]
/// rather than rebuild a world with a hole in it. The recovered engine
/// keeps writing to the same backend: its WAL continues at
/// `last_seq + 1`.
pub fn recover_from(
    snapshot: Option<&Snapshot>,
    backend: Box<dyn StorageBackend>,
) -> Result<(ProcessEngine, RecoveryReport), EngineError> {
    recover_from_segmented(snapshot, vec![backend])
}

/// [`recover_from`] over a **segmented** WAL: the entries of all
/// segments (written by [`ProcessEngine::with_segmented_wal`]) are
/// merged back into one globally ordered stream by sequence number
/// before replay; gap and torn-tail semantics are exactly those of the
/// single-backend path. With concurrent appenders on different segment
/// mediums, a crash can leave an earlier-allocated sequence torn or
/// unwritten while a later one is already durable in a sibling — a
/// bounded tail gap in the merged stream, repaired by truncating all
/// segments back to the last contiguous sequence. A whole segment lost
/// (its file gone or empty while its siblings carry later sequences)
/// leaves periodic holes far wider than [`TAIL_REPAIR_WINDOW`] and is
/// refused as [`StorageError::Corrupt`]. The recovered engine keeps
/// writing to the same segments.
pub fn recover_from_segmented(
    snapshot: Option<&Snapshot>,
    backends: Vec<Box<dyn StorageBackend>>,
) -> Result<(ProcessEngine, RecoveryReport), EngineError> {
    let (wal, entries, torn_tail_bytes) = WriteAheadLog::open_segmented(backends)?;
    let (repo, store) = match snapshot {
        Some(s) => restore(s)?,
        None => (
            SchemaRepository::new(),
            InstanceStore::new(Representation::Hybrid),
        ),
    };
    let base_seq = snapshot.map(|s| s.wal_seq).unwrap_or(0);
    wal.seed_txns(snapshot.map(|s| s.txns.clone()).unwrap_or_default());

    let mut report = RecoveryReport {
        replayed: 0,
        skipped: 0,
        orphaned: 0,
        torn_tail_bytes,
        tail_dropped: 0,
        last_seq: base_seq,
        audited: 0,
        divergent: Vec::new(),
    };
    // Classify the merged stream BEFORE replaying anything: contiguity is
    // checked everywhere, not just at the first replayed record — with
    // segments, a missing segment leaves periodic holes that can start
    // anywhere in the merged stream.
    let mut live: Vec<WalEntry> = Vec::with_capacity(entries.len());
    for entry in entries {
        if entry.seq <= base_seq {
            report.skipped += 1;
        } else {
            live.push(entry);
        }
    }
    // `contiguous`: the highest sequence reachable from the base without
    // a hole; `gap_at`: index of the first entry past a hole, if any.
    let mut contiguous = base_seq;
    let mut gap_at = live.len();
    for (i, entry) in live.iter().enumerate() {
        if entry.seq == contiguous + 1 {
            contiguous = entry.seq;
        } else {
            gap_at = i;
            break;
        }
    }
    if gap_at < live.len() {
        let resumes_at = live[gap_at].seq;
        let max_seq = live.last().map(|e| e.seq).unwrap_or(contiguous);
        if contiguous == base_seq && snapshot.is_none() {
            // Nothing covers the start of the sequence: this is not a
            // crash tail but a log whose beginning is gone (e.g. a
            // checkpoint-truncated log opened without its snapshot).
            return Err(StorageError::corrupt(format!(
                "wal gap: log starts at seq {resumes_at} with no snapshot covering \
                 1..={} (truncated log recovered without its snapshot?)",
                resumes_at - 1
            ))
            .into());
        }
        if max_seq - contiguous > TAIL_REPAIR_WINDOW {
            return Err(StorageError::corrupt(format!(
                "wal gap: expected seq {} but the log continues at {resumes_at} and \
                 runs to {max_seq} — {} sequences past the last contiguous record \
                 exceed the crash-tail window of {TAIL_REPAIR_WINDOW} (records lost, \
                 e.g. a missing segment)",
                contiguous + 1,
                max_seq - contiguous
            ))
            .into());
        }
        // A bounded tail gap: the crash residue of concurrent segmented
        // appends. Records past the hole were never acknowledged (their
        // predecessor never committed), so truncate them — physically,
        // so the siblings cannot resurrect them on the next recovery.
        live.truncate(gap_at);
        report.tail_dropped = wal.retain_up_to(contiguous)?;
    }
    for entry in live {
        replay_entry(&repo, &store, &wal, entry, &mut report)?;
        report.replayed += 1;
    }
    // The WAL continues where the log ended — also when the whole log was
    // skipped (the snapshot may cover entries the backend no longer has
    // after a checkpoint truncation).
    wal.advance_position(report.last_seq);

    let engine = ProcessEngine::from_parts_with_log(repo, store, TxnLog::over(Arc::new(wal)));
    audit_instances(&engine, &mut report);
    engine.monitor.record(EngineEvent::Recovered {
        replayed: report.replayed,
        skipped: report.skipped,
        torn_tail_bytes: report.torn_tail_bytes,
    });
    Ok((engine, report))
}

/// Applies one WAL entry to the world being rebuilt. Every arm is an
/// upsert (post-image) or tolerant of the record's effect already being
/// present — the idempotency that makes the snapshot watermark race
/// benign.
fn replay_entry(
    repo: &SchemaRepository,
    store: &InstanceStore,
    wal: &WriteAheadLog,
    entry: WalEntry,
    report: &mut RecoveryReport,
) -> Result<(), EngineError> {
    let seq = entry.seq;
    match entry.record {
        WalRecord::Deployed { schema } => {
            // Re-deploying an already-known name mirrors the live path
            // (deploy overwrites); the recorded schema id is kept.
            repo.deploy_recorded(schema)
                .map_err(|e| StorageError::corrupt(format!("wal #{seq}: deploy replay: {e}")))?;
        }
        WalRecord::Evolved {
            name,
            base_version,
            txn,
        } => {
            let cur = repo.latest_version(&name).ok_or_else(|| {
                StorageError::corrupt(format!("wal #{seq}: evolution of unknown type {name:?}"))
            })?;
            if cur == base_version {
                repo.evolve(&name, &txn.ops).map_err(|e| {
                    StorageError::corrupt(format!("wal #{seq}: evolution replay: {e}"))
                })?;
            } else if cur < base_version {
                return Err(StorageError::corrupt(format!(
                    "wal #{seq}: evolution of {name:?} expects V{base_version}, world is at V{cur}"
                ))
                .into());
            }
            // cur > base_version: the snapshot already contains the new
            // version (watermark race) — only the txn view needs the record.
            wal.note_replayed_txn(txn);
        }
        WalRecord::Created {
            id,
            type_name,
            version,
            state,
        } => {
            store.insert_restored(StoredInstance {
                id,
                type_name,
                version,
                bias: adept_core::Delta::new(),
                subst: SubstitutionBlock::default(),
                state,
                full_copy: None,
                cached_overlay: None,
            });
        }
        WalRecord::StateChanged { id, state } => {
            if store.update(id, |inst| inst.state = state).is_none() {
                // The instance was removed later in the log; the change
                // has no surviving target.
                report.orphaned += 1;
            }
        }
        WalRecord::ChangeCommitted { record, txn } => {
            store.insert_restored(record.into_stored());
            wal.note_replayed_txn(txn);
        }
        WalRecord::Migrated { record } => {
            store.insert_restored(record.into_stored());
        }
        WalRecord::Removed { id } => {
            // Lenient: the journaled removal may have crashed between the
            // WAL append and the store removal, or replay twice.
            let _ = store.remove(id);
        }
        WalRecord::Txn { record } => {
            wal.note_replayed_txn(record);
        }
        // A plugged sequence hole from a failed append — durable filler
        // with no state effect; it only keeps the sequence contiguous.
        WalRecord::Abandoned => {}
    }
    report.last_seq = seq;
    Ok(())
}

/// Re-runs every recovered instance's execution history and compares the
/// produced marking against the recovered one. Post-images are
/// authoritative, so divergence is reported, not fatal — but a divergent
/// instance means history and state disagree, which the caller should
/// treat as a corruption signal.
fn audit_instances(engine: &ProcessEngine, report: &mut RecoveryReport) {
    for id in engine.store.ids() {
        let ok = engine
            .exec_context(id)
            .ok()
            .and_then(|ctx| {
                engine
                    .store
                    .with_instance(id, |inst| ctx.execution().audit(&inst.state).ok())
                    .flatten()
            })
            .unwrap_or(false);
        if ok {
            report.audited += 1;
        } else {
            report.divergent.push(id);
        }
    }
}
