//! The monitoring component: engine event log and instance visualisation.
//!
//! The paper's demo (Sec. 3): *"the effects of ad-hoc instance
//! modifications can be visualized by a special monitoring component. The
//! same applies for process type changes."* This module records every
//! engine-level event with a logical timestamp and renders instances as
//! annotated DOT graphs / textual state summaries.

use adept_model::{render, InstanceId, NodeId, ProcessSchema};
use adept_state::{InstanceState, NodeState};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// An engine-level event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineEvent {
    /// A process type was deployed.
    Deployed {
        /// Type name.
        type_name: String,
    },
    /// An instance was created.
    InstanceCreated {
        /// The new instance.
        instance: InstanceId,
        /// Version it was created on.
        version: u32,
    },
    /// An activity was started.
    ActivityStarted {
        /// The instance.
        instance: InstanceId,
        /// The activity node.
        node: NodeId,
    },
    /// An activity completed.
    ActivityCompleted {
        /// The instance.
        instance: InstanceId,
        /// The activity node.
        node: NodeId,
    },
    /// An XOR or loop decision was resolved (by an actor or a driver).
    DecisionMade {
        /// The instance.
        instance: InstanceId,
        /// The deciding node (XOR split or loop end).
        node: NodeId,
        /// The chosen outcome (`"branch N7"`, `"iterate"`, `"exit"`).
        choice: String,
    },
    /// The worklist could not resolve an instance's store entry or schema
    /// context — a corruption signal that would otherwise stay silent.
    WorklistResolutionFailed {
        /// The unresolvable instance.
        instance: InstanceId,
        /// Why resolution failed.
        reason: String,
    },
    /// An ad-hoc change was applied to an instance.
    AdHocChanged {
        /// The instance.
        instance: InstanceId,
        /// Rendered change operation.
        op: String,
    },
    /// An ad-hoc change was rejected.
    AdHocRejected {
        /// The instance.
        instance: InstanceId,
        /// Rendered change operation.
        op: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A process type evolved to a new version.
    TypeEvolved {
        /// Type name.
        type_name: String,
        /// The new version.
        version: u32,
    },
    /// A type-evolution commit was rejected (verification failure or a
    /// lost base-version race).
    EvolutionRejected {
        /// Type name.
        type_name: String,
        /// Why the commit failed.
        reason: String,
    },
    /// An instance migrated to a new version.
    Migrated {
        /// The instance.
        instance: InstanceId,
        /// Target version.
        to_version: u32,
    },
    /// An instance could not migrate and stays on its version.
    MigrationRejected {
        /// The instance.
        instance: InstanceId,
        /// Why it stays.
        reason: String,
    },
    /// An instance reached its end node.
    InstanceFinished {
        /// The instance.
        instance: InstanceId,
    },
    /// An instance was removed from the store (cancelled or archived). A
    /// migration that loses its instance to a concurrent removal reports
    /// it as vanished, not as a conflict.
    InstanceRemoved {
        /// The removed instance.
        instance: InstanceId,
    },
    /// A change transaction committed atomically.
    TxnCommitted {
        /// Rendered target (instance id or new type version).
        target: String,
        /// Number of operations the transaction carried.
        ops: usize,
        /// Sequence number in the persisted transaction log.
        seq: u64,
    },
    /// A change session was abandoned without committing.
    TxnAborted {
        /// Rendered target.
        target: String,
        /// Number of operations that were staged when aborted.
        staged: usize,
    },
    /// The engine was rebuilt from snapshot + write-ahead-log replay.
    Recovered {
        /// WAL entries replayed on top of the snapshot.
        replayed: usize,
        /// Entries skipped as already covered by the snapshot.
        skipped: usize,
        /// Bytes of a torn final record dropped by the crash repair.
        torn_tail_bytes: usize,
    },
    /// A checkpoint persisted a snapshot and truncated the WAL.
    CheckpointTaken {
        /// The WAL watermark the snapshot covers.
        wal_seq: u64,
    },
}

impl fmt::Display for EngineEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineEvent::Deployed { type_name } => write!(f, "deployed \"{type_name}\""),
            EngineEvent::InstanceCreated { instance, version } => {
                write!(f, "{instance} created on V{version}")
            }
            EngineEvent::ActivityStarted { instance, node } => {
                write!(f, "{instance}: started {node}")
            }
            EngineEvent::ActivityCompleted { instance, node } => {
                write!(f, "{instance}: completed {node}")
            }
            EngineEvent::DecisionMade {
                instance,
                node,
                choice,
            } => write!(f, "{instance}: decided {node} ({choice})"),
            EngineEvent::WorklistResolutionFailed { instance, reason } => {
                write!(f, "{instance}: worklist cannot resolve: {reason}")
            }
            EngineEvent::AdHocChanged { instance, op } => {
                write!(f, "{instance}: ad-hoc change {op}")
            }
            EngineEvent::AdHocRejected {
                instance,
                op,
                reason,
            } => write!(f, "{instance}: ad-hoc change {op} rejected: {reason}"),
            EngineEvent::TypeEvolved { type_name, version } => {
                write!(f, "\"{type_name}\" evolved to V{version}")
            }
            EngineEvent::EvolutionRejected { type_name, reason } => {
                write!(f, "\"{type_name}\" evolution rejected: {reason}")
            }
            EngineEvent::Migrated {
                instance,
                to_version,
            } => write!(f, "{instance} migrated to V{to_version}"),
            EngineEvent::MigrationRejected { instance, reason } => {
                write!(f, "{instance} stays: {reason}")
            }
            EngineEvent::InstanceFinished { instance } => write!(f, "{instance} finished"),
            EngineEvent::InstanceRemoved { instance } => write!(f, "{instance} removed"),
            EngineEvent::TxnCommitted { target, ops, seq } => {
                write!(f, "txn #{seq} committed on {target} ({ops} ops)")
            }
            EngineEvent::TxnAborted { target, staged } => {
                write!(f, "txn on {target} aborted ({staged} ops staged)")
            }
            EngineEvent::Recovered {
                replayed,
                skipped,
                torn_tail_bytes,
            } => write!(
                f,
                "recovered: {replayed} wal record(s) replayed, {skipped} skipped, \
                 {torn_tail_bytes} torn byte(s) dropped"
            ),
            EngineEvent::CheckpointTaken { wal_seq } => {
                write!(f, "checkpoint at wal #{wal_seq}")
            }
        }
    }
}

/// The monitoring component: a logical-clock-stamped event log.
#[derive(Debug, Default)]
pub struct Monitor {
    clock: AtomicU64,
    events: RwLock<Vec<(u64, EngineEvent)>>,
}

impl Monitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an event, stamping it with the next logical time.
    pub fn record(&self, e: EngineEvent) -> u64 {
        let t = self.clock.fetch_add(1, Ordering::Relaxed);
        self.events.write().push((t, e));
        t
    }

    /// Records a sequence of events contiguously under one lock pass —
    /// the batched append the command path uses, so one submitted batch
    /// costs one monitor lock however many events it emitted.
    pub fn record_all<I: IntoIterator<Item = EngineEvent>>(&self, events: I) -> usize {
        let mut log = self.events.write();
        let mut n = 0;
        for e in events {
            let t = self.clock.fetch_add(1, Ordering::Relaxed);
            log.push((t, e));
            n += 1;
        }
        n
    }

    /// A snapshot of all events in logical-time order.
    pub fn events(&self) -> Vec<(u64, EngineEvent)> {
        self.events.read().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.read().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the full log as text.
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        for (t, e) in self.events.read().iter() {
            out.push_str(&format!("[{t:>6}] {e}\n"));
        }
        out
    }
}

/// Renders an instance as a DOT graph annotated with node states (the
/// monitoring component's visualisation).
pub fn render_instance_dot(schema: &ProcessSchema, state: &InstanceState) -> String {
    let mut ann: BTreeMap<NodeId, String> = BTreeMap::new();
    for (n, s) in state.marking.marked_nodes() {
        ann.insert(n, s.to_string());
    }
    render::to_dot(schema, &ann)
}

/// Renders a compact one-line-per-activity state summary of an instance.
pub fn render_instance_summary(schema: &ProcessSchema, state: &InstanceState) -> String {
    let mut out = String::new();
    for n in schema.activities() {
        let s = state.marking.node(n.id);
        let mark = match s {
            NodeState::NotActivated => " ",
            NodeState::Activated => "◦",
            NodeState::Running => "▶",
            NodeState::Completed => "✔",
            NodeState::Skipped => "✘",
        };
        out.push_str(&format!("  {mark} {:<24} {}\n", n.name, s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_model::SchemaBuilder;
    use adept_state::Execution;

    #[test]
    fn monitor_records_in_order() {
        let m = Monitor::new();
        assert!(m.is_empty());
        m.record(EngineEvent::Deployed {
            type_name: "x".into(),
        });
        m.record(EngineEvent::InstanceCreated {
            instance: InstanceId(1),
            version: 1,
        });
        assert_eq!(m.len(), 2);
        let ev = m.events();
        assert!(ev[0].0 < ev[1].0);
        let log = m.render_log();
        assert!(log.contains("deployed \"x\""));
        assert!(log.contains("I1 created on V1"));
    }

    #[test]
    fn instance_rendering() {
        let mut b = SchemaBuilder::new("r");
        let a = b.activity("approve");
        let s = b.build().unwrap();
        let ex = Execution::new(&s).unwrap();
        let mut st = ex.init().unwrap();
        ex.start_activity(&mut st, a).unwrap();
        let dot = render_instance_dot(&s, &st);
        assert!(dot.contains("Running"));
        let summary = render_instance_summary(&s, &st);
        assert!(summary.contains("approve"));
        assert!(summary.contains("Running"));
    }
}
