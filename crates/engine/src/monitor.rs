//! The monitoring component: engine event log and instance visualisation.
//!
//! The paper's demo (Sec. 3): *"the effects of ad-hoc instance
//! modifications can be visualized by a special monitoring component. The
//! same applies for process type changes."* This module records every
//! engine-level event with a logical timestamp and renders instances as
//! annotated DOT graphs / textual state summaries.

use adept_core::{ChangeError, ConflictKind};
use adept_model::{render, InstanceId, NodeId, ProcessSchema};
use adept_state::{InstanceState, NodeState};
use adept_storage::Shards;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A typed classification of why a failure-path event fired, carried by
/// the rejection/failure events so consumers (the adaptation loop above
/// all) can classify deviations without parsing a message string or
/// re-reading instance history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// A state precondition failed (paper: state-related conflict).
    State,
    /// The change or lookup was structurally impossible.
    Structural,
    /// A semantic (data-flow) conflict.
    Semantic,
    /// The target instance vanished under a concurrent removal.
    Vanished,
    /// Post-change verification of the resulting schema failed.
    Verification,
    /// A concurrent change won the race (stale base version / bias).
    ConcurrentChange,
    /// The target could not be resolved at all.
    Unresolvable,
    /// An activity's execution itself failed.
    ActivityError,
    /// An internal invariant broke (storage, journaling).
    Internal,
    /// Unclassified — the kind used by the deprecated untyped
    /// constructors.
    Other,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureKind::State => "state",
            FailureKind::Structural => "structural",
            FailureKind::Semantic => "semantic",
            FailureKind::Vanished => "vanished",
            FailureKind::Verification => "verification",
            FailureKind::ConcurrentChange => "concurrent-change",
            FailureKind::Unresolvable => "unresolvable",
            FailureKind::ActivityError => "activity-error",
            FailureKind::Internal => "internal",
            FailureKind::Other => "other",
        };
        f.write_str(s)
    }
}

impl From<&ConflictKind> for FailureKind {
    fn from(k: &ConflictKind) -> Self {
        match k {
            ConflictKind::State => FailureKind::State,
            ConflictKind::Structural => FailureKind::Structural,
            ConflictKind::Semantic => FailureKind::Semantic,
            ConflictKind::Vanished => FailureKind::Vanished,
            ConflictKind::Internal => FailureKind::Internal,
        }
    }
}

impl FailureKind {
    /// Classifies a change-layer error.
    pub fn of_change(e: &ChangeError) -> Self {
        match e {
            ChangeError::StatePrecondition { .. } | ChangeError::Runtime(_) => FailureKind::State,
            ChangeError::PostconditionViolated(_) => FailureKind::Verification,
            ChangeError::Precondition(msg) => {
                if msg.contains("concurrent") || msg.contains("base version") {
                    FailureKind::ConcurrentChange
                } else {
                    FailureKind::Structural
                }
            }
            ChangeError::Model(_) | ChangeError::UnknownNode(_) | ChangeError::UnknownData(_) => {
                FailureKind::Structural
            }
        }
    }
}

/// An engine-level event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineEvent {
    /// A process type was deployed.
    Deployed {
        /// Type name.
        type_name: String,
    },
    /// An instance was created.
    InstanceCreated {
        /// The new instance.
        instance: InstanceId,
        /// Version it was created on.
        version: u32,
    },
    /// An activity was started.
    ActivityStarted {
        /// The instance.
        instance: InstanceId,
        /// The activity node.
        node: NodeId,
    },
    /// An activity completed.
    ActivityCompleted {
        /// The instance.
        instance: InstanceId,
        /// The activity node.
        node: NodeId,
    },
    /// An XOR or loop decision was resolved (by an actor or a driver).
    DecisionMade {
        /// The instance.
        instance: InstanceId,
        /// The deciding node (XOR split or loop end).
        node: NodeId,
        /// The chosen outcome (`"branch N7"`, `"iterate"`, `"exit"`).
        choice: String,
    },
    /// The worklist could not resolve an instance's store entry or schema
    /// context — a corruption signal that would otherwise stay silent.
    WorklistResolutionFailed {
        /// The unresolvable instance.
        instance: InstanceId,
        /// Typed failure classification.
        kind: FailureKind,
        /// Why resolution failed.
        reason: String,
    },
    /// An ad-hoc change was applied to an instance.
    AdHocChanged {
        /// The instance.
        instance: InstanceId,
        /// Rendered change operation.
        op: String,
    },
    /// An ad-hoc change was rejected.
    AdHocRejected {
        /// The instance.
        instance: InstanceId,
        /// Rendered change operation.
        op: String,
        /// The node the rejection anchors to, when one is known (the
        /// conflicting or unknown node).
        node: Option<NodeId>,
        /// Typed failure classification.
        kind: FailureKind,
        /// Why it was rejected.
        reason: String,
    },
    /// A process type evolved to a new version.
    TypeEvolved {
        /// Type name.
        type_name: String,
        /// The new version.
        version: u32,
    },
    /// A type-evolution commit was rejected (verification failure or a
    /// lost base-version race).
    EvolutionRejected {
        /// Type name.
        type_name: String,
        /// Typed failure classification.
        kind: FailureKind,
        /// Why the commit failed.
        reason: String,
    },
    /// An instance migrated to a new version.
    Migrated {
        /// The instance.
        instance: InstanceId,
        /// Target version.
        to_version: u32,
    },
    /// An instance could not migrate and stays on its version.
    MigrationRejected {
        /// The instance.
        instance: InstanceId,
        /// The conflicting node, when the compliance check names one.
        node: Option<NodeId>,
        /// Typed failure classification.
        kind: FailureKind,
        /// Why it stays.
        reason: String,
    },
    /// An instance reached its end node.
    InstanceFinished {
        /// The instance.
        instance: InstanceId,
    },
    /// An instance was removed from the store (cancelled or archived). A
    /// migration that loses its instance to a concurrent removal reports
    /// it as vanished, not as a conflict.
    InstanceRemoved {
        /// The removed instance.
        instance: InstanceId,
    },
    /// A change transaction committed atomically.
    TxnCommitted {
        /// Rendered target (instance id or new type version).
        target: String,
        /// Number of operations the transaction carried.
        ops: usize,
        /// Sequence number in the persisted transaction log.
        seq: u64,
    },
    /// A change session was abandoned without committing.
    TxnAborted {
        /// Rendered target.
        target: String,
        /// Number of operations that were staged when aborted.
        staged: usize,
    },
    /// The engine was rebuilt from snapshot + write-ahead-log replay.
    Recovered {
        /// WAL entries replayed on top of the snapshot.
        replayed: usize,
        /// Entries skipped as already covered by the snapshot.
        skipped: usize,
        /// Bytes of a torn final record dropped by the crash repair.
        torn_tail_bytes: usize,
    },
    /// A checkpoint persisted a snapshot and truncated the WAL.
    CheckpointTaken {
        /// The WAL watermark the snapshot covers.
        wal_seq: u64,
    },
    /// A running activity failed and dropped back to `Activated`.
    ActivityFailed {
        /// The instance.
        instance: InstanceId,
        /// The activity node that failed.
        node: NodeId,
        /// Why it failed (application-level reason).
        reason: String,
    },
    /// The adaptation loop classified a deviation on an instance.
    DeviationDetected {
        /// The deviating instance.
        instance: InstanceId,
        /// The node the deviation anchors to, when one is known.
        node: Option<NodeId>,
        /// Rendered deviation key (e.g. `"fail:N5#2"`).
        kind: String,
    },
    /// The adaptation loop committed a recovery change that passed
    /// preview compliance.
    AdaptationCommitted {
        /// The repaired instance.
        instance: InstanceId,
        /// Rendered recovery plan.
        plan: String,
        /// The deviation key this plan recovered from.
        deviation: String,
        /// Transaction-log sequence of the committed change (0 for
        /// command-level repairs that commit no change transaction).
        seq: u64,
    },
    /// The adaptation loop rejected (or gave up on) a recovery plan.
    AdaptationRejected {
        /// The instance.
        instance: InstanceId,
        /// Rendered recovery plan (or `"-"` when no plan was found).
        plan: String,
        /// The deviation key the plan targeted.
        deviation: String,
        /// Why the plan was rejected.
        reason: String,
    },
}

impl EngineEvent {
    /// Untyped [`EngineEvent::WorklistResolutionFailed`] constructor.
    #[deprecated(
        since = "0.4.0",
        note = "construct the variant with a typed `kind` instead"
    )]
    pub fn worklist_resolution_failed(instance: InstanceId, reason: String) -> Self {
        EngineEvent::WorklistResolutionFailed {
            instance,
            kind: FailureKind::Other,
            reason,
        }
    }

    /// Untyped [`EngineEvent::AdHocRejected`] constructor.
    #[deprecated(
        since = "0.4.0",
        note = "construct the variant with a typed `kind` and failing `node` instead"
    )]
    pub fn ad_hoc_rejected(instance: InstanceId, op: String, reason: String) -> Self {
        EngineEvent::AdHocRejected {
            instance,
            op,
            node: None,
            kind: FailureKind::Other,
            reason,
        }
    }

    /// Untyped [`EngineEvent::MigrationRejected`] constructor.
    #[deprecated(
        since = "0.4.0",
        note = "construct the variant with a typed `kind` and conflicting `node` instead"
    )]
    pub fn migration_rejected(instance: InstanceId, reason: String) -> Self {
        EngineEvent::MigrationRejected {
            instance,
            node: None,
            kind: FailureKind::Other,
            reason,
        }
    }

    /// Untyped [`EngineEvent::EvolutionRejected`] constructor.
    #[deprecated(
        since = "0.4.0",
        note = "construct the variant with a typed `kind` instead"
    )]
    pub fn evolution_rejected(type_name: String, reason: String) -> Self {
        EngineEvent::EvolutionRejected {
            type_name,
            kind: FailureKind::Other,
            reason,
        }
    }
}

impl fmt::Display for EngineEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineEvent::Deployed { type_name } => write!(f, "deployed \"{type_name}\""),
            EngineEvent::InstanceCreated { instance, version } => {
                write!(f, "{instance} created on V{version}")
            }
            EngineEvent::ActivityStarted { instance, node } => {
                write!(f, "{instance}: started {node}")
            }
            EngineEvent::ActivityCompleted { instance, node } => {
                write!(f, "{instance}: completed {node}")
            }
            EngineEvent::DecisionMade {
                instance,
                node,
                choice,
            } => write!(f, "{instance}: decided {node} ({choice})"),
            EngineEvent::WorklistResolutionFailed {
                instance,
                kind,
                reason,
            } => {
                write!(f, "{instance}: worklist cannot resolve ({kind}): {reason}")
            }
            EngineEvent::AdHocChanged { instance, op } => {
                write!(f, "{instance}: ad-hoc change {op}")
            }
            EngineEvent::AdHocRejected {
                instance,
                op,
                node,
                kind,
                reason,
            } => {
                write!(f, "{instance}: ad-hoc change {op} rejected ({kind}")?;
                if let Some(n) = node {
                    write!(f, " at {n}")?;
                }
                write!(f, "): {reason}")
            }
            EngineEvent::TypeEvolved { type_name, version } => {
                write!(f, "\"{type_name}\" evolved to V{version}")
            }
            EngineEvent::EvolutionRejected {
                type_name,
                kind,
                reason,
            } => {
                write!(f, "\"{type_name}\" evolution rejected ({kind}): {reason}")
            }
            EngineEvent::Migrated {
                instance,
                to_version,
            } => write!(f, "{instance} migrated to V{to_version}"),
            EngineEvent::MigrationRejected {
                instance,
                node,
                kind,
                reason,
            } => {
                write!(f, "{instance} stays ({kind}")?;
                if let Some(n) = node {
                    write!(f, " at {n}")?;
                }
                write!(f, "): {reason}")
            }
            EngineEvent::InstanceFinished { instance } => write!(f, "{instance} finished"),
            EngineEvent::InstanceRemoved { instance } => write!(f, "{instance} removed"),
            EngineEvent::TxnCommitted { target, ops, seq } => {
                write!(f, "txn #{seq} committed on {target} ({ops} ops)")
            }
            EngineEvent::TxnAborted { target, staged } => {
                write!(f, "txn on {target} aborted ({staged} ops staged)")
            }
            EngineEvent::Recovered {
                replayed,
                skipped,
                torn_tail_bytes,
            } => write!(
                f,
                "recovered: {replayed} wal record(s) replayed, {skipped} skipped, \
                 {torn_tail_bytes} torn byte(s) dropped"
            ),
            EngineEvent::CheckpointTaken { wal_seq } => {
                write!(f, "checkpoint at wal #{wal_seq}")
            }
            EngineEvent::ActivityFailed {
                instance,
                node,
                reason,
            } => write!(f, "{instance}: {node} failed: {reason}"),
            EngineEvent::DeviationDetected {
                instance,
                node,
                kind,
            } => {
                write!(f, "{instance}: deviation {kind}")?;
                if let Some(n) = node {
                    write!(f, " at {n}")?;
                }
                Ok(())
            }
            EngineEvent::AdaptationCommitted {
                instance,
                plan,
                deviation,
                seq,
            } => write!(
                f,
                "{instance}: adaptation {plan} committed for {deviation} (txn #{seq})"
            ),
            EngineEvent::AdaptationRejected {
                instance,
                plan,
                deviation,
                reason,
            } => write!(
                f,
                "{instance}: adaptation {plan} rejected for {deviation}: {reason}"
            ),
        }
    }
}

/// How many events the monitor retains by default before evicting the
/// oldest (see [`Monitor::set_retention`]).
pub const DEFAULT_EVENT_RETENTION: usize = 65_536;

/// Shard count of the monitor's segmented event log.
const EVENT_SHARDS: usize = 16;

/// A batch of events returned by [`Monitor::events_since`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventBatch {
    /// The events, in logical-time order, starting at the requested
    /// cursor. Contiguous — no sequence gaps.
    pub events: Vec<(u64, EngineEvent)>,
    /// The cursor to pass to the next `events_since` call (one past the
    /// last returned sequence; equal to the request if nothing was
    /// returned).
    pub next: u64,
}

/// A cursor fell behind the retention window: events it had not yet
/// observed were evicted, so the stream has an unrecoverable gap. The
/// consumer must resynchronise (e.g. re-read full state and
/// [`EventCursor::resync`]) rather than silently skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLag {
    /// The oldest sequence still guaranteed retained — resync at or
    /// after this point.
    pub oldest: u64,
}

impl fmt::Display for EventLag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event cursor lagged behind retention (oldest retained seq {})",
            self.oldest
        )
    }
}

impl std::error::Error for EventLag {}

/// A consumer-side position in the monitor's event stream. Obtain one
/// with [`Monitor::subscribe`] (tail — new events only) or
/// [`Monitor::subscribe_from`] (historical replay), then drain with
/// [`EventCursor::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventCursor {
    next: u64,
}

impl EventCursor {
    /// The next sequence this cursor will read.
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Drains all events recorded since the last poll. On
    /// `Err(EventLag)` the cursor is *not* advanced; call
    /// [`EventCursor::resync`] to jump past the gap.
    pub fn poll(&mut self, monitor: &Monitor) -> Result<Vec<(u64, EngineEvent)>, EventLag> {
        let batch = monitor.events_since(self.next)?;
        self.next = batch.next;
        Ok(batch.events)
    }

    /// Jumps the cursor to the oldest retained event, discarding the
    /// gap. Returns how many sequences were skipped.
    pub fn resync(&mut self, monitor: &Monitor) -> u64 {
        let oldest = monitor.oldest_retained();
        let skipped = oldest.saturating_sub(self.next);
        self.next = self.next.max(oldest);
        skipped
    }
}

/// The monitoring component: a logical-clock-stamped, bounded event log.
///
/// Internally the log is segmented across [`Shards`]: sequence `s` lives
/// in shard `s & (N-1)`, so consecutive appends round-robin across
/// independent locks and concurrent recorders don't serialize on one
/// global `RwLock<Vec>`. Reads merge the shards by sequence, visiting
/// one shard guard at a time (bounded by the clock value at entry), so
/// even a whole-log read never holds more than a single recorder's lock
/// at any moment.
///
/// Retention is bounded (default [`DEFAULT_EVENT_RETENTION`]): once a
/// shard's ring exceeds its share of the cap, the oldest events are
/// evicted and the eviction watermark advances. A cursor that falls
/// behind the watermark gets an explicit [`EventLag`] error — never a
/// silent gap. Recovery's history audit reads per-instance execution
/// histories, not this log, so eviction never weakens recovery (see
/// `recover_from`).
#[derive(Debug)]
pub struct Monitor {
    /// Next sequence to allocate (total ever recorded).
    clock: AtomicU64,
    /// Oldest sequence possibly still retained: everything below has
    /// been (or may have been) evicted.
    evicted: AtomicU64,
    /// Total retention cap across all shards.
    retention: AtomicUsize,
    /// Per-shard rings of `(seq, event)`, each sorted by push order
    /// (sequence ascending within a shard).
    segments: Shards<VecDeque<(u64, EngineEvent)>>,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new()
    }
}

impl Monitor {
    /// A fresh monitor with the default retention cap.
    pub fn new() -> Self {
        Self {
            clock: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            retention: AtomicUsize::new(DEFAULT_EVENT_RETENTION),
            segments: Shards::new(
                &adept_storage::ordered::classes::MONITOR_SEGMENT,
                EVENT_SHARDS,
            ),
        }
    }

    /// Sets the retention cap (total events kept across all shards,
    /// minimum one per shard). Takes effect on subsequent appends.
    pub fn set_retention(&self, cap: usize) {
        self.retention.store(cap, Ordering::Relaxed);
    }

    /// The per-shard ring bound for the current retention cap.
    fn shard_cap(&self) -> usize {
        let cap = self.retention.load(Ordering::Relaxed);
        cap.div_ceil(self.segments.count()).max(1)
    }

    /// Pushes an already-stamped event into its shard, evicting the
    /// shard's oldest entries over the ring bound.
    fn push(&self, seq: u64, e: EngineEvent) {
        let cap = self.shard_cap();
        let mut ring = self.segments.for_raw(seq).write();
        ring.push_back((seq, e));
        while ring.len() > cap {
            if let Some((old, _)) = ring.pop_front() {
                // Watermark = oldest seq that may still be retained.
                self.evicted.fetch_max(old + 1, Ordering::SeqCst);
            }
        }
    }

    /// Records an event, stamping it with the next logical time. One
    /// shard lock, no global lock.
    pub fn record(&self, e: EngineEvent) -> u64 {
        let t = self.clock.fetch_add(1, Ordering::SeqCst);
        self.push(t, e);
        t
    }

    /// Records a sequence of events under one contiguous block of
    /// logical times — the batched append the command path uses. The
    /// block is reserved atomically, then each event lands in its own
    /// shard, so a submitted batch never interleaves with a concurrent
    /// recorder's sequences.
    pub fn record_all<I: IntoIterator<Item = EngineEvent>>(&self, events: I) -> usize {
        let events: Vec<EngineEvent> = events.into_iter().collect();
        if events.is_empty() {
            return 0;
        }
        let base = self.clock.fetch_add(events.len() as u64, Ordering::SeqCst);
        let n = events.len();
        for (i, e) in events.into_iter().enumerate() {
            self.push(base + i as u64, e);
        }
        n
    }

    /// A snapshot of all *retained* events, merged across shards into
    /// logical-time order, with the same no-silent-gap contract as
    /// [`Monitor::events_since`]: the snapshot is a contiguous run — it
    /// stops before the first transient hole a concurrent
    /// [`Monitor::record_all`] block leaves (block reserved, some shards
    /// not yet pushed), rather than showing later events with earlier
    /// ones missing. Stragglers below the eviction watermark are
    /// excluded for the same reason.
    pub fn events(&self) -> Vec<(u64, EngineEvent)> {
        let mut cursor = self.oldest_retained();
        loop {
            match self.events_since(cursor) {
                Ok(batch) => return batch.events,
                // Eviction advanced between the watermark read and the
                // scan; chase it.
                Err(lag) => cursor = lag.oldest,
            }
        }
    }

    /// Events with sequence ≥ `cursor`, as a contiguous batch.
    ///
    /// Returns [`EventLag`] if `cursor` is behind the eviction
    /// watermark — the consumer missed events that are gone. A
    /// concurrent `record_all` may leave transient sequence holes
    /// (block reserved, some shards not yet pushed); events past such a
    /// hole are withheld until the hole fills, so the returned batch
    /// never skips a sequence.
    ///
    /// The scan holds **one shard guard at a time**: a reader merging a
    /// large window no longer blocks every concurrent recorder for the
    /// whole pass, only the one shard it is currently copying. The
    /// batch is sequence-bounded by the clock value read at entry, so
    /// under a constant append load the scan terminates instead of
    /// chasing the tail. Eviction may race the unlocked portions of the
    /// scan, but it can never produce a silent gap: an evicted sequence
    /// is simply absent from the merge, so the contiguous-prefix rule
    /// ends the batch before it and the *next* poll reports the lag.
    pub fn events_since(&self, cursor: u64) -> Result<EventBatch, EventLag> {
        // Exclusive upper bound: sequences reserved after this point
        // belong to the next poll.
        let bound = self.clock.load(Ordering::SeqCst);
        let oldest = self.evicted.load(Ordering::SeqCst);
        if cursor < oldest {
            return Err(EventLag { oldest });
        }
        let mut pending: Vec<(u64, EngineEvent)> = Vec::new();
        for shard in self.segments.iter() {
            let ring = shard.read();
            pending.extend(
                ring.iter()
                    .filter(|(t, _)| *t >= cursor && *t < bound)
                    .cloned(),
            );
            // Guard drops here — the next shard is acquired only after
            // this one is released (one shard per table).
        }
        pending.sort_by_key(|(t, _)| *t);
        // Keep only the contiguous prefix from the cursor.
        let mut next = cursor;
        let mut events = Vec::with_capacity(pending.len());
        for (t, e) in pending {
            if t != next {
                break;
            }
            events.push((t, e));
            next += 1;
        }
        if events.is_empty() {
            // Eviction may have overtaken the cursor *during* the scan,
            // leaving nothing contiguous at its position. Report the
            // lag now rather than an empty batch that would poll
            // forever at a dead position.
            let oldest = self.evicted.load(Ordering::SeqCst);
            if next < oldest {
                return Err(EventLag { oldest });
            }
        }
        Ok(EventBatch { events, next })
    }

    /// A cursor positioned at the tail: it sees only events recorded
    /// after this call.
    pub fn subscribe(&self) -> EventCursor {
        EventCursor {
            next: self.clock.load(Ordering::SeqCst),
        }
    }

    /// A cursor positioned at `seq` — replays retained history from
    /// there. The first [`EventCursor::poll`] errs with [`EventLag`] if
    /// `seq` is already evicted.
    pub fn subscribe_from(&self, seq: u64) -> EventCursor {
        EventCursor { next: seq }
    }

    /// Number of *retained* events (≤ [`Monitor::recorded`]).
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.read().len()).sum()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// The oldest sequence guaranteed still retained. `0` until the
    /// first eviction.
    pub fn oldest_retained(&self) -> u64 {
        self.evicted.load(Ordering::SeqCst)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// Renders the retained log as text.
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        for (t, e) in self.events() {
            out.push_str(&format!("[{t:>6}] {e}\n"));
        }
        out
    }
}

/// Renders an instance as a DOT graph annotated with node states (the
/// monitoring component's visualisation).
pub fn render_instance_dot(schema: &ProcessSchema, state: &InstanceState) -> String {
    let mut ann: BTreeMap<NodeId, String> = BTreeMap::new();
    for (n, s) in state.marking.marked_nodes() {
        ann.insert(n, s.to_string());
    }
    render::to_dot(schema, &ann)
}

/// Renders a compact one-line-per-activity state summary of an instance.
pub fn render_instance_summary(schema: &ProcessSchema, state: &InstanceState) -> String {
    let mut out = String::new();
    for n in schema.activities() {
        let s = state.marking.node(n.id);
        let mark = match s {
            NodeState::NotActivated => " ",
            NodeState::Activated => "◦",
            NodeState::Running => "▶",
            NodeState::Completed => "✔",
            NodeState::Skipped => "✘",
        };
        out.push_str(&format!("  {mark} {:<24} {}\n", n.name, s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_model::SchemaBuilder;
    use adept_state::Execution;

    #[test]
    fn monitor_records_in_order() {
        let m = Monitor::new();
        assert!(m.is_empty());
        m.record(EngineEvent::Deployed {
            type_name: "x".into(),
        });
        m.record(EngineEvent::InstanceCreated {
            instance: InstanceId(1),
            version: 1,
        });
        assert_eq!(m.len(), 2);
        let ev = m.events();
        assert!(ev[0].0 < ev[1].0);
        let log = m.render_log();
        assert!(log.contains("deployed \"x\""));
        assert!(log.contains("I1 created on V1"));
    }

    fn ev(i: u64) -> EngineEvent {
        EngineEvent::InstanceFinished {
            instance: InstanceId(i),
        }
    }

    #[test]
    fn retention_evicts_oldest_and_lags_stale_cursors() {
        let m = Monitor::new();
        m.set_retention(16); // one slot per shard
        for i in 0..48u64 {
            m.record(ev(i));
        }
        assert_eq!(m.recorded(), 48);
        assert_eq!(m.len(), 16, "ring bounded at the cap");
        assert_eq!(m.oldest_retained(), 32);
        // Retained view is the contiguous newest window.
        let seqs: Vec<u64> = m.events().iter().map(|(t, _)| *t).collect();
        assert_eq!(seqs, (32..48).collect::<Vec<u64>>());
        // A cursor behind the watermark gets an explicit error.
        let err = m.events_since(10).unwrap_err();
        assert_eq!(err.oldest, 32);
        // At the watermark it reads cleanly.
        let batch = m.events_since(32).unwrap();
        assert_eq!(batch.events.len(), 16);
        assert_eq!(batch.next, 48);
    }

    #[test]
    fn cursor_polls_deltas_and_resyncs_after_lag() {
        let m = Monitor::new();
        m.record(ev(1));
        let mut c = m.subscribe();
        assert_eq!(c.poll(&m).unwrap(), vec![], "tail cursor skips history");
        m.record_all((2..5).map(ev));
        let got = c.poll(&m).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, 1);
        assert_eq!(c.position(), 4);
        // Replay-from-zero sees everything still retained.
        let mut z = m.subscribe_from(0);
        assert_eq!(z.poll(&m).unwrap().len(), 4);
        // Force eviction past the cursor, then resync.
        m.set_retention(16);
        for i in 0..64u64 {
            m.record(ev(i));
        }
        let mut stale = m.subscribe_from(0);
        assert!(stale.poll(&m).is_err());
        let skipped = stale.resync(&m);
        assert!(skipped > 0);
        let batch = stale.poll(&m).unwrap();
        assert_eq!(batch.len(), 16);
    }

    #[test]
    fn reader_stays_contiguous_under_concurrent_recorders() {
        // The per-shard scan holds one guard at a time, so recorders
        // keep landing events mid-merge; the contiguous-prefix rule
        // must still hand the poller a gap-free, duplicate-free stream.
        let m = std::sync::Arc::new(Monitor::new());
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        m.record(ev(w * 1000 + i));
                    }
                })
            })
            .collect();
        let mut cursor = m.subscribe_from(0);
        let mut seen = 0u64;
        while seen < 800 {
            let batch = cursor.poll(&m).expect("retention never exceeded");
            for (t, _) in &batch {
                assert_eq!(*t, seen, "stream must be gap- and duplicate-free");
                seen += 1;
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(m.recorded(), 800);
        assert_eq!(m.events().len(), 800);
    }

    #[test]
    fn instance_rendering() {
        let mut b = SchemaBuilder::new("r");
        let a = b.activity("approve");
        let s = b.build().unwrap();
        let ex = Execution::new(&s).unwrap();
        let mut st = ex.init().unwrap();
        ex.start_activity(&mut st, a).unwrap();
        let dot = render_instance_dot(&s, &st);
        assert!(dot.contains("Running"));
        let summary = render_instance_summary(&s, &st);
        assert!(summary.contains("approve"));
        assert!(summary.contains("Running"));
    }
}
