//! The ADEPT2 process engine: deployment, command-based execution, ad-hoc
//! change, schema evolution and batch migration.

use crate::command::{EngineCommand, ExecCtx};
use crate::monitor::{EngineEvent, Monitor};
use crate::shard::ShardedMap;
use crate::worklist::{items_for, WorkItem, WorklistDelta, WorklistIndex};
use adept_core::{
    adapt_instance_state, apply_op, check_fast, compliance::check_fast_op, migrate_instance,
    ChangeError, ChangeOp, ConflictKind, Delta, InstanceOutcome, MigrationOptions, MigrationReport,
    Verdict,
};
use adept_model::{Blocks, DataId, InstanceId, NodeId, ProcessSchema, Value};
use adept_state::{Decision, Driver, Execution, RuntimeError};
use adept_storage::ordered::classes;
use adept_storage::{
    InstanceRecord, InstanceStore, JournaledError, MemoryBreakdown, Representation,
    SchemaRepository, Snapshot, StorageBackend, StorageError, StoredInstance, TxnLog, TxnRecord,
    TxnTarget, WalRecord, WriteAheadLog,
};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Engine-level error.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A change operation failed.
    Change(ChangeError),
    /// A runtime operation failed.
    Runtime(RuntimeError),
    /// A named entity does not exist.
    NotFound(String),
    /// The durability subsystem failed (journaling, snapshot codec,
    /// recovery). A commit that reports this was **not** applied.
    Storage(StorageError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Change(e) => write!(f, "change error: {e}"),
            EngineError::Runtime(e) => write!(f, "runtime error: {e}"),
            EngineError::NotFound(what) => write!(f, "not found: {what}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl EngineError {
    /// Classifies the error for typed failure-path monitor events.
    pub fn failure_kind(&self) -> crate::monitor::FailureKind {
        use crate::monitor::FailureKind;
        match self {
            EngineError::Change(e) => FailureKind::of_change(e),
            EngineError::Runtime(_) => FailureKind::State,
            EngineError::NotFound(_) => FailureKind::Unresolvable,
            EngineError::Storage(_) => FailureKind::Internal,
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ChangeError> for EngineError {
    fn from(e: ChangeError) -> Self {
        EngineError::Change(e)
    }
}

impl From<RuntimeError> for EngineError {
    fn from(e: RuntimeError) -> Self {
        EngineError::Runtime(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<JournaledError> for EngineError {
    fn from(e: JournaledError) -> Self {
        match e {
            JournaledError::Change(e) => EngineError::Change(e),
            JournaledError::Storage(e) => EngineError::Storage(e),
        }
    }
}

/// The process-aware information system runtime. All state lives behind
/// interior locks, so `&ProcessEngine` is freely shared across threads
/// (parallel batch migration and concurrent command submission use this).
/// The instance store and every per-instance side table (context cache,
/// worklist index, failure dedupe) are sharded by `InstanceId::hash64`,
/// so commands on different instances contend on nothing but atomics.
#[derive(Debug)]
pub struct ProcessEngine {
    /// Deployed process types.
    pub repo: SchemaRepository,
    /// Running and finished instances (sharded; see [`InstanceStore`]).
    pub store: InstanceStore,
    /// The monitoring component.
    pub monitor: Monitor,
    /// The persisted log of committed change transactions.
    pub txn_log: TxnLog,
    /// Per-instance `(schema, blocks)` context cache shared by the command
    /// path and the worklist (invalidated on change/migration/undo).
    pub(crate) ctx_cache: ShardedMap<Arc<ExecCtx>>,
    /// The incrementally maintained worklist index.
    pub(crate) wl_index: WorklistIndex,
    /// Instances already reported as unresolvable by the worklist (one
    /// monitor event per ongoing failure, not one per poll).
    wl_failures: ShardedMap<()>,
    /// Whether unbiased instances run on the compiled arena core (default
    /// `true`). Flip off to force the interpreter everywhere — the knob
    /// the equivalence suite and the macro benchmark compare across.
    compiled_enabled: AtomicBool,
    /// Commands/creates/drives served by the compiled tier.
    path_compiled: AtomicU64,
    /// Commands/creates/drives served by the interpreted tier.
    path_interp: AtomicU64,
}

impl ProcessEngine {
    /// Creates an engine with the ADEPT2 hybrid storage strategy.
    pub fn new() -> Self {
        Self::with_strategy(Representation::Hybrid)
    }

    /// Creates an engine with an explicit storage strategy (the Fig. 2
    /// experiments compare strategies).
    pub fn with_strategy(strategy: Representation) -> Self {
        Self {
            repo: SchemaRepository::new(),
            store: InstanceStore::new(strategy),
            monitor: Monitor::new(),
            txn_log: TxnLog::new(),
            ctx_cache: ShardedMap::new(&classes::ENGINE_CTX_CACHE),
            wl_index: WorklistIndex::default(),
            wl_failures: ShardedMap::new(&classes::ENGINE_WL_FAILURES),
            compiled_enabled: AtomicBool::new(true),
            path_compiled: AtomicU64::new(0),
            path_interp: AtomicU64::new(0),
        }
    }

    /// Creates a **durable** engine (hybrid strategy): every committed
    /// mutation is journaled to `backend` before it becomes visible, and
    /// [`crate::recovery::recover`] can rebuild the exact engine from the
    /// log (plus an optional snapshot) after a crash. The backend must be
    /// empty — recovering an existing log is `recover`'s job.
    pub fn with_wal(backend: Box<dyn StorageBackend>) -> Result<Self, EngineError> {
        Self::with_strategy_and_wal(Representation::Hybrid, backend)
    }

    /// [`ProcessEngine::with_wal`] with an explicit storage strategy.
    pub fn with_strategy_and_wal(
        strategy: Representation,
        backend: Box<dyn StorageBackend>,
    ) -> Result<Self, EngineError> {
        let wal = WriteAheadLog::create(backend)?;
        let mut engine = Self::with_strategy(strategy);
        engine.txn_log = TxnLog::over(Arc::new(wal));
        Ok(engine)
    }

    /// Creates a **durable** engine whose write-ahead log is segmented
    /// across several backends (a power-of-two count, each empty):
    /// sequence `s` lands in segment `(s − 1) mod N`, so concurrent
    /// journal appends from different store shards spread across
    /// independent backend locks instead of serializing on one. Global
    /// order is kept by the atomic sequence allocator; recovery
    /// ([`crate::recovery::recover_segmented`]) merges the segments back
    /// by sequence. One segment is byte-identical to
    /// [`ProcessEngine::with_wal`].
    pub fn with_segmented_wal(backends: Vec<Box<dyn StorageBackend>>) -> Result<Self, EngineError> {
        Self::with_strategy_and_segmented_wal(Representation::Hybrid, backends)
    }

    /// [`ProcessEngine::with_segmented_wal`] with an explicit storage
    /// strategy.
    pub fn with_strategy_and_segmented_wal(
        strategy: Representation,
        backends: Vec<Box<dyn StorageBackend>>,
    ) -> Result<Self, EngineError> {
        let wal = WriteAheadLog::create_segmented(backends)?;
        let mut engine = Self::with_strategy(strategy);
        engine.txn_log = TxnLog::over(Arc::new(wal));
        Ok(engine)
    }

    /// The engine's write-ahead log (disabled unless constructed with
    /// [`ProcessEngine::with_wal`] or recovered onto a backend).
    pub fn wal(&self) -> &Arc<WriteAheadLog> {
        self.txn_log.wal()
    }

    /// Appends one record to the write-ahead log; a cheap no-op when the
    /// engine is not durable (the record is only *built* when a backend
    /// is attached).
    pub(crate) fn journal(&self, build: impl FnOnce() -> WalRecord) -> Result<(), StorageError> {
        let wal = self.txn_log.wal();
        if wal.enabled() {
            wal.append(build()).map(|_| ())
        } else {
            Ok(())
        }
    }

    /// Assembles an engine around an existing repository and store (the
    /// persistence restore path: `adept_storage::persist::restore`).
    ///
    /// The transaction log starts **empty**, so sequence numbers restart
    /// at 1 — when restoring a [`Snapshot`] that carries committed
    /// transactions, use [`ProcessEngine::from_snapshot`] (or
    /// [`ProcessEngine::from_parts_with_log`]) to keep the change
    /// history and its numbering intact.
    pub fn from_parts(repo: SchemaRepository, store: InstanceStore) -> Self {
        Self::from_parts_with_log(repo, store, TxnLog::new())
    }

    /// Captures a persistence snapshot of the whole engine: repository,
    /// instance store, the committed change-transaction log, and the WAL
    /// watermark the snapshot covers.
    ///
    /// The watermark is the WAL's **durable** position — the highest
    /// sequence every predecessor of which was successfully appended —
    /// read **before** the store state is composed: replaying WAL entries
    /// past the watermark is idempotent (they carry full post-images), so
    /// a mutation landing between the two reads is covered either by the
    /// snapshot or by replay — never lost. Reading the raw allocator
    /// position instead could claim coverage of sequences still in
    /// flight (or about to fail). As with the store scan itself, a
    /// point-in-time snapshot of a live engine requires quiescence;
    /// snapshot-under-traffic is best-effort, and a checkpoint that
    /// *truncates* the WAL ([`ProcessEngine::checkpoint_with`]) must be
    /// externally quiesced with respect to appends.
    pub fn snapshot(&self) -> Snapshot {
        let pos = self.txn_log.wal().durable_position();
        let mut s = adept_storage::snapshot_with_txns(&self.repo, &self.store, &self.txn_log);
        s.wal_seq = pos;
        s
    }

    /// Checkpoints a durable engine: captures a snapshot, hands it to
    /// `persist` (write it somewhere durable), and truncates the WAL only
    /// if persisting succeeded — the log is never dropped before its
    /// replacement is safe. Returns the snapshot. On a non-durable engine
    /// this is just [`ProcessEngine::snapshot`] + `persist`.
    pub fn checkpoint_with(
        &self,
        persist: impl FnOnce(&Snapshot) -> Result<(), StorageError>,
    ) -> Result<Snapshot, EngineError> {
        let snap = self.snapshot();
        persist(&snap)?;
        self.txn_log.wal().truncate()?;
        self.monitor.record(EngineEvent::CheckpointTaken {
            wal_seq: snap.wal_seq,
        });
        Ok(snap)
    }

    /// Restores an engine from a snapshot, including the transaction log
    /// (so the audit trail and its sequence numbering survive a
    /// save/restore round-trip).
    pub fn from_snapshot(s: &Snapshot) -> Result<Self, EngineError> {
        let (repo, store, txn_log) = adept_storage::restore_with_txns(s)?;
        Ok(Self::from_parts_with_log(repo, store, txn_log))
    }

    /// Assembles an engine around restored repository, store and
    /// transaction log (`adept_storage::persist::restore_with_txns`).
    pub fn from_parts_with_log(
        repo: SchemaRepository,
        store: InstanceStore,
        txn_log: TxnLog,
    ) -> Self {
        Self {
            repo,
            store,
            monitor: Monitor::new(),
            txn_log,
            ctx_cache: ShardedMap::new(&classes::ENGINE_CTX_CACHE),
            wl_index: WorklistIndex::default(),
            wl_failures: ShardedMap::new(&classes::ENGINE_WL_FAILURES),
            compiled_enabled: AtomicBool::new(true),
            path_compiled: AtomicU64::new(0),
            path_interp: AtomicU64::new(0),
        }
    }

    // ------------------------------------------------------------------
    // Execution-path selection
    // ------------------------------------------------------------------

    /// Whether unbiased instances run on the compiled arena core.
    pub fn compiled_enabled(&self) -> bool {
        self.compiled_enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables the compiled execution core. Takes effect on
    /// the next context resolution of each instance: a cached context
    /// whose path disagrees with the flag is treated as stale and
    /// rebuilt, so no command runs on the old tier after the flip.
    pub fn set_compiled_enabled(&self, enabled: bool) {
        self.compiled_enabled.store(enabled, Ordering::Relaxed);
    }

    /// `(compiled, interpreted)` — how many command-path executions each
    /// tier served. Biased instances always count on the interpreted side;
    /// this is how the equivalence suite proves the fallback actually
    /// triggers.
    pub fn exec_path_counts(&self) -> (u64, u64) {
        (
            self.path_compiled.load(Ordering::Relaxed),
            self.path_interp.load(Ordering::Relaxed),
        )
    }

    /// Tallies one command-path execution on the given tier.
    pub(crate) fn note_path(&self, compiled: bool) {
        if compiled {
            self.path_compiled.fetch_add(1, Ordering::Relaxed);
        } else {
            self.path_interp.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // Deployment and instance creation
    // ------------------------------------------------------------------

    /// Deploys a process template as a new type (version 1). On a durable
    /// engine the deployment is journaled after it verifies and before it
    /// becomes visible; a journaling failure installs nothing.
    pub fn deploy(&self, schema: ProcessSchema) -> Result<String, EngineError> {
        let wal = self.txn_log.wal();
        let name = if wal.enabled() {
            self.repo.deploy_journaled(schema, |s| {
                wal.append(WalRecord::Deployed { schema: s.clone() })
                    .map(|_| ())
            })?
        } else {
            self.repo.deploy(schema)?
        };
        self.monitor.record(EngineEvent::Deployed {
            type_name: name.clone(),
        });
        Ok(name)
    }

    /// Creates an instance on the newest version of a type (thin wrapper
    /// over [`EngineCommand::CreateInstance`]).
    pub fn create_instance(&self, type_name: &str) -> Result<InstanceId, EngineError> {
        self.submit(EngineCommand::CreateInstance {
            type_name: type_name.to_string(),
        })
        .map(|o| o.instance)
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// The owned schema + block structure a change session stages against
    /// (see [`ProcessEngine::begin_change`]).
    pub(crate) fn change_context(
        &self,
        id: InstanceId,
    ) -> Result<(ProcessSchema, Blocks), EngineError> {
        let ctx = self.exec_context(id)?;
        Ok(((*ctx.schema).clone(), (*ctx.blocks).clone()))
    }

    /// The materialised `(schema, blocks)` context of an instance — the
    /// shared `Arc`s the command path executes against (bias already
    /// overlaid). External observers like the adaptation loop build
    /// read-only [`Execution`]s from this without cloning the schema.
    pub fn materialized(
        &self,
        id: InstanceId,
    ) -> Result<(Arc<ProcessSchema>, Arc<Blocks>), EngineError> {
        let ctx = self.exec_context(id)?;
        Ok((ctx.schema.clone(), ctx.blocks.clone()))
    }

    /// The global worklist: every activated activity of every instance,
    /// answered from the incremental index (instances the index does not
    /// cover are recomputed and installed on the way).
    ///
    /// The index is maintained by command outcomes and invalidated by
    /// change commits, migrations and undos — every mutation the engine's
    /// own API performs. Code that mutates instance state **directly
    /// through the public `store` field** bypasses that bookkeeping and
    /// must call [`ProcessEngine::refresh_worklist`] for the touched
    /// instance (or use [`ProcessEngine::worklist_full`]) to see its
    /// effect here.
    ///
    /// Instances whose store entry or schema context cannot be resolved are
    /// skipped, but no longer silently: each failure is recorded as an
    /// [`EngineEvent::WorklistResolutionFailed`] monitor event. Use
    /// [`ProcessEngine::try_worklist`] to fail fast instead.
    pub fn worklist(&self) -> Vec<WorkItem> {
        self.worklist_inner(false)
            .expect("invariant: the lenient worklist pass records failures instead of erroring")
    }

    /// Drops an instance's cached execution context and worklist entry so
    /// the next read recomputes both — the escape hatch for callers that
    /// mutate instance state directly through the public `store` field
    /// instead of submitting commands.
    pub fn refresh_worklist(&self, id: InstanceId) {
        self.invalidate_instance(id);
    }

    /// [`ProcessEngine::worklist`], failing on the first instance whose
    /// store entry or schema context cannot be resolved — the strict
    /// variant monitoring components use to surface store corruption.
    pub fn try_worklist(&self) -> Result<Vec<WorkItem>, EngineError> {
        self.worklist_inner(true)
    }

    fn worklist_inner(&self, strict: bool) -> Result<Vec<WorkItem>, EngineError> {
        let ids = self.store.ids();
        let mut items = Vec::new();
        let mut misses = Vec::new();
        // Steady state: one index lock pass serves the whole population.
        self.wl_index.collect(&ids, &mut items, &mut misses);
        for id in misses {
            match self.compute_items(id) {
                Ok(list) => {
                    self.wl_failures.remove(id);
                    items.extend(list);
                }
                Err(e) if strict => return Err(e),
                Err(e) => {
                    // An instance that vanished between the ids()
                    // snapshot and the recompute was *removed*, not
                    // corrupted: no report, and no dedupe entry may stay
                    // behind (the id never reappears, so nothing else
                    // would clear it).
                    if self.store.with_instance(id, |_| ()).is_none() {
                        self.wl_failures.remove(id);
                        continue;
                    }
                    // Report each ongoing failure once, not once per
                    // poll — a permanently dangling instance must not
                    // grow the monitor log without bound. Recovery
                    // re-arms the report (see the Ok branch).
                    if self.wl_failures.insert(id, ()).is_none() {
                        self.monitor.record(EngineEvent::WorklistResolutionFailed {
                            instance: id,
                            kind: e.failure_kind(),
                            reason: e.to_string(),
                        });
                    }
                    // Post-insert re-check: a removal racing in between
                    // the check above and the insert must not leak the
                    // entry (removal clears the set before we re-read).
                    if self.store.with_instance(id, |_| ()).is_none() {
                        self.wl_failures.remove(id);
                    }
                }
            }
        }
        Ok(items)
    }

    /// Recomputes one instance's work items and installs them into the
    /// index (stamped with the pre-read epoch, so a racing command's newer
    /// install wins).
    pub(crate) fn compute_items(&self, id: InstanceId) -> Result<Vec<WorkItem>, EngineError> {
        for _ in 0..4 {
            let epoch = self.wl_index.current();
            let ctx = self.exec_context(id)?;
            let computed = self
                .store
                .with_instance(id, |inst| {
                    if !ctx.matches(inst) {
                        return None;
                    }
                    let ex = ctx.exec();
                    let enabled = ex.enabled(&inst.state);
                    Some(items_for(
                        ex.schema(),
                        &enabled,
                        id,
                        &inst.type_name,
                        inst.version,
                    ))
                })
                .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
            match computed {
                Some(list) => {
                    self.wl_index.install_lazy(id, epoch, list.clone());
                    return Ok(list);
                }
                None => self.invalidate_instance(id),
            }
        }
        // A writer raced every attempt; serve items derived from ONE
        // cloned instance snapshot — the schema is re-materialised from
        // that same snapshot's bias rather than fetched by a second store
        // read, which could see a newer version and tear the pair — and
        // do not install them.
        let inst = self
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        let dep = self
            .repo
            .deployed(&inst.type_name, inst.version)
            .ok_or_else(|| EngineError::NotFound(format!("schema of {id}")))?;
        let schema = if inst.is_biased() {
            Arc::new(
                inst.subst
                    .overlay(&dep.schema)
                    .map_err(|e| EngineError::Change(ChangeError::Precondition(e.to_string())))?,
            )
        } else {
            dep.schema
        };
        let ex = Execution::new(&schema)
            .map_err(|e| EngineError::Change(ChangeError::Precondition(e.to_string())))?;
        let enabled = ex.enabled(&inst.state);
        Ok(items_for(
            &schema,
            &enabled,
            id,
            &inst.type_name,
            inst.version,
        ))
    }

    /// The worklist filtered by actor role (items without a role are
    /// claimable by anyone).
    pub fn worklist_for(&self, role: &str) -> Vec<WorkItem> {
        self.worklist()
            .into_iter()
            .filter(|w| w.claimable_by(role))
            .collect()
    }

    /// The worklist recomputed from scratch for every instance, bypassing
    /// the incremental index. This is the reference implementation the
    /// index is property-checked against (and the baseline of the
    /// `worklist` benchmark) — prefer [`ProcessEngine::worklist`].
    pub fn worklist_full(&self) -> Vec<WorkItem> {
        let mut items = Vec::new();
        for id in self.store.ids() {
            let Ok(ctx) = self.exec_context(id) else {
                continue;
            };
            let found = self.store.with_instance(id, |inst| {
                let ex = ctx.exec();
                let enabled = ex.enabled(&inst.state);
                items_for(ex.schema(), &enabled, id, &inst.type_name, inst.version)
            });
            items.extend(found.into_iter().flatten());
        }
        items
    }

    /// The worklist as a **delta** since a previous poll: what changed
    /// after epoch `since`, instead of a full clone of every item.
    ///
    /// Consumers keep the returned `epoch` and pass it as the next
    /// `since`; `since == 0` bootstraps (everything currently offered is
    /// reported as added). Apply a delta by dropping every id in
    /// `invalidated`, then **replacing** the item set of every id in
    /// `added` — each added entry carries the instance's full current
    /// set, so application is idempotent. Replaying deltas from 0
    /// reconstructs exactly [`ProcessEngine::worklist_full`] (property-
    /// checked in the test suite).
    ///
    /// The scan is one coherent pass over the index (all shard read
    /// guards held together); in-flight command installs hold the
    /// reported epoch back, so their effects land in the *next* delta
    /// rather than falling into a cursor gap. Instances the index does
    /// not cover are recomputed on the way, **installed** (stamped with
    /// the pre-scan epoch, so a racing command's newer install wins) and
    /// reported — so a miss costs one recompute, not one per poll; an
    /// instance that cannot be resolved because it vanished is reported
    /// as invalidated.
    pub fn worklist_delta(&self, since: u64) -> WorklistDelta {
        // Read before the scan: anything a racing writer changes after
        // this point carries a newer epoch and out-prioritises the lazy
        // installs below (the tombstone watermark rejects stale ones).
        let scan_epoch = self.wl_index.current();
        let ids = self.store.ids();
        let d = self.wl_index.delta(since, &ids);
        let mut added = d.updated;
        let mut invalidated = d.invalidated;
        for id in d.misses {
            match self.compute_items(id) {
                Ok(list) => {
                    self.wl_failures.remove(id);
                    added.push((id, list));
                }
                // Vanished mid-scan = removed: tell the consumer to drop
                // it. Still present but unresolvable = offers nothing —
                // install the empty set so the miss is recomputed once,
                // not on every poll, and report the failure once (the
                // same one-shot dedupe the worklist read path uses).
                Err(e) => {
                    if self.store.with_instance(id, |_| ()).is_none() {
                        self.wl_failures.remove(id);
                        invalidated.push(id);
                    } else {
                        if self.wl_failures.insert(id, ()).is_none() {
                            self.monitor.record(EngineEvent::WorklistResolutionFailed {
                                instance: id,
                                kind: e.failure_kind(),
                                reason: e.to_string(),
                            });
                        }
                        // Post-insert re-check: a racing removal must not
                        // leak the dedupe entry (removal clears the set
                        // before we re-read).
                        if self.store.with_instance(id, |_| ()).is_none() {
                            self.wl_failures.remove(id);
                        }
                        self.wl_index.install_lazy(id, scan_epoch, Vec::new());
                        added.push((id, Vec::new()));
                    }
                }
            }
        }
        added.sort_by_key(|(id, _)| id.0);
        invalidated.sort();
        invalidated.dedup();
        WorklistDelta {
            added,
            invalidated,
            epoch: d.epoch,
        }
    }

    /// Starts an activated activity of an instance.
    #[deprecated(
        since = "0.4.0",
        note = "use submit(EngineCommand::Start { instance, node })"
    )]
    pub fn start_activity(&self, id: InstanceId, node: NodeId) -> Result<(), EngineError> {
        self.submit(EngineCommand::Start { instance: id, node })
            .map(|_| ())
    }

    /// Completes a running activity with its output values.
    #[deprecated(
        since = "0.4.0",
        note = "use submit(EngineCommand::Complete { instance, node, writes })"
    )]
    pub fn complete_activity(
        &self,
        id: InstanceId,
        node: NodeId,
        writes: Vec<(DataId, Value)>,
    ) -> Result<(), EngineError> {
        self.submit(EngineCommand::Complete {
            instance: id,
            node,
            writes,
        })
        .map(|_| ())
    }

    /// Pending XOR/loop decisions of an instance.
    pub fn pending_decisions(&self, id: InstanceId) -> Result<Vec<Decision>, EngineError> {
        let ctx = self.exec_context(id)?;
        self.store
            .with_instance(id, |inst| ctx.execution().pending_decisions(&inst.state))
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))
    }

    /// Resolves a pending XOR decision.
    #[deprecated(
        since = "0.4.0",
        note = "use submit(EngineCommand::DecideXor { instance, split, branch_target })"
    )]
    pub fn decide_xor(
        &self,
        id: InstanceId,
        split: NodeId,
        branch_target: NodeId,
    ) -> Result<(), EngineError> {
        self.submit(EngineCommand::DecideXor {
            instance: id,
            split,
            branch_target,
        })
        .map(|_| ())
    }

    /// Resolves a pending loop decision.
    #[deprecated(
        since = "0.4.0",
        note = "use submit(EngineCommand::DecideLoop { instance, loop_end, iterate })"
    )]
    pub fn decide_loop(
        &self,
        id: InstanceId,
        loop_end: NodeId,
        iterate: bool,
    ) -> Result<(), EngineError> {
        self.submit(EngineCommand::DecideLoop {
            instance: id,
            loop_end,
            iterate,
        })
        .map(|_| ())
    }

    /// Drives an instance forward with a driver (simulation), completing at
    /// most `max_activities`.
    #[deprecated(
        since = "0.4.0",
        note = "use submit_with_driver(EngineCommand::Drive { instance, max }, driver)"
    )]
    pub fn run_instance(
        &self,
        id: InstanceId,
        driver: &mut dyn Driver,
        max_activities: Option<usize>,
    ) -> Result<usize, EngineError> {
        self.submit_with_driver(
            EngineCommand::Drive {
                instance: id,
                max: max_activities,
            },
            driver,
        )
        .map(|o| o.completed)
    }

    /// Whether an instance has reached its end node.
    pub fn is_finished(&self, id: InstanceId) -> Result<bool, EngineError> {
        let ctx = self.exec_context(id)?;
        self.store
            .with_instance(id, |inst| ctx.execution().is_finished(&inst.state))
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))
    }

    /// All instance ids across all types, in id order (straight from the
    /// store, so instances with a dangling type name are included).
    pub fn all_instances(&self) -> Vec<InstanceId> {
        self.store.ids()
    }

    /// Removes an instance from the engine (cancellation / archival),
    /// returning its final stored form. The cached execution context and
    /// every worklist trace are dropped with it; an in-flight migration
    /// that loses the instance to this call reports it as
    /// [`ConflictKind::Vanished`], not as a conflict.
    pub fn remove_instance(&self, id: InstanceId) -> Result<StoredInstance, EngineError> {
        // Write-ahead: journal the removal before it happens. A racing
        // second removal can leave a duplicate or dangling Removed record
        // in the log; replay treats Removed leniently, so that is
        // harmless — the losing caller still gets NotFound below.
        if self.store.with_instance(id, |_| ()).is_some() {
            self.journal(|| WalRecord::Removed { id })?;
        }
        let inst = self
            .store
            .remove(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        self.ctx_cache.remove(id);
        // invalidate (not a bare entry drop): the tombstone watermark
        // blocks an in-flight recompute from resurrecting an entry no
        // later pass would ever clear.
        self.wl_index.invalidate(id);
        self.wl_failures.remove(id);
        self.monitor
            .record(EngineEvent::InstanceRemoved { instance: id });
        Ok(inst)
    }

    // ------------------------------------------------------------------
    // Ad-hoc change (instance level)
    // ------------------------------------------------------------------

    /// Applies an ad-hoc change to a single running instance.
    ///
    /// Thin wrapper over a one-operation change transaction
    /// ([`ProcessEngine::begin_change`] → stage → commit): the operation's
    /// structural preconditions, the full verification postcondition and
    /// the Fig. 1 state precondition all still apply, and on success the
    /// instance's bias, substitution block and adapted state are committed
    /// atomically — other instances are unaffected.
    #[deprecated(
        since = "0.3.0",
        note = "use begin_change(id) → stage(op) → preview()/commit(); one transaction \
                amortises verification over all staged ops"
    )]
    pub fn ad_hoc_change(&self, id: InstanceId, op: &ChangeOp) -> Result<(), EngineError> {
        let mut session = self.begin_change(id)?;
        session.stage(op)?;
        session.commit()?;
        Ok(())
    }

    /// Undoes the most recent ad-hoc change of an instance (inverse
    /// operation with full pre-/post-condition and state checking). The
    /// bias shrinks; if it becomes empty the instance is unbiased again
    /// and shares the deployed schema.
    pub fn undo_ad_hoc_change(&self, id: InstanceId) -> Result<(), EngineError> {
        // Context and instance snapshot must describe the same (version,
        // bias) — a change committing between the two reads would pair an
        // inverse computed against the old schema with the new bias and
        // still pass the final CAS. Re-resolve until they agree; the CAS
        // at install keeps the pair authoritative.
        let (ctx, inst) = {
            let mut attempts = 0;
            loop {
                let ctx = self.exec_context(id)?;
                let inst = self
                    .store
                    .get(id)
                    .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
                if ctx.matches(&inst) {
                    break (ctx, inst);
                }
                self.invalidate_instance(id);
                attempts += 1;
                if attempts >= 8 {
                    return Err(EngineError::Change(ChangeError::Precondition(format!(
                        "concurrent modification: context of {id} kept changing during undo"
                    ))));
                }
            }
        };
        let (current, blocks) = (&ctx.schema, &ctx.blocks);
        let mut materialized = (**current).clone();
        let mut bias = inst.bias.clone();
        let last = bias.ops.last().cloned().ok_or_else(|| {
            EngineError::Change(ChangeError::Precondition(
                "instance is unbiased; nothing to undo".into(),
            ))
        })?;
        let inv = adept_core::inverse_of(&materialized, &last).ok_or_else(|| {
            EngineError::Change(ChangeError::Precondition(format!(
                "{} is not invertible",
                last.op.name()
            )))
        })?;
        // State precondition of the inverse (e.g. cannot undo an insert
        // whose activity already ran).
        let probe_rec = {
            let mut probe = materialized.clone();
            apply_op(&mut probe, &inv)?
        };
        let verdict = check_fast_op(current, blocks, &inst.state, &probe_rec);
        if let Verdict::NotCompliant(c) = verdict {
            return Err(EngineError::Change(ChangeError::StatePrecondition {
                node: probe_rec
                    .anchor_nodes()
                    .first()
                    .copied()
                    .unwrap_or(NodeId(0)),
                reason: c.to_string(),
            }));
        }
        let rec =
            adept_core::undo_last(&mut materialized, &mut bias).map_err(EngineError::Change)?;
        let applied_inverse = rec.op.clone();
        let new_ex = Execution::new(&materialized)
            .map_err(|e| EngineError::Change(ChangeError::Precondition(e.to_string())))?;
        let mut st = inst.state.clone();
        let single: Delta = std::iter::once(rec).collect();
        adapt_instance_state(current, blocks, &new_ex, &single, &mut st)?;
        // The undo is a committed change like any other: it gets its own
        // transaction record (applied inverse + the op that would redo it)
        // so the audit trail can reconstruct the bias exactly. On a
        // durable engine the instance post-image and that record are
        // journaled in one WAL line before the install becomes visible —
        // a journaling failure aborts the undo.
        let wal = self.txn_log.wal();
        let mut seq = 0u64;
        let installed = self.store.set_bias_if_journaled(
            id,
            inst.version,
            &inst.bias,
            &inst.state,
            bias,
            &materialized,
            st,
            |candidate| {
                wal.append_txn(|txn_seq| {
                    let txn = TxnRecord {
                        seq: txn_seq,
                        target: TxnTarget::Instance(id),
                        ops: vec![applied_inverse.clone()],
                        inverses: vec![Some(last.op.clone())],
                    };
                    (
                        WalRecord::ChangeCommitted {
                            record: InstanceRecord::of(candidate),
                            txn: txn.clone(),
                        },
                        txn,
                    )
                })
                .map(|s| seq = s)
            },
        )?;
        if !installed {
            return Err(EngineError::Change(ChangeError::Precondition(format!(
                "concurrent change: {id} was modified while the undo committed"
            ))));
        }
        self.invalidate_instance(id);
        self.monitor.record(EngineEvent::AdHocChanged {
            instance: id,
            op: format!("undo {}", last.op.name()),
        });
        self.monitor.record(EngineEvent::TxnCommitted {
            target: id.to_string(),
            ops: 1,
            seq,
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Schema evolution and migration
    // ------------------------------------------------------------------

    /// Evolves a process type to a new version.
    ///
    /// Thin wrapper over a change transaction
    /// ([`ProcessEngine::begin_evolution`] → stage each op → commit), so
    /// the whole batch pays one verification pass and either becomes one
    /// new version or — if any operation fails — no version at all.
    #[deprecated(
        since = "0.3.0",
        note = "use begin_evolution(type) → stage(op) → preview()/commit() for staged, \
                previewable multi-op evolutions"
    )]
    pub fn evolve_type(
        &self,
        type_name: &str,
        ops: &[ChangeOp],
    ) -> Result<(u32, Delta), EngineError> {
        let mut session = self.begin_evolution(type_name)?;
        for op in ops {
            session.stage(op)?;
        }
        let receipt = session.commit()?;
        Ok((
            receipt
                .new_version
                .expect("invariant: a committed evolution always carries its new version"),
            receipt.delta,
        ))
    }

    /// Migrates all instances of a type to its newest version (hop by hop
    /// through intermediate versions). With `threads > 1` the per-instance
    /// checks and adaptations run in parallel worker threads — migrating
    /// thousands of instances on the fly is exactly the workload the paper
    /// targets.
    pub fn migrate_all(
        &self,
        type_name: &str,
        options: &MigrationOptions,
        threads: usize,
    ) -> Result<MigrationReport, EngineError> {
        let to_version = self
            .repo
            .latest_version(type_name)
            .ok_or_else(|| EngineError::NotFound(format!("process type {type_name:?}")))?;
        let ids = self.store.instances_of(type_name);
        let from_version = ids
            .iter()
            .filter_map(|id| self.store.get(*id).map(|i| i.version))
            .min()
            .unwrap_or(to_version);

        let outcomes: Vec<InstanceOutcome> = if threads <= 1 || ids.len() < 2 {
            ids.iter()
                .map(|id| self.migrate_one_isolated(type_name, *id, to_version, options))
                .collect()
        } else {
            let chunk = ids.len().div_ceil(threads);
            let mut results: Vec<Vec<InstanceOutcome>> = Vec::new();
            crossbeam::scope(|scope| {
                let handles: Vec<_> = ids
                    .chunks(chunk)
                    .map(|part| {
                        let h = scope.spawn(move |_| {
                            part.iter()
                                .map(|id| {
                                    self.migrate_one_isolated(type_name, *id, to_version, options)
                                })
                                .collect::<Vec<_>>()
                        });
                        (part, h)
                    })
                    .collect();
                for (part, h) in handles {
                    // Per-instance panics are already caught inside the
                    // worker; a panic that still reaches the join (e.g.
                    // in the collection machinery itself) downgrades the
                    // chunk to per-instance failure outcomes instead of
                    // aborting the whole batch — one poisoned instance
                    // must not sink a 10k-instance migration.
                    results.push(
                        h.join()
                            .unwrap_or_else(|payload| panic_outcomes(part, &payload)),
                    );
                }
            })
            .expect("invariant: worker panics are caught at join, the scope itself cannot fail");
            results.into_iter().flatten().collect()
        };

        let report = MigrationReport {
            type_name: type_name.to_string(),
            from_version,
            to_version,
            outcomes,
        };
        Ok(report)
    }

    /// [`ProcessEngine::migrate_one`] behind a panic boundary: a panic in
    /// the migration of one instance (a poisoned state, a bug in a check)
    /// becomes that instance's failure outcome instead of unwinding into
    /// the batch. The store's locks recover from poisoning, so the rest
    /// of the population stays migratable.
    fn migrate_one_isolated(
        &self,
        type_name: &str,
        id: InstanceId,
        to_version: u32,
        options: &MigrationOptions,
    ) -> InstanceOutcome {
        catch_unwind(AssertUnwindSafe(|| {
            self.migrate_one(type_name, id, to_version, options)
        }))
        .unwrap_or_else(|payload| panic_outcome(id, &payload))
    }

    /// Migrates one instance hop by hop up to `to_version`. Returns its
    /// final outcome (the first conflict stops the chain).
    fn migrate_one(
        &self,
        type_name: &str,
        id: InstanceId,
        to_version: u32,
        options: &MigrationOptions,
    ) -> InstanceOutcome {
        // Bounded contention retries, mirroring the command path's
        // MAX_GROUP_RETRIES: a hot instance whose commands keep beating
        // the migration's read-check-install window must not spin a
        // migration worker forever. Successful hops reset the budget.
        const MAX_MIGRATE_RETRIES: usize = 8;
        let mut contested = 0usize;
        loop {
            let Some(inst) = self.store.get(id) else {
                // The instance was removed (cancelled/archived) while the
                // migration was in flight. That is not a structural
                // failure of the change — there is nothing left to
                // migrate — so it gets its own outcome kind and reports
                // stop counting it against the migration.
                return InstanceOutcome {
                    instance: id,
                    biased: false,
                    verdict: Verdict::conflict(
                        ConflictKind::Vanished,
                        "instance disappeared during migration",
                    ),
                };
            };
            if inst.version >= to_version {
                return InstanceOutcome {
                    instance: id,
                    biased: inst.is_biased(),
                    verdict: Verdict::Compliant,
                };
            }
            let next = inst.version + 1;
            let Some(delta) = self.repo.delta_between(type_name, inst.version) else {
                return InstanceOutcome {
                    instance: id,
                    biased: inst.is_biased(),
                    verdict: Verdict::conflict(
                        adept_core::ConflictKind::Structural,
                        format!("no recorded delta from V{} to V{next}", inst.version),
                    ),
                };
            };
            let Ok(ctx) = self.exec_context(id) else {
                // Distinguish "the instance was removed under us" (a
                // vanished outcome, like the initial read) from a genuine
                // materialisation failure.
                if self.store.with_instance(id, |_| ()).is_none() {
                    return InstanceOutcome {
                        instance: id,
                        biased: false,
                        verdict: Verdict::conflict(
                            ConflictKind::Vanished,
                            "instance disappeared during migration",
                        ),
                    };
                }
                return InstanceOutcome {
                    instance: id,
                    biased: inst.is_biased(),
                    verdict: Verdict::conflict(
                        adept_core::ConflictKind::Structural,
                        "cannot materialise current schema",
                    ),
                };
            };
            // The context must describe the same (version, bias) as the
            // instance snapshot read above — a change or another
            // migration hop committing between the two reads would pair
            // a stale snapshot with a fresher schema and mis-report a
            // consistent instance as conflicting. Re-read and re-check
            // (the Compliant path below is additionally CAS-guarded).
            if !ctx.matches(&inst) {
                contested += 1;
                if contested >= MAX_MIGRATE_RETRIES {
                    return contested_outcome(id, contested);
                }
                continue;
            }
            let Some(new_dep) = self.repo.deployed(type_name, next) else {
                return InstanceOutcome {
                    instance: id,
                    biased: inst.is_biased(),
                    verdict: Verdict::conflict(
                        adept_core::ConflictKind::Structural,
                        format!("V{next} not deployed"),
                    ),
                };
            };
            let res = migrate_instance(
                &ctx.schema,
                &ctx.blocks,
                &new_dep.schema,
                &delta,
                &inst.bias,
                &inst.state,
                options,
            );
            match res.verdict {
                Verdict::Compliant => {
                    let Some(adapted) = res.adapted else {
                        // A compliant verdict without adapted state is a
                        // checker bug; surface it as a per-instance
                        // failure instead of sinking the whole batch.
                        return InstanceOutcome {
                            instance: id,
                            biased: inst.is_biased(),
                            verdict: Verdict::conflict(
                                ConflictKind::Internal,
                                "compliant migration result carried no adapted state".to_string(),
                            ),
                        };
                    };
                    // CAS install: a command committing between this
                    // hop's read and its install must not be overwritten
                    // by state adapted from the stale snapshot — on a
                    // lost race the loop re-reads and re-checks the hop.
                    // On a durable engine the hop's post-image is
                    // journaled inside the CAS (before visibility); a
                    // journaling failure aborts the hop.
                    let wal = self.txn_log.wal();
                    let installed = self.store.migrate_if_journaled(
                        id,
                        Some((inst.version, &inst.state)),
                        next,
                        adapted,
                        res.materialized.as_ref(),
                        |candidate| {
                            if wal.enabled() {
                                wal.append(WalRecord::Migrated {
                                    record: InstanceRecord::of(candidate),
                                })
                                .map(|_| ())
                            } else {
                                Ok(())
                            }
                        },
                    );
                    match installed {
                        Err(e) => {
                            return InstanceOutcome {
                                instance: id,
                                biased: inst.is_biased(),
                                verdict: Verdict::conflict(
                                    ConflictKind::Internal,
                                    format!("migration hop could not be journaled: {e}"),
                                ),
                            };
                        }
                        Ok(false) => {
                            contested += 1;
                            if contested >= MAX_MIGRATE_RETRIES {
                                return contested_outcome(id, contested);
                            }
                            continue;
                        }
                        Ok(true) => {}
                    }
                    contested = 0;
                    self.invalidate_instance(id);
                    self.monitor.record(EngineEvent::Migrated {
                        instance: id,
                        to_version: next,
                    });
                }
                Verdict::NotCompliant(c) => {
                    self.monitor.record(EngineEvent::MigrationRejected {
                        instance: id,
                        node: None,
                        kind: crate::monitor::FailureKind::from(&c.kind),
                        reason: c.to_string(),
                    });
                    return InstanceOutcome {
                        instance: id,
                        biased: inst.is_biased(),
                        verdict: Verdict::NotCompliant(c),
                    };
                }
            }
        }
    }

    /// Re-checks compliance of an instance against a delta without applying
    /// anything (used by what-if tooling and tests).
    pub fn check_compliance(&self, id: InstanceId, delta: &Delta) -> Result<Verdict, EngineError> {
        let ctx = self.exec_context(id)?;
        self.store
            .with_instance(id, |inst| {
                check_fast(&ctx.schema, &ctx.blocks, &inst.state, delta)
            })
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))
    }

    /// Byte-level memory accounting (paper Fig. 2).
    pub fn memory(&self) -> MemoryBreakdown {
        self.store.memory(&self.repo)
    }

    /// Renders an instance for the monitoring component.
    pub fn render_instance(&self, id: InstanceId) -> Result<String, EngineError> {
        let ctx = self.exec_context(id)?;
        self.store
            .with_instance(id, |inst| {
                crate::monitor::render_instance_summary(&ctx.schema, &inst.state)
            })
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))
    }
}

impl Default for ProcessEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Best-effort rendering of a panic payload (`panic!` with a literal or a
/// formatted string covers practically every real panic).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// One [`ConflictKind::Internal`] failure outcome for an instance whose
/// migration panicked.
fn panic_outcome(id: InstanceId, payload: &(dyn std::any::Any + Send)) -> InstanceOutcome {
    InstanceOutcome {
        instance: id,
        biased: false,
        verdict: Verdict::conflict(
            ConflictKind::Internal,
            format!("migration worker panicked: {}", panic_message(payload)),
        ),
    }
}

/// The outcome of a migration that lost the read-check-install race to
/// concurrent commands on every attempt: the instance is fine, the
/// migration just could not be committed — the caller re-runs
/// `migrate_all` once traffic allows.
fn contested_outcome(id: InstanceId, attempts: usize) -> InstanceOutcome {
    InstanceOutcome {
        instance: id,
        biased: false,
        verdict: Verdict::conflict(
            ConflictKind::Internal,
            format!(
                "concurrent commands outpaced the migration ({attempts} contested attempts); re-run migrate_all"
            ),
        ),
    }
}

/// Failure outcomes for a whole chunk whose worker died before reporting —
/// the join-side backstop behind the per-instance `catch_unwind`.
fn panic_outcomes(
    ids: &[InstanceId],
    payload: &(dyn std::any::Any + Send),
) -> Vec<InstanceOutcome> {
    ids.iter().map(|id| panic_outcome(*id, payload)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_core::NewActivity;
    use adept_model::SchemaBuilder;

    /// Drives an instance through the command path.
    fn drive(engine: &ProcessEngine, id: InstanceId, max: Option<usize>) {
        engine
            .submit(EngineCommand::Drive { instance: id, max })
            .unwrap();
    }

    /// One-op ad-hoc change through a change session.
    fn adhoc(engine: &ProcessEngine, id: InstanceId, op: &ChangeOp) -> Result<(), EngineError> {
        let mut session = engine.begin_change(id)?;
        session.stage(op)?;
        session.commit().map(|_| ())
    }

    /// One-batch type evolution through a change session.
    fn evolve(engine: &ProcessEngine, name: &str, ops: &[ChangeOp]) -> u32 {
        let mut session = engine.begin_evolution(name).unwrap();
        for op in ops {
            session.stage(op).unwrap();
        }
        session
            .commit()
            .unwrap()
            .new_version
            .expect("evolution commits produce a version")
    }

    fn order_schema() -> ProcessSchema {
        let mut b = SchemaBuilder::new("online order");
        b.activity_with("get order", |a| a.role = Some("sales".into()));
        b.activity("collect data");
        b.and_split();
        b.branch();
        b.activity("confirm order");
        b.branch();
        b.activity("compose order");
        b.activity("pack goods");
        b.and_join();
        b.activity("deliver goods");
        b.build().unwrap()
    }

    #[test]
    fn full_lifecycle() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        let id = engine.create_instance(&name).unwrap();

        let wl = engine.worklist();
        assert_eq!(wl.len(), 1);
        assert_eq!(wl[0].activity, "get order");
        assert_eq!(engine.worklist_for("sales").len(), 1);
        assert_eq!(engine.worklist_for("warehouse").len(), 0);

        engine
            .submit(EngineCommand::Start {
                instance: id,
                node: wl[0].node,
            })
            .unwrap();
        let outcome = engine
            .submit(EngineCommand::Complete {
                instance: id,
                node: wl[0].node,
                writes: vec![],
            })
            .unwrap();
        assert!(!outcome.finished);
        assert!(!engine.is_finished(id).unwrap());

        drive(&engine, id, None);
        assert!(engine.is_finished(id).unwrap());
        assert!(engine
            .monitor
            .events()
            .iter()
            .any(|(_, e)| matches!(e, EngineEvent::InstanceFinished { .. })));
    }

    #[test]
    fn ad_hoc_change_biases_single_instance() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        let i1 = engine.create_instance(&name).unwrap();
        let i2 = engine.create_instance(&name).unwrap();

        let v1 = engine.repo.deployed(&name, 1).unwrap();
        let get = v1.schema.node_by_name("get order").unwrap().id;
        let collect = v1.schema.node_by_name("collect data").unwrap().id;
        adhoc(
            &engine,
            i1,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("check customer"),
                pred: get,
                succ: collect,
            },
        )
        .unwrap();

        let s1 = engine.store.schema_of(&engine.repo, i1).unwrap();
        let s2 = engine.store.schema_of(&engine.repo, i2).unwrap();
        assert!(s1.node_by_name("check customer").is_some());
        assert!(s2.node_by_name("check customer").is_none());
        assert!(engine.store.get(i1).unwrap().is_biased());
        assert!(!engine.store.get(i2).unwrap().is_biased());

        // The biased instance executes the inserted step.
        drive(&engine, i1, None);
        assert!(engine.is_finished(i1).unwrap());
    }

    #[test]
    fn ad_hoc_change_rejected_by_state() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        let id = engine.create_instance(&name).unwrap();
        drive(&engine, id, None);

        let v1 = engine.repo.deployed(&name, 1).unwrap();
        let get = v1.schema.node_by_name("get order").unwrap().id;
        let collect = v1.schema.node_by_name("collect data").unwrap().id;
        let err = adhoc(
            &engine,
            id,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("too late"),
                pred: get,
                succ: collect,
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Change(ChangeError::StatePrecondition { .. })
        ));
    }

    #[test]
    fn evolution_and_migration_report() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();

        // Three instances at different progress points (paper Fig. 3).
        let i1 = engine.create_instance(&name).unwrap(); // fresh: compliant
        let i2 = engine.create_instance(&name).unwrap(); // will be biased w/ conflict
        let i3 = engine.create_instance(&name).unwrap(); // runs to completion: state conflict
        drive(&engine, i1, Some(2));
        drive(&engine, i3, None);

        // I2's ad-hoc bias: sync(confirm order -> compose order).
        let v1 = engine.repo.deployed(&name, 1).unwrap();
        let confirm = v1.schema.node_by_name("confirm order").unwrap().id;
        let compose = v1.schema.node_by_name("compose order").unwrap().id;
        let pack = v1.schema.node_by_name("pack goods").unwrap().id;
        adhoc(
            &engine,
            i2,
            &ChangeOp::InsertSyncEdge {
                from: confirm,
                to: compose,
            },
        )
        .unwrap();

        // ΔT: insert "send questions" + sync to confirm order (Fig. 1).
        let v2 = evolve(
            &engine,
            &name,
            &[ChangeOp::SerialInsert {
                activity: NewActivity::named("send questions"),
                pred: compose,
                succ: pack,
            }],
        );
        assert_eq!(v2, 2);
        let sq = engine
            .repo
            .deployed(&name, 2)
            .unwrap()
            .schema
            .node_by_name("send questions")
            .unwrap()
            .id;
        let v3 = evolve(
            &engine,
            &name,
            &[ChangeOp::InsertSyncEdge {
                from: sq,
                to: confirm,
            }],
        );
        assert_eq!(v3, 3);

        let report = engine
            .migrate_all(&name, &MigrationOptions::default(), 1)
            .unwrap();
        assert_eq!(report.total(), 3);
        assert_eq!(report.migrated(), 1, "{report}");
        assert_eq!(report.conflicts(adept_core::ConflictKind::Structural), 1);
        assert_eq!(report.conflicts(adept_core::ConflictKind::State), 1);

        // The migrated instance continues and executes the new activity.
        drive(&engine, i1, None);
        assert!(engine.is_finished(i1).unwrap());
        let inst1 = engine.store.get(i1).unwrap();
        assert_eq!(inst1.version, 3);
        assert!(inst1.state.history.started_activities().contains(&sq));
    }

    #[test]
    fn parallel_migration_matches_sequential() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        for _ in 0..64 {
            let id = engine.create_instance(&name).unwrap();
            drive(&engine, id, Some(2));
        }
        let v1 = engine.repo.deployed(&name, 1).unwrap();
        let compose = v1.schema.node_by_name("compose order").unwrap().id;
        let pack = v1.schema.node_by_name("pack goods").unwrap().id;
        evolve(
            &engine,
            &name,
            &[ChangeOp::SerialInsert {
                activity: NewActivity::named("send questions"),
                pred: compose,
                succ: pack,
            }],
        );
        let report = engine
            .migrate_all(&name, &MigrationOptions::default(), 4)
            .unwrap();
        assert_eq!(report.total(), 64);
        assert_eq!(report.migrated(), 64, "{report}");
    }

    #[test]
    fn undo_ad_hoc_change_restores_unbiased_state() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        let id = engine.create_instance(&name).unwrap();
        let v1 = engine.repo.deployed(&name, 1).unwrap();
        let get = v1.schema.node_by_name("get order").unwrap().id;
        let collect = v1.schema.node_by_name("collect data").unwrap().id;
        adhoc(
            &engine,
            id,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("temp step"),
                pred: get,
                succ: collect,
            },
        )
        .unwrap();
        assert!(engine.store.get(id).unwrap().is_biased());
        engine.undo_ad_hoc_change(id).unwrap();
        assert!(!engine.store.get(id).unwrap().is_biased());
        // Undoing again fails: nothing left.
        assert!(engine.undo_ad_hoc_change(id).is_err());
        // The instance runs to completion on the restored schema.
        drive(&engine, id, None);
        assert!(engine.is_finished(id).unwrap());
    }

    #[test]
    fn undo_rejected_when_inserted_activity_already_ran() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        let id = engine.create_instance(&name).unwrap();
        let v1 = engine.repo.deployed(&name, 1).unwrap();
        let get = v1.schema.node_by_name("get order").unwrap().id;
        let collect = v1.schema.node_by_name("collect data").unwrap().id;
        adhoc(
            &engine,
            id,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("ran already"),
                pred: get,
                succ: collect,
            },
        )
        .unwrap();
        // Execute past the inserted activity.
        drive(&engine, id, Some(2));
        let err = engine.undo_ad_hoc_change(id).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Change(ChangeError::StatePrecondition { .. })
        ));
    }

    #[test]
    fn instance_rendering_via_engine() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        let id = engine.create_instance(&name).unwrap();
        let text = engine.render_instance(id).unwrap();
        assert!(text.contains("get order"));
    }
}
